"""Online drift detection and hysteresis-gated repartitioning.

The FPM partition is computed once, from speed functions assumed
stationary; :mod:`repro.platform.drift` makes the simulated platform
break that assumption.  This module closes the loop: a
:class:`DriftController` watches the per-unit panel timings the runtime
already collects, maintains EWMA/CUSUM statistics of the log-residual
against the current model's predictions, and when drift is *sustained*
(CUSUM crossing, not a single noisy panel) hands back per-unit time
inflation estimates.  :func:`run_with_drift_control` then prices a
repartition — a warm :meth:`~repro.core.solver.Solver.resolve` over the
rescaled models, the migration + plan-broadcast charge of
:func:`~repro.runtime.recovery.plan_switch_cost` — and commits the new
plan only when the predicted makespan gain over the *remaining* panels
beats that cost by the policy margin.

Hysteresis (why the controller cannot oscillate)
------------------------------------------------
Every decision — commit or reject — ends with a *recalibration*: the
controller's expected times are replaced by the model predictions under
the freshly estimated speed scales, its EWMA/CUSUM state is zeroed, and
detection is suppressed for ``cooldown_panels``.  After a step change
the recalibrated expectations match the drifted reality, so subsequent
residuals are pure measurement noise; with the CUSUM slack ``slack``
above the noise scale the statistics have negative drift and stay at
zero — no second trigger, hence exactly one repartition per step.  On
pure noise the CUSUM never accumulates ``threshold`` in the first
place, hence zero repartitions.  Rejections recalibrate too: a gain not
worth the migration cost is *accepted as the new normal* instead of
being re-litigated every panel.

Device drops compose with drift: :func:`run_with_drift_control` accepts
the same drop schedule as :func:`~repro.runtime.recovery.run_with_recovery`
and re-solves over the survivors through the shared warm-state chain.
The warm rows already carry every committed model rescale, so the drop
re-solve passes *only* ``dropped`` indices — never ``changed_models``
again — which is what keeps a drop landing mid-repartition from
double-applying the controller's updates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.core.batch import time_row_at
from repro.core.fpm import as_speed_function
from repro.core.integer import refine_integer_partition, round_partition
from repro.core.solver import Solver
from repro.measurement.timer import compose_timing
from repro.obs import get_tracer
from repro.platform.drift import DriftModel
from repro.platform.faults import DeviceDrop, FaultPlan
from repro.platform.noise import NoiseModel
from repro.runtime.event_sim import EventSimulator
from repro.runtime.mpi_sim import SimulatedComm
from repro.runtime.recovery import (
    DropEvent,
    RecoveryError,
    RecoveryPolicy,
    plan_switch_cost,
)
from repro.util.validation import (
    check_in,
    check_nonnegative,
    check_positive,
    check_positive_int,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (app imports runtime)
    from repro.app.matmul import HybridMatMul

__all__ = [
    "MODES",
    "DriftControlPolicy",
    "DriftController",
    "RepartitionEvent",
    "DriftRunResult",
    "run_with_drift_control",
]

#: Recognised run modes: the static-FPM baseline (never repartitions),
#: the online controller, and the clairvoyant oracle that reads the true
#: drift multipliers.
MODES = ("static", "controller", "oracle")


@dataclass(frozen=True)
class DriftControlPolicy:
    """Knobs of the online repartition controller.

    ``alpha`` is the EWMA smoothing weight on the per-unit log-residual
    ``z = ln(observed / expected)``; ``slack`` and ``threshold`` are the
    two-sided CUSUM drift allowance and decision threshold in the same
    log units (``slack`` must exceed the measurement-noise scale or pure
    noise will eventually trigger); ``cooldown_panels`` suppresses
    detection while freshly recalibrated statistics settle;
    ``commit_margin`` requires the predicted gain to beat the switch
    cost by that fraction; ``min_scale_step`` ignores estimated speed
    changes smaller than that fraction (no model churn from residual
    noise); ``recovery`` prices migration and the plan broadcast
    (shared with drop recovery); ``resolve_cost_s`` charges the warm
    incremental re-solve itself on a committed switch.
    """

    alpha: float = 0.3
    slack: float = 0.05
    threshold: float = 0.4
    cooldown_panels: int = 2
    commit_margin: float = 0.25
    min_scale_step: float = 0.01
    recovery: RecoveryPolicy = field(default_factory=RecoveryPolicy)
    resolve_cost_s: float = 0.0005

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha}")
        check_positive("slack", self.slack)
        check_positive("threshold", self.threshold)
        check_nonnegative("cooldown_panels", self.cooldown_panels)
        check_nonnegative("commit_margin", self.commit_margin)
        check_nonnegative("min_scale_step", self.min_scale_step)
        check_nonnegative("resolve_cost_s", self.resolve_cost_s)


class DriftController:
    """EWMA/CUSUM change detector over per-unit panel timings.

    Pure observer: it never touches the plan itself.  Feed it each
    panel's observed per-unit compute times; it returns ``None`` while
    the platform tracks the model and a ``{unit: time_inflation}``
    mapping once some unit's CUSUM crosses the threshold —
    ``time_inflation > 1`` means the unit runs slower than modelled.
    After the caller acts (commit *or* reject), it must call
    :meth:`recalibrate` with the expectations of the plan it kept; that
    reset is the hysteresis that prevents oscillation (module doc).
    """

    def __init__(
        self,
        expected_s: Mapping[str, float],
        policy: DriftControlPolicy = DriftControlPolicy(),
    ) -> None:
        if not expected_s:
            raise ValueError("need expected times for at least one unit")
        self.policy = policy
        self._expected: dict[str, float] = {}
        self._ewma: dict[str, float] = {}
        self._gp: dict[str, float] = {}
        self._gn: dict[str, float] = {}
        # Onset accumulators: (count, sum of z) since each one-sided
        # statistic last touched zero — the CUSUM maximum-likelihood
        # estimate of the post-change residual mean.
        self._pos_onset: dict[str, tuple[int, float]] = {}
        self._neg_onset: dict[str, tuple[int, float]] = {}
        self._panels = 0
        self._cooldown = 0
        self.detections = 0
        self.recalibrate(expected_s, cooldown=0)

    @property
    def units(self) -> tuple[str, ...]:
        return tuple(self._expected)

    def recalibrate(
        self, expected_s: Mapping[str, float], cooldown: int | None = None
    ) -> None:
        """Adopt new expected times; zero statistics; start a cooldown."""
        for name, expected in expected_s.items():
            check_positive(f"expected_s[{name!r}]", expected)
        self._expected = dict(expected_s)
        self._ewma = {name: 0.0 for name in self._expected}
        self._gp = {name: 0.0 for name in self._expected}
        self._gn = {name: 0.0 for name in self._expected}
        self._pos_onset = {name: (0, 0.0) for name in self._expected}
        self._neg_onset = {name: (0, 0.0) for name in self._expected}
        self._panels = 0
        self._cooldown = (
            self.policy.cooldown_panels if cooldown is None else cooldown
        )

    def drop_unit(self, name: str) -> None:
        """Forget a dropped unit (its timings stop arriving)."""
        self._expected.pop(name, None)
        self._ewma.pop(name, None)
        self._gp.pop(name, None)
        self._gn.pop(name, None)
        self._pos_onset.pop(name, None)
        self._neg_onset.pop(name, None)

    def _inflation(self, name: str) -> float:
        """Post-change time-inflation estimate of one unit.

        The mean residual since the dominant CUSUM side last touched
        zero — the change-point MLE of the shift magnitude.  For a hard
        step this is the post-step mean (not diluted by pre-step
        panels), which is what lets one commit fully absorb the step.
        Units whose statistics sit at zero report 1.0: no change.
        """
        if self._gp[name] >= self._gn[name]:
            count, total = self._pos_onset[name]
        else:
            count, total = self._neg_onset[name]
        if count == 0:
            return 1.0
        return math.exp(total / count)

    def observe(self, observed_s: Mapping[str, float]) -> dict[str, float] | None:
        """Ingest one panel's per-unit timings; detect sustained drift.

        Returns ``None`` (keep running) or per-unit time-inflation
        estimates (:meth:`_inflation`) at the moment some unit's
        one-sided CUSUM exceeded the policy threshold.
        """
        policy = self.policy
        self._panels += 1
        triggered = False
        for name, expected in self._expected.items():
            obs = observed_s[name]
            check_positive(f"observed_s[{name!r}]", obs)
            z = math.log(obs / expected)
            self._ewma[name] = (1.0 - policy.alpha) * self._ewma[name] \
                + policy.alpha * z
            self._gp[name] = max(0.0, self._gp[name] + z - policy.slack)
            self._gn[name] = max(0.0, self._gn[name] - z - policy.slack)
            if self._gp[name] == 0.0:
                self._pos_onset[name] = (0, 0.0)
            else:
                count, total = self._pos_onset[name]
                self._pos_onset[name] = (count + 1, total + z)
            if self._gn[name] == 0.0:
                self._neg_onset[name] = (0, 0.0)
            else:
                count, total = self._neg_onset[name]
                self._neg_onset[name] = (count + 1, total + z)
            if self._gp[name] > policy.threshold \
                    or self._gn[name] > policy.threshold:
                triggered = True
        if self._cooldown > 0:
            self._cooldown -= 1
            return None
        if not triggered:
            return None
        self.detections += 1
        return {name: self._inflation(name) for name in self._expected}


@dataclass(frozen=True)
class RepartitionEvent:
    """One controller (or oracle) repartition decision."""

    panel: int  # panels completed when the decision was made
    time_s: float  # simulated time of the decision
    committed: bool
    predicted_gain_s: float  # over the remaining panels
    cost_s: float  # migration + plan broadcast (+ re-solve)
    blocks_moved: int
    speed_scales: tuple[float, ...]  # per alive unit, vs the base models


@dataclass(frozen=True)
class DriftRunResult:
    """Outcome of a drifted run under one repartition mode."""

    n: int
    mode: str
    total_time_s: float
    repartitions: tuple[RepartitionEvent, ...]
    detections: int
    unit_names: tuple[str, ...]
    baseline_unit_allocations: tuple[int, ...]
    final_unit_allocations: tuple[int, ...]  # 0 for dropped units
    blocks_migrated: int
    switch_time_s: float
    drops: tuple[DropEvent, ...]
    ignored_drops: tuple[DeviceDrop, ...]

    @property
    def commits(self) -> int:
        """Committed repartitions (what the hysteresis tests count)."""
        return sum(1 for event in self.repartitions if event.committed)

    @property
    def rejects(self) -> int:
        return sum(1 for event in self.repartitions if not event.committed)


def run_with_drift_control(
    app: "HybridMatMul",
    n: int,
    drift: DriftModel,
    policy: DriftControlPolicy = DriftControlPolicy(),
    *,
    mode: str = "controller",
    noise: NoiseModel | None = None,
    drops: FaultPlan | Sequence[DeviceDrop] = (),
) -> DriftRunResult:
    """Simulate the n-panel run on a drifting platform under one mode.

    Each panel's true per-unit compute time is the unit model's
    prediction stretched by the drift time-multiplier at the panel's
    start instant, optionally noised through the pinned
    :func:`~repro.measurement.timer.compose_timing` order; the panel
    completes at the slowest unit plus the pivot broadcast.  ``static``
    never repartitions, ``controller`` runs the
    :class:`DriftController` loop, ``oracle`` reads the true multipliers
    and repartitions whenever the gain beats the cost (no hysteresis
    needed — it never chases noise).  Hard ``drops`` compose with every
    mode through the shared warm re-solve chain.
    """
    check_positive_int("n", n)
    check_in("mode", mode, MODES)
    if isinstance(drops, FaultPlan):
        drops = drops.device_drops()
    drops = sorted(drops, key=lambda d: (d.time_s, d.device))

    units = app.compute_units()
    unit_names = tuple(u.name for u in units)
    unknown = [d.device for d in drops if d.device not in unit_names]
    if unknown:
        raise ValueError(
            f"dropped devices not on this node: {unknown} "
            f"(units: {list(unit_names)})"
        )
    if len({d.device for d in drops}) != len(drops):
        raise ValueError("each device can drop at most once")

    base_fns = {
        u.name: as_speed_function(m)
        for u, m in zip(units, app.models_for(units))
    }
    total = n * n
    solver = Solver()
    block_size = app.node.block_size

    def unit_time(name: str, blocks: float, scale: float = 1.0) -> float:
        fn = base_fns[name]
        if scale != 1.0:
            fn = fn.scaled(scale)
        return time_row_at(fn, float(blocks))

    def integer_allocations(scaled_fns, continuous) -> list[int]:
        allocs = round_partition(scaled_fns, list(continuous), total)
        return refine_integer_partition(scaled_fns, allocs)

    # Initial solve through the facade so the warm chain starts here.
    initial = solver.solve([base_fns[name] for name in unit_names], float(total))
    baseline_allocs = integer_allocations(
        [base_fns[name] for name in unit_names], initial.allocations
    )
    baseline_plan = app.plan_from_unit_allocations(n, baseline_allocs)

    comm = SimulatedComm(app.binding.num_processes, app.comm_model)

    def panel_comm_s(plan, alive_units, comm_now) -> float:
        recv = [
            2.0 * math.sqrt(float(plan.allocation_of(u.name)))
            for u in alive_units
        ]
        return comm_now.pivot_bcast_time(recv, block_size)

    state: dict = {
        "completed": 0,
        "plan": baseline_plan,
        "alive": set(unit_names),
        "scales": {name: 1.0 for name in unit_names},
        "warm": (initial, unit_names),
        "comm": comm,
        "comm_s": panel_comm_s(baseline_plan, units, comm),
        "inflight": None,
        "switching": None,
        "finish_s": None,
        "obs": None,
        "events": [],
        "applied": [],
        "ignored": [],
        "blocks_migrated": 0,
        "switch_s": 0.0,
    }

    def alive_units() -> list:
        return [u for u in units if u.name in state["alive"]]

    def expected_times(plan, scales) -> dict[str, float]:
        return {
            u.name: unit_time(u.name, plan.allocation_of(u.name), scales[u.name])
            for u in alive_units()
        }

    controller: DriftController | None = None
    if mode == "controller":
        controller = DriftController(
            expected_times(baseline_plan, state["scales"]), policy
        )

    def observe_panel(now: float, panel: int) -> dict[str, float]:
        obs: dict[str, float] = {}
        for u in alive_units():
            ideal = unit_time(u.name, state["plan"].allocation_of(u.name))
            factor = drift.time_multiplier(u.name, now)
            if noise is None:
                obs[u.name] = ideal * factor
            else:
                obs[u.name] = compose_timing(
                    ideal,
                    factor,
                    1.0,
                    lambda seconds, name=u.name: noise.perturb(
                        seconds, "panel", name, f"p{panel}"
                    ),
                )
        return obs

    def start_panel(sim: EventSimulator) -> None:
        obs = observe_panel(sim.now, state["completed"])
        state["obs"] = obs
        duration = max(obs.values()) + state["comm_s"]
        state["inflight"] = sim.schedule(duration, finish_panel)

    def switched(sim: EventSimulator) -> None:
        state["switching"] = None
        start_panel(sim)

    def evaluate_repartition(sim: EventSimulator, scales_new: dict) -> bool:
        """Resolve under ``scales_new``; commit iff gain beats cost.

        Returns True when a switch was committed (the caller must not
        start the next panel; ``switched`` resumes after the charge).
        Whether or not the plan switches, the warm state and assumed
        scales adopt the new estimates.
        """
        live = alive_units()
        prev_result, prev_names = state["warm"]
        changed = {
            i: base_fns[name].scaled(scales_new[name])
            for i, name in enumerate(prev_names)
            if scales_new[name] != state["scales"][name]
        }
        result = (
            solver.resolve(prev_result, changed_models=changed)
            if changed
            else prev_result
        )
        scaled_fns = [
            base_fns[u.name].scaled(scales_new[u.name]) for u in live
        ]
        allocs = integer_allocations(scaled_fns, result.allocations)
        new_plan = app.plan_for_units(n, live, allocs)
        remaining = n - state["completed"]
        current_compute = max(
            unit_time(
                u.name, state["plan"].allocation_of(u.name), scales_new[u.name]
            )
            for u in live
        )
        new_compute = max(
            unit_time(u.name, alloc, scales_new[u.name])
            for u, alloc in zip(live, allocs)
        )
        new_comm_s = panel_comm_s(new_plan, live, state["comm"])
        gain = (
            (current_compute + state["comm_s"]) - (new_compute + new_comm_s)
        ) * remaining
        moved, cost = plan_switch_cost(
            state["plan"].process_allocations,
            new_plan.process_allocations,
            state["comm"],
            policy.recovery,
        )
        cost += policy.resolve_cost_s
        commit = gain > (1.0 + policy.commit_margin) * cost
        state["events"].append(
            RepartitionEvent(
                panel=state["completed"],
                time_s=sim.now,
                committed=commit,
                predicted_gain_s=gain,
                cost_s=cost,
                blocks_moved=moved,
                speed_scales=tuple(scales_new[u.name] for u in live),
            )
        )
        state["warm"] = (result, prev_names)
        state["scales"] = dict(state["scales"], **scales_new)
        if commit:
            state["plan"] = new_plan
            state["comm_s"] = new_comm_s
            state["blocks_migrated"] += moved
            state["switch_s"] += cost
            state["switching"] = sim.schedule(cost, switched)
        if controller is not None:
            controller.recalibrate(expected_times(state["plan"], state["scales"]))
        return commit

    def oracle_check(sim: EventSimulator) -> bool:
        truth = {
            u.name: drift.speed_multiplier(u.name, sim.now)
            for u in alive_units()
        }
        if all(
            truth[name] == state["scales"][name] for name in truth
        ):
            return False
        return evaluate_repartition(sim, truth)

    def finish_panel(sim: EventSimulator) -> None:
        state["inflight"] = None
        state["completed"] += 1
        if state["completed"] >= n:
            state["finish_s"] = sim.now
            return
        if mode == "controller":
            inflation = controller.observe(state["obs"])
            if inflation is not None:
                scales_new = {
                    name: (
                        state["scales"][name] / inflation[name]
                        if abs(inflation[name] - 1.0) > policy.min_scale_step
                        else state["scales"][name]
                    )
                    for name in inflation
                }
                if evaluate_repartition(sim, scales_new):
                    return
        elif mode == "oracle":
            if oracle_check(sim):
                return
        start_panel(sim)

    def make_drop(drop: DeviceDrop):
        def on_drop(sim: EventSimulator) -> None:
            if state["completed"] >= n:
                state["ignored"].append(drop)
                return
            if state["inflight"] is not None:
                state["inflight"].cancel()  # the panel is replayed degraded
                state["inflight"] = None
            if state["switching"] is not None:
                # The drop interrupts an in-flight plan switch; the
                # survivors re-solve below supersedes it.
                state["switching"].cancel()
                state["switching"] = None
            state["alive"].discard(drop.device)
            if controller is not None:
                controller.drop_unit(drop.device)
            survivors = alive_units()
            if not survivors:
                raise RecoveryError(
                    f"no surviving compute units after dropping {drop.device!r}"
                )
            prev_result, prev_names = state["warm"]
            dropped_idx = [
                i for i, name in enumerate(prev_names)
                if name not in state["alive"]
            ]
            # Only ``dropped`` here: the warm rows already carry every
            # committed rescale, so re-passing changed_models would
            # double-apply them.
            result = solver.resolve(prev_result, dropped=dropped_idx)
            new_names = tuple(
                name for name in prev_names if name in state["alive"]
            )
            scaled_fns = [
                base_fns[name].scaled(state["scales"][name])
                for name in new_names
            ]
            allocs = integer_allocations(scaled_fns, result.allocations)
            new_plan = app.plan_for_units(n, survivors, allocs)
            survivor_ranks = [r for u in survivors for r in u.member_ranks]
            shrunk = state["comm"].shrink(len(survivor_ranks))
            moved, cost = plan_switch_cost(
                state["plan"].process_allocations,
                new_plan.process_allocations,
                shrunk,
                policy.recovery,
            )
            state["warm"] = (result, new_names)
            state["plan"] = new_plan
            state["comm"] = shrunk
            state["comm_s"] = panel_comm_s(new_plan, survivors, shrunk)
            state["blocks_migrated"] += moved
            state["switch_s"] += cost
            state["applied"].append(
                DropEvent(
                    device=drop.device,
                    time_s=drop.time_s,
                    panels_completed=state["completed"],
                )
            )
            if controller is not None:
                controller.recalibrate(
                    expected_times(new_plan, state["scales"])
                )
            state["switching"] = sim.schedule(cost, switched)

        return on_drop

    tracer = get_tracer()
    with tracer.span(
        "runtime.drift_control",
        category="runtime",
        n=n,
        mode=mode,
        drops=len(drops),
    ) as span:
        sim = EventSimulator()
        start_panel(sim)
        for drop in drops:
            sim.schedule_at(drop.time_s, make_drop(drop))
        sim.run()
        events: list[RepartitionEvent] = state["events"]
        commits = sum(1 for e in events if e.committed)
        if tracer.enabled:
            tracer.counter("runtime.drift.panels").add(n)
            tracer.counter(f"runtime.drift.runs.{mode}").add(1)
            if controller is not None:
                tracer.counter("runtime.drift.detections").add(
                    controller.detections
                )
            tracer.counter("runtime.drift.commits").add(commits)
            tracer.counter("runtime.drift.rejects").add(len(events) - commits)
            gain_hist = tracer.histogram("runtime.drift.predicted_gain_s")
            cost_hist = tracer.histogram("runtime.drift.switch_cost_s")
            for event in events:
                gain_hist.observe(event.predicted_gain_s)
                if event.committed:
                    cost_hist.observe(event.cost_s)
        span.set_attr("repartitions", commits)
        span.mark_sim(0.0, state["finish_s"])

    final_plan = state["plan"]
    final_names = {u.name for u in final_plan.units}
    final = tuple(
        final_plan.allocation_of(name) if name in final_names else 0
        for name in unit_names
    )
    return DriftRunResult(
        n=n,
        mode=mode,
        total_time_s=state["finish_s"],
        repartitions=tuple(events),
        detections=controller.detections if controller is not None else 0,
        unit_names=unit_names,
        baseline_unit_allocations=tuple(baseline_allocs),
        final_unit_allocations=final,
        blocks_migrated=state["blocks_migrated"],
        switch_time_s=state["switch_s"],
        drops=tuple(state["applied"]),
        ignored_drops=tuple(state["ignored"]),
    )
