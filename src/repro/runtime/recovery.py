"""Degraded-mode repartitioning after hard device drops.

The FPM partitioner "predicts the future" for a fixed device set; this
module is what happens when the future disagrees.  A
:class:`~repro.platform.faults.DeviceDrop` removes one compute unit at a
simulated time; the runtime aborts the in-flight panel, re-solves the
partition over the *surviving* units (reusing the exact machinery of
:mod:`repro.core.partition` — or, model-free, the observed-speed
rebalancer of :mod:`repro.core.dynamic`), charges data migration plus a
plan broadcast on a shrunk communicator (the ULFM ``MPI_Comm_shrink``
analogue), and replays the remaining panels under the degraded plan.

Everything is deterministic: the drop schedule comes from a seeded
:class:`~repro.platform.faults.FaultPlan` (or explicit drops), the event
engine breaks ties by insertion order, and the partitioners are pure —
so the same seed yields bit-identical degraded partitions and recovery
makespans, across runs and across process counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.core.dynamic import SpeedBasedRebalancer
from repro.core.integer import refine_integer_partition, round_partition
from repro.core.solver import Solver
from repro.obs import get_tracer
from repro.platform.faults import DeviceDrop, FaultPlan
from repro.runtime.event_sim import EventSimulator
from repro.runtime.mpi_sim import SimulatedComm
from repro.util.validation import check_in, check_nonnegative, check_positive_int

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (app imports runtime)
    from repro.app.matmul import HybridMatMul, MatMulPlan

__all__ = [
    "RecoveryError",
    "RecoveryPolicy",
    "DropEvent",
    "RecoveryResult",
    "plan_switch_cost",
    "run_with_recovery",
]


class RecoveryError(RuntimeError):
    """Recovery is impossible (no survivors, or capacity exhausted)."""


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the runtime re-solves the partition after a drop.

    ``strategy="fpm"`` re-runs the functional-performance partitioner over
    the survivors' models (balanced from the first degraded panel);
    ``"observed"`` redistributes proportionally to the speeds observed
    under the pre-drop plan (model-free, the Section II dynamic scheme).
    ``migration_cost_per_block`` charges moving one b x b block between
    surviving processes; ``replan_nbytes`` is the broadcast payload of the
    new plan on the shrunk communicator.
    """

    strategy: str = "fpm"
    migration_cost_per_block: float = 0.0009
    replan_nbytes: float = 4096.0

    def __post_init__(self) -> None:
        check_in("strategy", self.strategy, ("fpm", "observed"))
        check_nonnegative("migration_cost_per_block", self.migration_cost_per_block)
        check_nonnegative("replan_nbytes", self.replan_nbytes)


@dataclass(frozen=True)
class DropEvent:
    """One device drop as the runtime experienced it."""

    device: str
    time_s: float
    panels_completed: int  # main-loop iterations finished when it struck


@dataclass(frozen=True)
class RecoveryResult:
    """Makespan-with-recovery vs fault-free, plus the degraded plan."""

    n: int
    strategy: str
    fault_free_time_s: float
    recovery_time_s: float
    drops: tuple[DropEvent, ...]
    ignored_drops: tuple[DeviceDrop, ...]  # struck after completion
    unit_names: tuple[str, ...]
    baseline_unit_allocations: tuple[int, ...]
    degraded_unit_allocations: tuple[int, ...]  # 0 for dropped units
    blocks_migrated: int
    migration_time_s: float
    degraded_panels: int  # panels executed under a degraded plan

    @property
    def overhead_fraction(self) -> float:
        """Relative makespan cost of the faults (0.0 = fault-free).

        A zero-panel run has no fault-free makespan to compare against,
        so the overhead is defined as 0.0 rather than a division error.
        """
        if self.fault_free_time_s == 0.0:
            return 0.0
        return self.recovery_time_s / self.fault_free_time_s - 1.0


def plan_switch_cost(
    old_by_rank: Sequence[int],
    new_by_rank: Sequence[int],
    comm: SimulatedComm,
    policy: RecoveryPolicy,
) -> tuple[int, float]:
    """Migration + plan-broadcast cost of switching per-rank allocations.

    ``moved`` counts only blocks a rank *gains* (every moved block has
    exactly one receiver, so counting receipts avoids double-charging
    the sender side); the time charge is the migration of those blocks
    plus one broadcast of the new plan on ``comm``.  Shared by drop
    recovery and the drift repartition controller so both price a plan
    switch identically.
    """
    moved = sum(
        max(0, new - old) for new, old in zip(new_by_rank, old_by_rank)
    )
    seconds = (
        moved * policy.migration_cost_per_block
        + comm.bcast_time(policy.replan_nbytes)
    )
    return moved, seconds


def _observed_unit_times(units, processes, plan) -> list[float]:
    """Per-unit iteration times observed under ``plan`` (max over members)."""
    by_rank = {p.rank: p for p in processes}
    areas: dict[int, int] = {}
    for rect in plan.partition.rectangles:
        areas[rect.owner] = areas.get(rect.owner, 0) + rect.area
    return [
        max(
            by_rank[rank].iteration_time(areas.get(rank, 0))
            for rank in unit.member_ranks
        )
        for unit in units
    ]


def _survivor_allocations(
    app: "HybridMatMul",
    plan: "MatMulPlan",
    survivors: list,
    n: int,
    policy: RecoveryPolicy,
    processes: list,
    warm=None,
):
    """Re-solve the allocation over the surviving units.

    Returns ``(allocations, warm)`` where ``warm`` carries the FPM
    solve's warm state tagged with the survivor names it covers: the
    *next* drop re-solves through :meth:`Solver.resolve` with only the
    newly dropped indices, reusing the stacked batch representation.
    Exact mode keeps every degraded partition bit-identical to the cold
    re-solve it replaces.  The observed-speed strategy is model-free and
    carries no state.
    """
    total = n * n
    if policy.strategy == "fpm":
        models = app.models_for(survivors)
        names = tuple(u.name for u in survivors)
        try:
            if warm is not None:
                prev_result, prev_names = warm
                alive = set(names)
                dropped_idx = [
                    i for i, name in enumerate(prev_names) if name not in alive
                ]
                result = Solver().resolve(prev_result, dropped=dropped_idx)
            else:
                result = Solver().solve(models, float(total))
        except ValueError as exc:
            raise RecoveryError(
                f"survivors cannot absorb the workload: {exc}"
            ) from exc
        continuous = list(result.allocations)
        allocs = round_partition(models, continuous, total)
        return refine_integer_partition(models, allocs), (result, names)
    current = [plan.allocation_of(u.name) for u in survivors]
    times = _observed_unit_times(survivors, processes, plan)
    return (
        SpeedBasedRebalancer().next_distribution(current, times, total),
        None,
    )


def run_with_recovery(
    app: "HybridMatMul",
    n: int,
    drops: FaultPlan | Sequence[DeviceDrop],
    policy: RecoveryPolicy = RecoveryPolicy(),
) -> RecoveryResult:
    """Simulate the application run under hard device drops.

    ``drops`` is a :class:`FaultPlan` (its ``drop`` clauses are used) or an
    explicit drop sequence.  The run executes the baseline FPM plan panel
    by panel on the event engine; each drop cancels the in-flight panel
    (it is replayed), re-solves the partition over the survivors per
    ``policy``, charges migration + plan broadcast, and resumes.  Drops
    landing after the last panel finished are recorded as ignored.

    The app's models must already cover every survivor (``build_models``
    or ``set_models`` first).
    """
    check_positive_int("n", n)
    if isinstance(drops, FaultPlan):
        drops = drops.device_drops()
    drops = sorted(drops, key=lambda d: (d.time_s, d.device))

    units = app.compute_units()
    unit_names = tuple(u.name for u in units)
    unknown = [d.device for d in drops if d.device not in unit_names]
    if unknown:
        raise ValueError(
            f"dropped devices not on this node: {unknown} "
            f"(units: {list(unit_names)})"
        )
    if len({d.device for d in drops}) != len(drops):
        raise ValueError("each device can drop at most once")

    from repro.app.execution import simulate_execution

    baseline = app.plan(n)
    processes = app.processes()
    comm = SimulatedComm(app.binding.num_processes, app.comm_model)
    block_size = app.node.block_size
    baseline_exec = simulate_execution(
        processes, baseline.partition, comm, block_size
    )

    state = {
        "completed": 0,
        "iteration_s": baseline_exec.iteration_time,
        "plan": baseline,
        "alive": set(unit_names),
        "inflight": None,
        "recovering": None,
        "finish_s": None,
        "applied": [],
        "ignored": [],
        "blocks_migrated": 0,
        "migration_s": 0.0,
        "degraded_panels": 0,
        "warm": None,  # (SolveResult, survivor names) of the last FPM re-solve
    }

    def start_panel(sim: EventSimulator) -> None:
        state["inflight"] = sim.schedule(state["iteration_s"], finish_panel)

    def finish_panel(sim: EventSimulator) -> None:
        state["inflight"] = None
        state["completed"] += 1
        if len(state["alive"]) < len(unit_names):
            state["degraded_panels"] += 1
        if state["completed"] < n:
            start_panel(sim)
        else:
            state["finish_s"] = sim.now

    def recovered(sim: EventSimulator) -> None:
        state["recovering"] = None
        start_panel(sim)

    def make_drop(drop: DeviceDrop):
        def on_drop(sim: EventSimulator) -> None:
            if state["completed"] >= n:
                state["ignored"].append(drop)
                return
            if state["inflight"] is not None:
                state["inflight"].cancel()  # the panel is replayed degraded
                state["inflight"] = None
            if state["recovering"] is not None:
                state["recovering"].cancel()  # re-solve with the new survivor set
                state["recovering"] = None
            state["alive"].discard(drop.device)
            survivors = [u for u in units if u.name in state["alive"]]
            if not survivors:
                raise RecoveryError(
                    f"no surviving compute units after dropping {drop.device!r}"
                )
            allocs, state["warm"] = _survivor_allocations(
                app, state["plan"], survivors, n, policy, processes,
                warm=state["warm"],
            )
            new_plan = app.plan_for_units(n, survivors, allocs)
            survivor_ranks = [r for u in survivors for r in u.member_ranks]
            shrunk = comm.shrink(len(survivor_ranks))
            moved, replan_s = plan_switch_cost(
                state["plan"].process_allocations,
                new_plan.process_allocations,
                shrunk,
                policy,
            )
            degraded_exec = simulate_execution(
                [p for p in processes if p.rank in survivor_ranks],
                new_plan.partition,
                shrunk,
                block_size,
            )
            state["plan"] = new_plan
            state["iteration_s"] = degraded_exec.iteration_time
            state["blocks_migrated"] += moved
            state["migration_s"] += replan_s
            state["applied"].append(
                DropEvent(
                    device=drop.device,
                    time_s=drop.time_s,
                    panels_completed=state["completed"],
                )
            )
            state["recovering"] = sim.schedule(replan_s, recovered)

        return on_drop

    tracer = get_tracer()
    with tracer.span(
        "runtime.recovery",
        category="runtime",
        n=n,
        drops=len(drops),
        strategy=policy.strategy,
    ) as span:
        sim = EventSimulator()
        start_panel(sim)
        for drop in drops:
            sim.schedule_at(drop.time_s, make_drop(drop))
        sim.run()
        if tracer.enabled:
            tracer.counter("recovery.drops").add(len(state["applied"]))
            if state["blocks_migrated"]:
                tracer.counter("recovery.blocks_migrated").add(
                    state["blocks_migrated"]
                )
            span.set_attr("panels_completed", state["completed"])
            span.mark_sim(0.0, state["finish_s"])

    final_plan = state["plan"]
    degraded = tuple(
        final_plan.allocation_of(name) if name in {u.name for u in final_plan.units} else 0
        for name in unit_names
    )
    return RecoveryResult(
        n=n,
        strategy=policy.strategy,
        fault_free_time_s=baseline_exec.total_time,
        recovery_time_s=state["finish_s"],
        drops=tuple(state["applied"]),
        ignored_drops=tuple(state["ignored"]),
        unit_names=unit_names,
        baseline_unit_allocations=baseline.unit_allocations,
        degraded_unit_allocations=degraded,
        blocks_migrated=state["blocks_migrated"],
        migration_time_s=state["migration_s"],
        degraded_panels=state["degraded_panels"],
    )
