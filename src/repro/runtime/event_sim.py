"""A minimal deterministic discrete-event simulation engine.

Used by the simulated communicator to time tree collectives, and available
to extensions that need richer schedules than the analytic paths (e.g. the
per-process traces of the execution simulator).  Determinism: ties in event
time break by insertion sequence number.

Two scheduling lanes share one heap:

* the **scalar lane** (:meth:`EventSimulator.schedule` /
  :meth:`EventSimulator.schedule_at`) — one heap entry per event, one
  Python callback per event; the reference semantics.
* the **batch lane** (:meth:`EventSimulator.schedule_batch`) — a whole
  *drain generation* (one NumPy array of fire times) enters the heap as a
  single entry and fires in vectorised runs.  The observable behaviour is
  identical to scheduling the same times on the scalar lane — same clock
  trajectory, same tie order (insertion order within equal times, across
  both lanes), same ``events_processed`` — but a generation of ``p``
  events costs O(1) heap operations and O(1) callbacks instead of O(p),
  which is what makes cluster-scale panel loops affordable
  (:mod:`repro.runtime.panel_loop`).

One caveat bounds the equivalence: a run's extent is fixed when the
generation surfaces, so events scheduled *by* a batch callback are
ordered after the contiguous run that produced them (the scalar lane
would interleave them element by element).  Workloads that only schedule
from generation boundaries — the panel-loop pattern — observe identical
behaviour on both lanes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.obs import get_tracer


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    action: Callable[["EventSimulator"], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    executed: bool = field(default=False, compare=False)
    #: Set on batch-lane marker entries: the heap entry stands for the
    #: group's next unfired element and dispatches through the group.
    group: "_BatchGroup | None" = field(default=None, compare=False)


def _batch_marker(sim: "EventSimulator") -> None:  # pragma: no cover
    raise AssertionError("batch marker events dispatch through their group")


class EventHandle:
    """Cancellation handle for one scheduled event.

    Cancelling marks the event; it stays in the queue and is discarded
    (uncounted) when popped, so cancellation is O(1) and the heap
    invariant is untouched.  Cancelling an already-executed or
    already-cancelled event is a no-op.
    """

    __slots__ = ("_event", "_sim")

    def __init__(self, event: _Event, sim: "EventSimulator"):
        self._event = event
        self._sim = sim

    def cancel(self) -> None:
        event = self._event
        if event.cancelled or event.executed:
            return
        event.cancelled = True
        self._sim._live -= 1

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled


class _BatchGroup:
    """Shared state of one batched drain generation.

    ``times``/``seqs``/``indices`` are sorted by ``(time, seq)`` — a
    stable sort by time, since sequence numbers are issued in element
    order — so firing the arrays front to back replays exactly the heap
    order the scalar lane would produce.  ``pos`` is the first unfired
    element.
    """

    __slots__ = ("times", "seqs", "indices", "action", "pos", "cancelled")

    def __init__(self, times, seqs, indices, action):
        self.times = times
        self.seqs = seqs
        self.indices = indices
        self.action = action
        self.pos = 0
        self.cancelled = False


class BatchHandle:
    """Cancellation handle for a batched generation (all unfired elements)."""

    __slots__ = ("_group", "_sim")

    def __init__(self, group: _BatchGroup, sim: "EventSimulator"):
        self._group = group
        self._sim = sim

    def cancel(self) -> None:
        group = self._group
        if group.cancelled:
            return
        group.cancelled = True
        self._sim._live -= len(group.times) - group.pos

    @property
    def cancelled(self) -> bool:
        return self._group.cancelled

    @property
    def remaining(self) -> int:
        """Unfired elements (0 once drained or after :meth:`cancel`)."""
        if self._group.cancelled:
            return 0
        return len(self._group.times) - self._group.pos


class EventSimulator:
    """A classic event-queue simulator with a monotone clock."""

    def __init__(self) -> None:
        self._queue: list[_Event] = []
        self._next_seq = 0
        self.now = 0.0
        self._processed = 0
        self._live = 0  # scheduled, not yet executed nor cancelled
        # One tracer lookup per simulator, not per event: schedule() and
        # run() are the engine's inner loops.  Counter handles are cached
        # alongside; counter TOTALS stay identical to per-event accounting.
        self._tracer = get_tracer()
        if self._tracer.enabled:
            self._scheduled_counter = self._tracer.counter("sim.events.scheduled")
            self._processed_counter = self._tracer.counter("sim.events.processed")
            self._depth_gauge = self._tracer.gauge("sim.queue_depth")

    def schedule(
        self, delay: float, action: Callable[["EventSimulator"], None]
    ) -> EventHandle:
        """Run ``action`` ``delay`` seconds from the current clock."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        event = _Event(self.now + delay, self._next_seq, action)
        self._next_seq += 1
        heapq.heappush(self._queue, event)
        self._live += 1
        if self._tracer.enabled:
            self._scheduled_counter.add(1)
        return EventHandle(event, self)

    def schedule_at(
        self, time: float, action: Callable[["EventSimulator"], None]
    ) -> EventHandle:
        """Run ``action`` at an absolute simulation time (>= now)."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time}, clock already at {self.now}"
            )
        event = _Event(time, self._next_seq, action)
        self._next_seq += 1
        heapq.heappush(self._queue, event)
        self._live += 1
        if self._tracer.enabled:
            self._scheduled_counter.add(1)
        return EventHandle(event, self)

    def schedule_batch(self, delays, action) -> BatchHandle:
        """Schedule one drain generation from an array of delays.

        ``delays`` is a 1-D array-like of non-negative offsets from the
        current clock; element ``i`` behaves exactly like
        ``schedule(delays[i], ...)`` issued in index order (so equal-time
        ties break by index, and interleave correctly with scalar-lane
        events).  ``action(sim, times, indices)`` is invoked once per
        contiguous run of elements that fire without an intervening
        foreign event: ``times`` are the absolute fire times (ascending)
        and ``indices`` the corresponding positions in ``delays``.  The
        clock at callback time is ``times[-1]``.
        """
        arr = np.asarray(delays, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("schedule_batch needs a non-empty 1-D delay array")
        if float(arr.min()) < 0:
            raise ValueError(
                f"cannot schedule into the past (delay={float(arr.min())})"
            )
        count = arr.size
        times = self.now + arr
        order = np.argsort(times, kind="stable")
        base = self._next_seq
        self._next_seq += count
        group = _BatchGroup(
            times[order], base + order, order.astype(np.intp), action
        )
        heapq.heappush(
            self._queue,
            _Event(
                float(group.times[0]),
                int(group.seqs[0]),
                _batch_marker,
                group=group,
            ),
        )
        self._live += count
        if self._tracer.enabled:
            self._scheduled_counter.add(count)
        return BatchHandle(group, self)

    def run(self, until: float | None = None) -> float:
        """Process events (optionally only up to ``until``); return the clock.

        Cancelled events are discarded as they surface: they advance
        neither the clock nor ``events_processed``.  Batched generations
        fire in vectorised runs bounded by the next foreign event (and
        ``until``), preserving the scalar lane's exact ordering.
        """
        drained = 0
        discarded = 0
        try:
            while self._queue:
                if until is not None and self._queue[0].time > until:
                    self.now = until
                    return self.now
                event = heapq.heappop(self._queue)
                group = event.group
                if group is not None:
                    size = len(group.times)
                    pos = group.pos
                    if group.cancelled:
                        discarded += size - pos
                        group.pos = size
                        continue
                    end = size
                    if until is not None:
                        end = pos + int(
                            np.searchsorted(
                                group.times[pos:end], until, side="right"
                            )
                        )
                    if self._queue:
                        head = self._queue[0]
                        cut = pos + int(
                            np.searchsorted(
                                group.times[pos:end], head.time, side="left"
                            )
                        )
                        while (
                            cut < end
                            and group.times[cut] == head.time
                            and group.seqs[cut] < head.seq
                        ):
                            cut += 1
                        end = cut
                    # The popped marker is the heap minimum, so at least
                    # element ``pos`` fires (its (time, seq) precedes the
                    # new head's, and its time is within ``until``).
                    fire_times = group.times[pos:end]
                    fire_indices = group.indices[pos:end]
                    fired = end - pos
                    group.pos = end
                    self.now = float(fire_times[-1])
                    self._processed += fired
                    self._live -= fired
                    drained += fired
                    if end < size:
                        heapq.heappush(
                            self._queue,
                            _Event(
                                float(group.times[end]),
                                int(group.seqs[end]),
                                _batch_marker,
                                group=group,
                            ),
                        )
                    group.action(self, fire_times, fire_indices)
                    continue
                if event.cancelled:
                    discarded += 1
                    continue
                event.executed = True
                self.now = event.time
                self._processed += 1
                self._live -= 1
                drained += 1
                event.action(self)
            return self.now
        finally:
            # Per-drain (not per-event) instrumentation: one counter add
            # covering every event processed, one final queue-depth sample.
            if self._tracer.enabled:
                if drained:
                    self._processed_counter.add(drained)
                    self._depth_gauge.set(self._live)
                if discarded:
                    self._tracer.counter("sim.events.cancelled").add(discarded)

    @property
    def events_processed(self) -> int:
        return self._processed

    @property
    def pending(self) -> int:
        """Events scheduled but neither executed nor cancelled.

        Cancelled events do not count even while they still occupy the
        heap awaiting lazy discard.
        """
        return self._live
