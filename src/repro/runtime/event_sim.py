"""A minimal deterministic discrete-event simulation engine.

Used by the simulated communicator to time tree collectives, and available
to extensions that need richer schedules than the analytic paths (e.g. the
per-process traces of the execution simulator).  Determinism: ties in event
time break by insertion sequence number.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.obs import get_tracer


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    action: Callable[["EventSimulator"], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Cancellation handle for one scheduled event.

    Cancelling marks the event; it stays in the queue and is discarded
    (uncounted) when popped, so cancellation is O(1) and the heap
    invariant is untouched.  Cancelling an already-executed or
    already-cancelled event is a no-op.
    """

    __slots__ = ("_event",)

    def __init__(self, event: _Event):
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled


class EventSimulator:
    """A classic event-queue simulator with a monotone clock."""

    def __init__(self) -> None:
        self._queue: list[_Event] = []
        self._seq = itertools.count()
        self.now = 0.0
        self._processed = 0
        # One tracer lookup per simulator, not per event: schedule() and
        # run() are the engine's inner loops.  Counter handles are cached
        # alongside; counter TOTALS stay identical to per-event accounting.
        self._tracer = get_tracer()
        if self._tracer.enabled:
            self._scheduled_counter = self._tracer.counter("sim.events.scheduled")
            self._processed_counter = self._tracer.counter("sim.events.processed")
            self._depth_gauge = self._tracer.gauge("sim.queue_depth")

    def schedule(
        self, delay: float, action: Callable[["EventSimulator"], None]
    ) -> EventHandle:
        """Run ``action`` ``delay`` seconds from the current clock."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        event = _Event(self.now + delay, next(self._seq), action)
        heapq.heappush(self._queue, event)
        if self._tracer.enabled:
            self._scheduled_counter.add(1)
        return EventHandle(event)

    def schedule_at(
        self, time: float, action: Callable[["EventSimulator"], None]
    ) -> EventHandle:
        """Run ``action`` at an absolute simulation time (>= now)."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time}, clock already at {self.now}"
            )
        event = _Event(time, next(self._seq), action)
        heapq.heappush(self._queue, event)
        if self._tracer.enabled:
            self._scheduled_counter.add(1)
        return EventHandle(event)

    def run(self, until: float | None = None) -> float:
        """Process events (optionally only up to ``until``); return the clock.

        Cancelled events are discarded as they surface: they advance
        neither the clock nor ``events_processed``.
        """
        drained = 0
        discarded = 0
        try:
            while self._queue:
                if until is not None and self._queue[0].time > until:
                    self.now = until
                    return self.now
                event = heapq.heappop(self._queue)
                if event.cancelled:
                    discarded += 1
                    continue
                self.now = event.time
                self._processed += 1
                drained += 1
                event.action(self)
            return self.now
        finally:
            # Per-drain (not per-event) instrumentation: one counter add
            # covering every event processed, one final queue-depth sample.
            if self._tracer.enabled:
                if drained:
                    self._processed_counter.add(drained)
                    self._depth_gauge.set(len(self._queue))
                if discarded:
                    self._tracer.counter("sim.events.cancelled").add(discarded)

    @property
    def events_processed(self) -> int:
        return self._processed

    @property
    def pending(self) -> int:
        return len(self._queue)
