"""Cluster-scale SPMD panel-loop simulation: vectorised + scalar oracle.

The paper's iterative data-parallel applications (matmul's broadcast-
update main loop, Jacobi sweeps) execute ``P`` *panels*: each panel
distributes pivot data, runs one kernel per device, and completes when
the slowest device finishes — a barrier.  Simulated one event per device
per panel on the discrete-event engine, a 10k-device x 100-panel run is
a million Python heap operations; that scalar walk is kept here as the
reference oracle.  The production lane instead schedules each panel as
**one batched drain generation** (:meth:`EventSimulator.schedule_batch`)
whose fire times come from a single NumPy expression over the device
array, so the whole run costs O(P) NumPy calls.

Bit-identity contract
---------------------
Both lanes run on the same event engine and perform the same IEEE
operations elementwise — per-device compute times come from the solver's
stacked segment tables (:meth:`BatchSpeedModels.times_at`) or their
scalar twin (:func:`time_row_at`), per-panel collectives from
:meth:`SimulatedComm.pivot_bcast_time` in array or iterable form — so
totals, per-panel finish times, per-device compute accumulations and
``events_processed`` are **bit-identical** between engines.  The
equivalence suite (tests/runtime/test_panel_loop.py) enforces this, and
the BENCH_9 gate pins the >= 10x speedup that justifies the batch lane.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.batch import batch_models, time_row_at
from repro.core.fpm import as_speed_function
from repro.obs import get_tracer
from repro.platform.drift import DriftModel
from repro.runtime.event_sim import EventSimulator
from repro.runtime.mpi_sim import SimulatedComm
from repro.util.units import DEFAULT_BLOCKING_FACTOR
from repro.util.validation import check_nonnegative, check_positive_int

#: Recognised panel-loop engines: the vectorised batch lane (production)
#: and the per-event scalar lane (reference oracle).
ENGINES = ("vector", "scalar")


@dataclass(frozen=True)
class PanelLoopResult:
    """Outcome of a simulated P-panel SPMD run."""

    panels: int
    devices: int
    total_time_s: float
    comm_time_s: float
    compute_time_s: tuple[float, ...]  # per-device accumulated kernel time
    panel_finish_s: tuple[float, ...]  # absolute completion time per panel
    events_processed: int
    engine: str

    @property
    def makespan_computation_s(self) -> float:
        """Accumulated kernel time of the slowest device."""
        return max(self.compute_time_s)

    @property
    def imbalance(self) -> float:
        """Slowest over fastest busy device (1.0 == perfect balance)."""
        busy = [t for t in self.compute_time_s if t > 0]
        return max(busy) / min(busy) if busy else 1.0


def _run_vector(
    compute: np.ndarray,
    panels: int,
    comm_s: float,
    drift: DriftModel | None = None,
    names: Sequence[str] | None = None,
):
    sim = EventSimulator()
    devices = compute.size
    delays = comm_s + compute  # one elementwise add, reused every panel
    totals = np.zeros(devices)
    finishes = np.empty(panels)
    state = {"panel": 0, "remaining": devices, "effective": compute}

    def schedule_panel(sim2: EventSimulator) -> None:
        state["remaining"] = devices
        if drift is None:
            sim2.schedule_batch(delays, on_panel)
            return
        # Drifted compute at the panel's start instant; one batched
        # multiplier query keeps this lane bit-identical to the scalar
        # per-device walk (DriftModel's own batch contract).
        effective = compute * drift.time_multipliers(names, sim2.now)
        state["effective"] = effective
        sim2.schedule_batch(comm_s + effective, on_panel)

    def on_panel(sim2: EventSimulator, times, indices) -> None:
        state["remaining"] -= indices.size
        if state["remaining"]:
            return  # a foreign event split the generation; wait for the rest
        np.add(totals, state["effective"], out=totals)
        k = state["panel"]
        finishes[k] = sim2.now
        state["panel"] = k + 1
        if state["panel"] < panels:
            schedule_panel(sim2)

    schedule_panel(sim)
    total = sim.run()
    return sim, total, totals, finishes


def _run_scalar(
    compute: np.ndarray,
    panels: int,
    comm_s: float,
    drift: DriftModel | None = None,
    names: Sequence[str] | None = None,
):
    sim = EventSimulator()
    devices = compute.size
    totals = np.zeros(devices)
    finishes = np.empty(panels)
    effective = compute.copy()
    state = {"panel": 0, "remaining": devices}

    def make_finish(i: int):
        def finish(sim2: EventSimulator) -> None:
            totals[i] += effective[i]
            state["remaining"] -= 1
            if state["remaining"] == 0:
                k = state["panel"]
                finishes[k] = sim2.now
                state["panel"] = k + 1
                if state["panel"] < panels:
                    start_panel(sim2)

        return finish

    finishers = [make_finish(i) for i in range(devices)]

    def start_panel(sim2: EventSimulator) -> None:
        state["remaining"] = devices
        if drift is not None:
            now = sim2.now
            for i in range(devices):
                effective[i] = compute[i] * drift.time_multiplier(names[i], now)
        for i in range(devices):
            sim2.schedule(comm_s + effective[i], finishers[i])

    start_panel(sim)
    total = sim.run()
    return sim, total, totals, finishes


def simulate_panel_loop(
    compute_s,
    panels: int,
    comm_s: float = 0.0,
    *,
    engine: str = "vector",
    drift: DriftModel | None = None,
    device_names: Sequence[str] | None = None,
) -> PanelLoopResult:
    """Simulate ``panels`` barrier-synchronised panels over a device array.

    ``compute_s[i]`` is device ``i``'s kernel time per panel and
    ``comm_s`` the per-panel collective charged before compute; each
    panel starts when the previous one's slowest device finishes.  The
    ``vector`` engine schedules each panel as one batched generation;
    ``scalar`` schedules one event per device (the oracle) — results are
    bit-identical (module doc).

    An optional :class:`~repro.platform.drift.DriftModel` makes device
    speed time-varying: each panel's compute times are stretched by the
    per-device drift time-multiplier sampled at the panel's start
    instant (``device_names`` keys the drift rules).  Both engines query
    the same multipliers — the vector lane in one batched call, the
    scalar lane per device — so their results stay bit-identical.
    """
    check_positive_int("panels", panels)
    check_nonnegative("comm_s", comm_s)
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    compute = np.asarray(compute_s, dtype=float)
    if compute.ndim != 1 or compute.size == 0:
        raise ValueError("compute_s must be a non-empty 1-D array")
    if float(compute.min()) < 0:
        raise ValueError("compute_s entries must be non-negative")
    if drift is not None and drift.inert:
        drift = None  # steady platform: keep the precomputed-delay path
    names: tuple[str, ...] | None = None
    if drift is not None:
        if device_names is None:
            raise ValueError("drift requires device_names")
        names = tuple(str(name) for name in device_names)
        if len(names) != compute.size:
            raise ValueError(
                f"{compute.size} devices but {len(names)} device_names"
            )

    tracer = get_tracer()
    with tracer.span(
        "runtime.panel_loop",
        category="runtime",
        devices=int(compute.size),
        panels=panels,
        engine=engine,
    ) as span:
        runner = _run_vector if engine == "vector" else _run_scalar
        sim, total, totals, finishes = runner(compute, panels, comm_s, drift, names)
        span.mark_sim(0.0, total)
        span.set_attr("events", sim.events_processed)
    comm_total = 0.0
    for _ in range(panels):
        comm_total += comm_s
    if tracer.enabled:
        tracer.counter("runtime.sim.panels").add(panels)
        tracer.counter("runtime.sim.device_events").add(int(compute.size) * panels)
        tracer.counter(f"runtime.sim.runs.{engine}").add(1)
        hist = tracer.histogram("runtime.sim.panel_s")
        previous = 0.0
        for finish in finishes:
            hist.observe(float(finish) - previous)
            previous = float(finish)
    return PanelLoopResult(
        panels=panels,
        devices=int(compute.size),
        total_time_s=float(total),
        comm_time_s=comm_total,
        compute_time_s=tuple(totals.tolist()),
        panel_finish_s=tuple(finishes.tolist()),
        events_processed=sim.events_processed,
        engine=engine,
    )


def simulate_spmd_run(
    models,
    allocations,
    panels: int,
    *,
    comm: SimulatedComm | None = None,
    block_size: int = DEFAULT_BLOCKING_FACTOR,
    recv_blocks=None,
    engine: str = "vector",
    drift: DriftModel | None = None,
    device_names: Sequence[str] | None = None,
) -> PanelLoopResult:
    """Simulate a P-panel SPMD run of devices described by speed models.

    Per-device per-panel compute times come from the stacked segment
    tables (:meth:`BatchSpeedModels.times_at` on the ``vector`` engine,
    the :func:`time_row_at` scalar twin on ``scalar``); when a
    communicator is given, the per-panel collective is the pivot
    broadcast over the device array, with ``recv_blocks`` defaulting to
    the square-ish rectangle perimeter ``2 * sqrt(allocation)`` blocks
    per device.  Engines are bit-identical; ``vector`` costs O(panels)
    NumPy calls regardless of device count.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    fns = [as_speed_function(m) for m in models]
    if not fns:
        raise ValueError("need at least one performance model")
    alloc = np.asarray(allocations, dtype=float)
    if alloc.size != len(fns):
        raise ValueError(
            f"{len(fns)} models but {alloc.size} allocations"
        )
    if engine == "vector":
        compute = batch_models(tuple(fns)).times_at(alloc)
        comm_s = 0.0
        if comm is not None:
            recv = (
                np.asarray(recv_blocks, dtype=float)
                if recv_blocks is not None
                else 2.0 * np.sqrt(alloc)
            )
            comm_s = comm.pivot_bcast_time(recv, block_size)
    else:
        compute = np.array(
            [time_row_at(fn, float(a)) for fn, a in zip(fns, alloc)]
        )
        comm_s = 0.0
        if comm is not None:
            recv = (
                [float(r) for r in recv_blocks]
                if recv_blocks is not None
                else [2.0 * math.sqrt(float(a)) for a in alloc]
            )
            comm_s = comm.pivot_bcast_time(recv, block_size)
    return simulate_panel_loop(
        compute,
        panels,
        comm_s,
        engine=engine,
        drift=drift,
        device_names=device_names,
    )
