"""Simulated communicator with a latency/bandwidth cost model.

Processes live on one shared-memory NUMA node, so point-to-point transfers
follow the classic Hockney model ``t = latency + nbytes / bandwidth``.
Collectives are timed by simulating the binomial communication tree on the
discrete-event engine — not by a closed-form log formula — so irregular
message sizes and rooted subsets behave correctly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.obs import get_tracer
from repro.runtime.event_sim import EventSimulator
from repro.util.units import blocks_to_bytes, blocks_to_bytes_batch
from repro.util.validation import check_nonnegative, check_positive


@dataclass(frozen=True)
class CommModel:
    """Hockney point-to-point parameters for intra-node messaging.

    Defaults model shared-memory MPI on the paper's node: a few
    microseconds of latency and a couple of GB/s of effective per-pair
    copy bandwidth.
    """

    latency_s: float = 5.0e-6
    bandwidth_gbs: float = 2.0

    def __post_init__(self) -> None:
        check_nonnegative("latency_s", self.latency_s)
        check_positive("bandwidth_gbs", self.bandwidth_gbs)

    def p2p_time(self, nbytes: float) -> float:
        """Seconds to move one message between two processes."""
        check_nonnegative("nbytes", nbytes)
        if nbytes == 0:
            return 0.0
        return self.latency_s + nbytes / (self.bandwidth_gbs * 1e9)


class SimulatedComm:
    """A communicator over ``size`` ranks with a shared cost model."""

    def __init__(self, size: int, model: CommModel = CommModel()):
        if size < 1:
            raise ValueError(f"communicator size must be >= 1, got {size}")
        self.size = size
        self.model = model

    def shrink(self, survivors: int) -> "SimulatedComm":
        """A communicator over the surviving ranks after device failures.

        The simulation analogue of ULFM's ``MPI_Comm_shrink``: the cost
        model is inherited, only the rank count changes.  ``survivors``
        must be in ``[1, size]`` — losing every process is not a
        communicator, it is a crash.
        """
        if not 1 <= survivors <= self.size:
            raise ValueError(
                f"survivors must be in [1, {self.size}], got {survivors}"
            )
        return SimulatedComm(survivors, self.model)

    def bcast_time(self, nbytes: float, participants: int | None = None) -> float:
        """Completion time of a binomial-tree broadcast to ``participants``.

        The root sends to progressively nearer ranks; each receiver
        forwards in later rounds, all simulated on the event engine.
        """
        p = self.size if participants is None else participants
        if p < 1 or p > self.size:
            raise ValueError(
                f"participants must be in [1, {self.size}], got {p}"
            )
        if p == 1 or nbytes == 0:
            return 0.0
        tracer = get_tracer()
        span = tracer.span(
            "mpi.bcast", category="runtime", nbytes=nbytes, participants=p
        )
        sim = EventSimulator()
        per_hop = self.model.p2p_time(nbytes)
        done = [math.inf] * p
        done[0] = 0.0

        def send(sim: EventSimulator, sender: int, receiver: int) -> None:
            def deliver(sim2: EventSimulator) -> None:
                done[receiver] = sim2.now
                _fanout(sim2, receiver)

            sim.schedule(per_hop, deliver)

        def _fanout(sim: EventSimulator, rank: int) -> None:
            # binomial tree: rank r sends to r + 2^k for increasing k
            offset = 1
            while rank + offset < p:
                if rank % (2 * offset) == 0:
                    send(sim, rank, rank + offset)
                    offset *= 2
                else:
                    break

        def kick(sim: EventSimulator) -> None:
            _fanout(sim, 0)

        sim.schedule(0.0, kick)
        sim.run()
        finish = max(t for t in done if math.isfinite(t))
        span.mark_sim(0.0, finish)
        span.finish()
        return finish

    def bcast_time_fast(
        self, nbytes: float, participants: int | None = None
    ) -> float:
        """Closed-form twin of :meth:`bcast_time` — O(1), bit-identical.

        In the simulated binomial tree, rank ``r`` receives the payload
        after ``popcount(r)`` sequential hops (one per set bit of its
        rank), so the broadcast completes when the deepest rank's per-hop
        times have accumulated ``max_{r < p} popcount(r)`` times.  This
        method performs exactly those float additions, skipping the
        event-engine walk — the equivalence test holds the two against
        each other across participant counts.
        """
        p = self.size if participants is None else participants
        if p < 1 or p > self.size:
            raise ValueError(
                f"participants must be in [1, {self.size}], got {p}"
            )
        if p == 1 or nbytes == 0:
            return 0.0
        per_hop = self.model.p2p_time(nbytes)
        deepest = p - 1
        depth = max(bin(deepest).count("1"), deepest.bit_length() - 1)
        finish = 0.0
        for _ in range(depth):
            finish += per_hop
        self._trace_collective("mpi.bcast", finish, nbytes)
        return finish

    def gather_time(self, nbytes_per_rank: float) -> float:
        """Completion time of a binomial-tree gather to rank 0.

        Symmetric to broadcast for equal contributions (message sizes grow
        toward the root; we charge each merge its combined payload).
        """
        check_nonnegative("nbytes_per_rank", nbytes_per_rank)
        if self.size == 1 or nbytes_per_rank == 0:
            return 0.0
        # reverse binomial tree: at round k, ranks with bit k set send their
        # accumulated 2^k contributions
        total = 0.0
        rounds = math.ceil(math.log2(self.size))
        for k in range(rounds):
            payload = nbytes_per_rank * (2**k)
            total += self.model.p2p_time(payload)
        self._trace_collective("mpi.gather", total, nbytes_per_rank)
        return total

    def _trace_collective(self, name: str, finish: float, nbytes: float) -> None:
        """Record one closed-form collective as a completed runtime span."""
        tracer = get_tracer()
        if tracer.enabled:
            tracer.record(
                name,
                category="runtime",
                sim_start_s=0.0,
                sim_end_s=finish,
                nbytes=nbytes,
                participants=self.size,
            )

    def pivot_bcast_time(
        self,
        recv_blocks: Iterable[float],
        block_size: int,
        participants: int | None = None,
    ) -> float:
        """Completion time of one pivot distribution of the main loop.

        Every process receives its pivot block-column and block-row pieces
        (``recv_blocks`` entries, in b x b blocks); with a tree
        distribution the completion time is dominated by the largest
        per-process payload plus the tree's latency depth.

        Passing a NumPy array evaluates the formula over the whole device
        array in one vectorised expression (bit-identical to the scalar
        generator, which iterables keep exercising as the oracle) — the
        per-panel path of cluster-scale simulations.
        """
        p = self.size if participants is None else participants
        depth = math.ceil(math.log2(p)) if p > 1 else 0
        if isinstance(recv_blocks, np.ndarray):
            blocks = np.asarray(recv_blocks, dtype=float)
            if blocks.size == 0:
                finish = 0.0
            else:
                finish = float(
                    np.max(
                        self.model.latency_s * depth
                        + blocks_to_bytes_batch(blocks, block_size)
                        / (self.model.bandwidth_gbs * 1e9)
                    )
                )
        else:
            finish = max(
                (
                    self.model.latency_s * depth
                    + blocks_to_bytes(blocks, block_size)
                    / (self.model.bandwidth_gbs * 1e9)
                    for blocks in recv_blocks
                ),
                default=0.0,
            )
        self._trace_collective("mpi.pivot_bcast", finish, 0.0)
        return finish

    def barrier_time(self) -> float:
        """A zero-byte dissemination barrier: latency * ceil(log2 p)."""
        if self.size == 1:
            return 0.0
        return self.model.latency_s * math.ceil(math.log2(self.size))

    def scatter_time(self, nbytes_per_rank: float) -> float:
        """Binomial-tree scatter from rank 0, halving payloads per level.

        The root first sends half the data to its subtree peer, then a
        quarter, and so on — each round's message is the portion destined
        for the receiving subtree.
        """
        check_nonnegative("nbytes_per_rank", nbytes_per_rank)
        if self.size == 1 or nbytes_per_rank == 0:
            return 0.0
        total = 0.0
        remaining = self.size
        while remaining > 1:
            half = remaining // 2
            total += self.model.p2p_time(nbytes_per_rank * half)
            remaining -= half
        self._trace_collective("mpi.scatter", total, nbytes_per_rank)
        return total

    def allgather_time(self, nbytes_per_rank: float) -> float:
        """Recursive-doubling allgather: payloads double each round."""
        check_nonnegative("nbytes_per_rank", nbytes_per_rank)
        if self.size == 1 or nbytes_per_rank == 0:
            return 0.0
        rounds = math.ceil(math.log2(self.size))
        total = 0.0
        for k in range(rounds):
            total += self.model.p2p_time(nbytes_per_rank * (2**k))
        self._trace_collective("mpi.allgather", total, nbytes_per_rank)
        return total

    def reduce_time(self, nbytes: float) -> float:
        """Binomial-tree reduction to rank 0 of fixed-size contributions.

        Unlike gather, the payload does not grow toward the root (partial
        results are combined), so every round moves ``nbytes``.
        """
        check_nonnegative("nbytes", nbytes)
        if self.size == 1 or nbytes == 0:
            return 0.0
        rounds = math.ceil(math.log2(self.size))
        finish = rounds * self.model.p2p_time(nbytes)
        self._trace_collective("mpi.reduce", finish, nbytes)
        return finish
