"""Real parallel execution of the partitioned product (multiprocessing).

Everything else in :mod:`repro.runtime` *simulates* the distributed
runtime; this module actually runs the heterogeneous decomposition in
parallel on the host machine: each worker process computes one rectangle
of ``C`` with numpy (``C_rect = A[rows, :] @ B[:, cols]`` — the
mathematical effect of the rectangle's accumulated rank-``b`` updates).

Purpose: an end-to-end, genuinely parallel demonstration that an FPM plan
is a correct decomposition — every block of the result is produced by
exactly one owner, workers share nothing, and the assembled matrix equals
``A @ B``.  Worker payloads are the input *strips* a rectangle owner would
hold, so the communication pattern mirrors the data distribution.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.app.blocking import BlockGrid
from repro.core.geometry import ColumnPartition, Rectangle
from repro.obs import get_tracer, wall_clock_s
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class ParallelRunReport:
    """What the parallel run did (for tests and curious users)."""

    workers_used: int
    rectangles_computed: int
    elements_computed: int


def _compute_rectangle(
    payload: tuple[int, np.ndarray, np.ndarray]
) -> tuple[int, np.ndarray, float]:
    """Worker: multiply one rectangle's strips (runs in a separate process).

    The payload is keyed by rectangle *index*, not owner — an owner may
    hold several rectangles (one per column it participates in), and the
    assembly must place each block at its own rectangle's coordinates.

    The worker times itself and ships the wall duration home — spawned
    processes have their own (disabled) tracer, so the parent records the
    per-worker span from the returned duration.
    """
    index, a_strip, b_strip = payload
    started_s = wall_clock_s()
    block = a_strip @ b_strip
    return index, block, wall_clock_s() - started_s


def parallel_partitioned_matmul(
    a: np.ndarray,
    b: np.ndarray,
    partition: ColumnPartition,
    block_size: int,
    max_workers: int | None = None,
) -> tuple[np.ndarray, ParallelRunReport]:
    """Compute ``C = A @ B`` with one parallel task per rectangle.

    Parameters
    ----------
    a, b:
        Square matrices matching the partition's block grid.
    partition:
        The column-based arrangement whose rectangles define the tasks.
    block_size:
        Blocking factor of the grid.
    max_workers:
        Process-pool size (defaults to the pool's own policy).  Rectangles
        are independent, so any worker count yields the same result.
    """
    check_positive_int("block_size", block_size)
    grid = BlockGrid(partition.n, block_size)
    if a.shape != (grid.elements, grid.elements) or b.shape != a.shape:
        raise ValueError(
            f"matrices must be {grid.elements} x {grid.elements} for this "
            f"partition, got A {a.shape}, B {b.shape}"
        )
    live: list[Rectangle] = [r for r in partition.rectangles if r.area > 0]
    slices = [
        (
            grid.block_slice(rect.row, rect.height),
            grid.block_slice(rect.col, rect.width),
        )
        for rect in live
    ]
    payloads = [
        (index, a[rows, :], b[:, cols])
        for index, (rows, cols) in enumerate(slices)
    ]

    c = np.zeros_like(a)
    tracer = get_tracer()
    with tracer.span(
        "parallel.matmul", category="runtime", rectangles=len(live)
    ) as span:
        workers = max_workers or min(8, len(live))
        if workers <= 1 or len(live) == 1:
            results = [_compute_rectangle(p) for p in payloads]
            workers_used = 1
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                results = list(pool.map(_compute_rectangle, payloads))
            # a pool never uses more processes than it has tasks
            workers_used = min(workers, len(live))

        elements = 0
        for index, block, worker_wall_s in results:
            rect = live[index]
            rows, cols = slices[index]
            c[rows, cols] = block
            elements += block.size
            if tracer.enabled:
                tracer.record(
                    "parallel.worker",
                    category="runtime",
                    wall_duration_s=worker_wall_s,
                    owner=rect.owner,
                    elements=int(block.size),
                )
        if elements != grid.elements * grid.elements:
            raise RuntimeError(
                f"workers produced {elements} elements, expected "
                f"{grid.elements ** 2} — the partition did not tile the matrix"
            )
        span.set_attr("workers_used", workers_used)
        return c, ParallelRunReport(
            workers_used=workers_used,
            rectangles_computed=len(live),
            elements_computed=elements,
        )
