"""Simulated distributed-memory runtime.

The paper executes the application as MPI processes bound to cores of one
hybrid node.  This package provides the simulation equivalents: a
discrete-event engine (:mod:`repro.runtime.event_sim`), a communicator with
a latency/bandwidth cost model and tree collectives
(:mod:`repro.runtime.mpi_sim`), and process abstractions bound to simulated
devices (:mod:`repro.runtime.process`).
"""

from repro.runtime.event_sim import EventSimulator
from repro.runtime.mpi_sim import CommModel, SimulatedComm
from repro.runtime.process import DeviceBoundProcess

__all__ = [
    "EventSimulator",
    "CommModel",
    "SimulatedComm",
    "DeviceBoundProcess",
]
