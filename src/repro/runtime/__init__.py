"""Simulated distributed-memory runtime.

The paper executes the application as MPI processes bound to cores of one
hybrid node.  This package provides the simulation equivalents: a
discrete-event engine (:mod:`repro.runtime.event_sim`), a communicator with
a latency/bandwidth cost model and tree collectives
(:mod:`repro.runtime.mpi_sim`), process abstractions bound to simulated
devices (:mod:`repro.runtime.process`), and degraded-mode repartitioning
after device drops (:mod:`repro.runtime.recovery`).
"""

from repro.runtime.event_sim import BatchHandle, EventHandle, EventSimulator
from repro.runtime.mpi_sim import CommModel, SimulatedComm
from repro.runtime.panel_loop import (
    PanelLoopResult,
    simulate_panel_loop,
    simulate_spmd_run,
)
from repro.runtime.process import DeviceBoundProcess

__all__ = [
    "BatchHandle",
    "EventHandle",
    "EventSimulator",
    "CommModel",
    "SimulatedComm",
    "DeviceBoundProcess",
    "PanelLoopResult",
    "simulate_panel_loop",
    "simulate_spmd_run",
    "RecoveryError",
    "RecoveryPolicy",
    "DropEvent",
    "RecoveryResult",
    "plan_switch_cost",
    "run_with_recovery",
    "DriftControlPolicy",
    "DriftController",
    "RepartitionEvent",
    "DriftRunResult",
    "run_with_drift_control",
]

_RECOVERY_EXPORTS = (
    "RecoveryError",
    "RecoveryPolicy",
    "DropEvent",
    "RecoveryResult",
    "plan_switch_cost",
    "run_with_recovery",
)

_DRIFT_EXPORTS = (
    "DriftControlPolicy",
    "DriftController",
    "RepartitionEvent",
    "DriftRunResult",
    "run_with_drift_control",
)


def __getattr__(name: str):
    # recovery and drift control plan over repro.app, which itself imports
    # this package; lazy attributes break the cycle while keeping the flat
    # public API
    if name in _RECOVERY_EXPORTS:
        from repro.runtime import recovery

        return getattr(recovery, name)
    if name in _DRIFT_EXPORTS:
        from repro.runtime import drift_control

        return getattr(drift_control, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
