"""Processes bound to devices: the unit the application simulator schedules.

Each application process is one rank pinned to one core; a *dedicated*
process drives a GPU and charges the GPU kernel's combined time, every
other process charges the CPU kernel time of its core group.  Contention
state is derived from the binding plan: CPU processes know whether a GPU
shares their socket, GPU processes know how many CPU kernels run beside
them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernels.gemm_cpu import CpuCoreGemmKernel
from repro.kernels.gemm_gpu import gpu_kernel as make_gpu_kernel
from repro.measurement.binding import BindingPlan, ProcessBinding
from repro.platform.device import SimulatedGpu, SimulatedSocket


@dataclass(frozen=True)
class DeviceBoundProcess:
    """One application rank with its kernel and contention context."""

    binding: ProcessBinding
    kernel: object  # Kernel protocol
    busy_cpu_cores: int  # CPU kernels sharing the socket (GPU processes)

    @property
    def rank(self) -> int:
        return self.binding.rank

    @property
    def is_dedicated(self) -> bool:
        return self.binding.is_dedicated

    def iteration_time(self, area_blocks: float) -> float:
        """Ideal seconds of one kernel run on this process's area."""
        if area_blocks == 0:
            return 0.0
        return self.kernel.run_time(area_blocks, self.busy_cpu_cores)


def bind_processes(
    plan: BindingPlan,
    sockets: list[SimulatedSocket],
    gpus: list[SimulatedGpu],
    gpu_version: int = 3,
    cpu_loaded: bool = True,
) -> list[DeviceBoundProcess]:
    """Instantiate all ranks of a binding plan with their kernels.

    ``cpu_loaded`` marks whether CPU processes actually receive work (it
    determines the GPU processes' contention state in the default, fully
    loaded application).
    """
    processes: list[DeviceBoundProcess] = []
    for b in plan.bindings:
        socket = sockets[b.socket_index]
        cpu_ranks_here = plan.cpu_ranks_on_socket(b.socket_index)
        gpus_here = [
            pb for pb in plan.bindings
            if pb.socket_index == b.socket_index and pb.is_dedicated
        ]
        if b.is_dedicated:
            kernel = make_gpu_kernel(gpus[b.gpu_index], gpu_version)
            busy = len(cpu_ranks_here) if cpu_loaded else 0
            processes.append(
                DeviceBoundProcess(binding=b, kernel=kernel, busy_cpu_cores=busy)
            )
        else:
            # each CPU process runs the kernel on 1 core; the effective
            # per-core speed reflects all active CPU kernels on the socket
            kernel = CpuCoreGemmKernel(
                socket=socket,
                active_cores=max(1, len(cpu_ranks_here)),
                gpu_active=bool(gpus_here),
            )
            processes.append(
                DeviceBoundProcess(binding=b, kernel=kernel, busy_cpu_cores=0)
            )
    return processes
