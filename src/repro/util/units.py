"""Unit conversions for the matrix-multiplication workload.

The paper measures *problem size* as matrix **area in square blocks** of
``b x b`` elements (blocking factor ``b = 640`` in all experiments).  One run
of the computational kernel on a processor holding an area of ``x`` blocks
performs one rank-``b`` update ``C_i += A_(b) x B_(b)`` where ``C_i`` has
``x * b^2`` elements, i.e. ``2 * x * b^3`` floating-point operations.

Speeds are reported in GFlops (1e9 flops / second), single precision
(4 bytes/element), matching the paper's figures.
"""

from __future__ import annotations

from repro.util.validation import check_nonnegative, check_positive

#: Bytes per single-precision (float32) matrix element.
BYTES_PER_SP_ELEMENT = 4

#: The paper's blocking factor (elements per block side).
DEFAULT_BLOCKING_FACTOR = 640


def blocks_to_elements(area_blocks: float, block_size: int = DEFAULT_BLOCKING_FACTOR) -> float:
    """Number of matrix elements in an area of ``area_blocks`` b x b blocks."""
    check_nonnegative("area_blocks", area_blocks)
    check_positive("block_size", block_size)
    return area_blocks * block_size * block_size


def blocks_to_bytes(area_blocks: float, block_size: int = DEFAULT_BLOCKING_FACTOR) -> float:
    """Single-precision storage, in bytes, of an area of ``area_blocks`` blocks."""
    return blocks_to_elements(area_blocks, block_size) * BYTES_PER_SP_ELEMENT


def blocks_to_bytes_batch(area_blocks, block_size: int = DEFAULT_BLOCKING_FACTOR):
    """:func:`blocks_to_bytes` over an array of areas, element-identical.

    Areas are assumed pre-validated (>= 0); the operation order mirrors
    the scalar helper exactly so batched byte counts match scalar ones
    bitwise.
    """
    check_positive("block_size", block_size)
    return area_blocks * block_size * block_size * BYTES_PER_SP_ELEMENT


def gemm_kernel_flops(area_blocks: float, block_size: int = DEFAULT_BLOCKING_FACTOR) -> float:
    """Flops of ONE kernel run ``C_i += A_(b) x B_(b)`` on area ``area_blocks``.

    The submatrix ``C_i`` holds ``area_blocks * b^2`` elements; the rank-``b``
    update performs ``2 b`` flops per element of ``C_i``.
    """
    return 2.0 * blocks_to_elements(area_blocks, block_size) * block_size


def gemm_kernel_flops_batch(area_blocks, block_size: int = DEFAULT_BLOCKING_FACTOR):
    """:func:`gemm_kernel_flops` over an array of areas, element-identical.

    Areas are assumed pre-validated (>= 0); the operation order mirrors the
    scalar helper exactly so batched kernel times match scalar ones bitwise.
    """
    check_positive("block_size", block_size)
    return 2.0 * (area_blocks * block_size * block_size) * block_size


def matmul_total_flops(n_blocks: int, block_size: int = DEFAULT_BLOCKING_FACTOR) -> float:
    """Total flops of the full ``n x n``-block square matrix multiplication.

    The matrices are ``(n*b) x (n*b)`` elements, hence ``2 (n b)^3`` flops.
    Equivalently: ``n`` iterations of the main loop, each a kernel run over
    the full ``n^2``-block area.
    """
    check_nonnegative("n_blocks", n_blocks)
    side = n_blocks * block_size
    return 2.0 * side * side * side


def gflops(flops: float, seconds: float) -> float:
    """Speed in GFlops given a flop count and an execution time."""
    check_nonnegative("flops", flops)
    check_positive("seconds", seconds)
    return flops / seconds / 1e9


def seconds_for(flops: float, speed_gflops: float) -> float:
    """Execution time for ``flops`` at a sustained speed of ``speed_gflops``."""
    check_nonnegative("flops", flops)
    check_positive("speed_gflops", speed_gflops)
    return flops / (speed_gflops * 1e9)


def mib(num_bytes: float) -> float:
    """Bytes -> mebibytes (MiB)."""
    return num_bytes / (1024.0 * 1024.0)
