"""Resource timelines for the out-of-core overlap simulator.

The GPU kernel version 3 (paper Fig. 4b) pipelines three resource classes —
the compute engine and one or two DMA engines — and its simulated schedule is
recorded as a :class:`Timeline` of :class:`Interval` records.  The timeline
offers the integrity checks the tests rely on: intervals on one resource must
never overlap, and makespan/utilization queries drive the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


@dataclass(frozen=True)
class Interval:
    """A half-open occupancy interval ``[start, end)`` of one resource."""

    resource: str
    start: float
    end: float
    label: str = ""

    def __post_init__(self) -> None:
        if not self.end >= self.start:
            raise ValueError(
                f"interval end {self.end} earlier than start {self.start}"
            )
        if self.start < 0:
            raise ValueError(f"interval start must be >= 0, got {self.start}")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "Interval") -> bool:
        """True when the two half-open intervals intersect in time."""
        return self.start < other.end and other.start < self.end


@dataclass
class Timeline:
    """An append-only schedule of resource occupancy intervals."""

    intervals: list[Interval] = field(default_factory=list)

    def add(self, resource: str, start: float, end: float, label: str = "") -> Interval:
        """Record an occupancy interval and return it."""
        iv = Interval(resource, start, end, label)
        self.intervals.append(iv)
        return iv

    def makespan(self) -> float:
        """Latest end time over all intervals (0.0 when empty)."""
        return max((iv.end for iv in self.intervals), default=0.0)

    def resources(self) -> list[str]:
        """Sorted list of distinct resource names seen so far."""
        return sorted({iv.resource for iv in self.intervals})

    def on_resource(self, resource: str) -> list[Interval]:
        """Intervals of one resource, ordered by start time."""
        return sorted(
            (iv for iv in self.intervals if iv.resource == resource),
            key=lambda iv: (iv.start, iv.end),
        )

    def busy_time(self, resource: str) -> float:
        """Total occupied time of a resource (union of its intervals)."""
        merged = merge_intervals(self.on_resource(resource))
        return sum(end - start for start, end in merged)

    def utilization(self, resource: str) -> float:
        """Busy time of a resource divided by the makespan (0.0 when empty)."""
        span = self.makespan()
        if span == 0.0:
            return 0.0
        return self.busy_time(resource) / span

    def conflicts(self) -> list[tuple[Interval, Interval]]:
        """Pairs of same-resource intervals that overlap (should be empty).

        Zero-duration intervals never conflict.
        """
        bad: list[tuple[Interval, Interval]] = []
        for resource in self.resources():
            ivs = [iv for iv in self.on_resource(resource) if iv.duration > 0]
            for a, b in zip(ivs, ivs[1:]):
                if a.overlaps(b):
                    bad.append((a, b))
        return bad

    def validate(self) -> None:
        """Raise ValueError when any resource double-books itself."""
        bad = self.conflicts()
        if bad:
            a, b = bad[0]
            raise ValueError(
                f"resource {a.resource!r} double-booked: "
                f"{a.label or a} overlaps {b.label or b}"
            )


def merge_intervals(intervals: Iterable[Interval]) -> list[tuple[float, float]]:
    """Merge possibly-overlapping intervals into disjoint (start, end) spans."""
    spans = sorted((iv.start, iv.end) for iv in intervals)
    merged: list[tuple[float, float]] = []
    for start, end in spans:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged
