"""Deterministic random-number management.

Every stochastic element of the simulation (measurement noise, contention
jitter) draws from an :class:`RngStream`, a thin wrapper around
``numpy.random.Generator`` that supports hierarchical, *named* child streams.
Deriving children by name rather than by call order keeps experiments
reproducible even when the code paths that consume randomness are reordered.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

import numpy as np


def _path_hasher(base_seed: int, names: Iterable[object]):
    """The BLAKE2 hasher of a seed path, ready to be extended or digested."""
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(base_seed)).encode("utf-8"))
    for name in names:
        h.update(b"/")
        h.update(str(name).encode("utf-8"))
    return h


def derive_seed(base_seed: int, *names: str) -> int:
    """Derive a child seed from a base seed and a path of names.

    Uses BLAKE2 over the textual path so the mapping is stable across runs,
    platforms and Python versions (unlike ``hash()``).
    """
    return int.from_bytes(_path_hasher(base_seed, names).digest(), "little")


def sibling_seeds(
    base_seed: int,
    prefix: Sequence[object],
    leaves: Iterable[object],
) -> list[int]:
    """Seeds of many streams sharing a path prefix, hashing the prefix once.

    Each leaf may be one path component or a tuple of trailing components:
    ``sibling_seeds(s, ("a",), [("b", "c")])[0] == derive_seed(s, "a", "b", "c")``.
    The prefix digest is computed once and extended per leaf via hasher
    copies, which is what makes batched noise generation cheap; the result
    is bit-identical to calling :func:`derive_seed` on each full path.
    """
    base = _path_hasher(base_seed, prefix)
    seeds = []
    for leaf in leaves:
        h = base.copy()
        for part in leaf if isinstance(leaf, tuple) else (leaf,):
            h.update(b"/")
            h.update(str(part).encode("utf-8"))
        seeds.append(int.from_bytes(h.digest(), "little"))
    return seeds


def sibling_generators(
    base_seed: int,
    prefix: Sequence[object],
    leaves: Iterable[object],
) -> list[np.random.Generator]:
    """Generators of many sibling streams (see :func:`sibling_seeds`).

    ``sibling_generators(s, p, [leaf])[0]`` draws the same sequence as
    ``RngStream(s, (*p, leaf)).generator``: for integer seeds
    ``default_rng(seed)`` is exactly ``Generator(PCG64(seed))``, spelled
    directly here to skip the dispatch overhead on the batched hot path.
    """
    generator = np.random.Generator
    pcg64 = np.random.PCG64
    return [
        generator(pcg64(seed))
        for seed in sibling_seeds(base_seed, prefix, leaves)
    ]


class RngStream:
    """A named, seedable random stream with named child derivation.

    >>> root = RngStream(42)
    >>> a = root.child("gpu0")
    >>> b = root.child("gpu0")
    >>> a.uniform(0, 1) == b.uniform(0, 1)
    True
    """

    def __init__(self, seed: int, _path: tuple[str, ...] = ()):
        self.seed = int(seed)
        self.path = _path
        self._gen = np.random.default_rng(derive_seed(self.seed, *_path))

    def child(self, name: str) -> "RngStream":
        """Return an independent stream derived from this one by ``name``."""
        return RngStream(self.seed, self.path + (str(name),))

    # -- convenience draws -------------------------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """One uniform draw in [low, high)."""
        return float(self._gen.uniform(low, high))

    def normal(self, mean: float = 0.0, std: float = 1.0) -> float:
        """One Gaussian draw."""
        return float(self._gen.normal(mean, std))

    def lognormal_factor(self, sigma: float) -> float:
        """A multiplicative noise factor with median 1.0 (log-normal)."""
        if sigma == 0.0:
            return 1.0
        return float(np.exp(self._gen.normal(0.0, sigma)))

    def integers(self, low: int, high: int) -> int:
        """One integer draw in [low, high)."""
        return int(self._gen.integers(low, high))

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        self._gen.shuffle(items)

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy Generator (for bulk array draws)."""
        return self._gen

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RngStream(seed={self.seed}, path={'/'.join(self.path) or '<root>'})"
