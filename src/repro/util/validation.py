"""Argument-validation helpers used across the library.

All helpers raise :class:`ValueError` (or :class:`TypeError` for wrong types)
with messages that name the offending argument, so API misuse surfaces at the
call boundary rather than deep inside numerical code.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Sequence


def check_positive(name: str, value: float) -> float:
    """Return ``value`` if it is a finite number > 0, else raise ValueError."""
    _check_number(name, value)
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return value


def check_nonnegative(name: str, value: float) -> float:
    """Return ``value`` if it is a finite number >= 0, else raise ValueError."""
    _check_number(name, value)
    if not math.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a finite non-negative number, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Return ``value`` if it lies in the closed interval [0, 1]."""
    _check_number(name, value)
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")
    return value


def check_in(name: str, value: Any, allowed: Iterable[Any]) -> Any:
    """Return ``value`` if it is one of ``allowed``, else raise ValueError."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed!r}, got {value!r}")
    return value


def check_positive_int(name: str, value: int) -> int:
    """Return ``value`` if it is an integer >= 1."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return value


def check_nonnegative_int(name: str, value: int) -> int:
    """Return ``value`` if it is an integer >= 0."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_sorted_unique(name: str, values: Sequence[float]) -> Sequence[float]:
    """Return ``values`` if strictly increasing, else raise ValueError."""
    for a, b in zip(values, values[1:]):
        if not a < b:
            raise ValueError(
                f"{name} must be strictly increasing, got {a!r} followed by {b!r}"
            )
    return values


def check_same_length(name_a: str, a: Sequence, name_b: str, b: Sequence) -> None:
    """Raise ValueError unless two sequences have equal length."""
    if len(a) != len(b):
        raise ValueError(
            f"{name_a} and {name_b} must have the same length "
            f"({len(a)} != {len(b)})"
        )


def _check_number(name: str, value: Any) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
