"""Statistical helpers for the measurement subsystem.

Section III of the paper requires that "experiments are repeated multiple
times until the results are statistically reliable".  The standard protocol
(used by the authors' fupermod tool) is: keep repeating until the half-width
of the Student-t confidence interval of the mean drops below a requested
fraction of the mean, subject to a minimum/maximum repetition count.

:class:`RunningStats` implements Welford's online algorithm so the benchmark
loop never stores the full sample history.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np  # noqa: F401 - ndarray in annotations
from scipy import stats as _scipy_stats

from repro.util.validation import check_positive, check_probability


def student_t_critical(confidence: float, dof: int) -> float:
    """Two-sided Student-t critical value for a confidence level and dof >= 1."""
    check_probability("confidence", confidence)
    if dof < 1:
        raise ValueError(f"dof must be >= 1, got {dof}")
    alpha = 1.0 - confidence
    return float(_scipy_stats.t.ppf(1.0 - alpha / 2.0, dof))


@lru_cache(maxsize=4096)
def _student_t_critical_cached(confidence: float, dof: int) -> float:
    return student_t_critical(confidence, dof)


def confidence_interval(
    mean: float, std: float, n: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Student-t confidence interval of the mean of ``n`` observations."""
    if n < 2:
        raise ValueError("confidence interval needs at least 2 observations")
    half = student_t_critical(confidence, n - 1) * std / math.sqrt(n)
    return (mean - half, mean + half)


def relative_precision(mean: float, std: float, n: int, confidence: float = 0.95) -> float:
    """CI half-width divided by the mean (the reliability criterion).

    Returns ``inf`` when fewer than two observations exist or the mean is 0.
    """
    if n < 2 or mean == 0.0:
        return math.inf
    half = student_t_critical(confidence, n - 1) * std / math.sqrt(n)
    return abs(half / mean)


@dataclass
class RunningStats:
    """Welford online mean/variance accumulator.

    >>> rs = RunningStats()
    >>> for v in (1.0, 2.0, 3.0):
    ...     rs.add(v)
    >>> rs.mean
    2.0
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0

    def add(self, value: float) -> None:
        """Accumulate one observation."""
        if not math.isfinite(value):
            raise ValueError(f"observation must be finite, got {value!r}")
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 until two observations exist)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(self.variance)

    def relative_precision(self, confidence: float = 0.95) -> float:
        """Reliability criterion of the accumulated sample (see module doc)."""
        return relative_precision(self.mean, self.std, self.count, confidence)

    def is_reliable(self, rel_err: float = 0.025, confidence: float = 0.95) -> bool:
        """True when the CI half-width is within ``rel_err`` of the mean."""
        check_positive("rel_err", rel_err)
        return self.relative_precision(confidence) <= rel_err

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Return a new accumulator equivalent to both samples combined."""
        if other.count == 0:
            return RunningStats(self.count, self.mean, self._m2)
        if self.count == 0:
            return RunningStats(other.count, other.mean, other._m2)
        n = self.count + other.count
        delta = other.mean - self.mean
        mean = self.mean + delta * other.count / n
        m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / n
        return RunningStats(n, mean, m2)


def relative_precision_cached(stats: RunningStats, confidence: float = 0.95) -> float:
    """:meth:`RunningStats.relative_precision` via the memoised t-critical.

    Bit-identical to the scalar method (same scipy value, same operation
    order); used by the batch measurement path for its final statistics so
    a cold FPM sweep pays one ``t.ppf`` call per distinct (confidence, dof)
    instead of one per measurement.
    """
    if stats.count < 2 or stats.mean == 0.0:
        return math.inf
    t = _student_t_critical_cached(confidence, stats.count - 1)
    half = t * stats.std / math.sqrt(stats.count)
    return abs(half / stats.mean)


def first_reliable_prefix(
    stats: RunningStats,
    values: np.ndarray,
    rel_err: float,
    confidence: float,
    min_count: int,
) -> bool:
    """Absorb a chunk of observations, stopping at the first reliable prefix.

    Feeds ``values`` into ``stats`` in order and returns True when some
    prefix (of the accumulated sample, counting observations absorbed
    before this call) first satisfies ``count >= min_count`` and
    :meth:`RunningStats.is_reliable`; ``stats`` is then left exactly at the
    state after the stopping observation, as if the later values were never
    drawn.  Returns False (with every value absorbed) otherwise.

    The Welford recurrence is inherently sequential, so the chunk is
    absorbed in a scalar loop; the Student-t rule at each prefix uses the
    memoised critical value and the exact operation order of
    :func:`relative_precision`, making the stopping decision bit-identical
    to checking :meth:`RunningStats.is_reliable` after every observation
    while paying one ``t.ppf`` call per distinct dof for the whole sweep.
    """
    check_positive("rel_err", rel_err)
    for value in values:
        stats.add(float(value))
        if stats.count < min_count or stats.count < 2 or stats.mean == 0.0:
            continue
        t = _student_t_critical_cached(confidence, stats.count - 1)
        half = t * stats.std / math.sqrt(stats.count)
        if abs(half / stats.mean) <= rel_err:
            return True
    return False


def geometric_mean(values: list[float]) -> float:
    """Geometric mean of strictly positive values."""
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    log_sum = 0.0
    for v in values:
        check_positive("value", v)
        log_sum += math.log(v)
    return math.exp(log_sum / len(values))


def coefficient_of_variation(values: list[float]) -> float:
    """Sample std / mean; 0.0 for constant or single-element samples."""
    rs = RunningStats()
    for v in values:
        rs.add(v)
    if rs.count < 2 or rs.mean == 0.0:
        return 0.0
    return rs.std / abs(rs.mean)
