"""Statistical helpers for the measurement subsystem.

Section III of the paper requires that "experiments are repeated multiple
times until the results are statistically reliable".  The standard protocol
(used by the authors' fupermod tool) is: keep repeating until the half-width
of the Student-t confidence interval of the mean drops below a requested
fraction of the mean, subject to a minimum/maximum repetition count.

:class:`RunningStats` implements Welford's online algorithm so the benchmark
loop never stores the full sample history.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import stats as _scipy_stats

from repro.util.validation import check_positive, check_probability


def student_t_critical(confidence: float, dof: int) -> float:
    """Two-sided Student-t critical value for a confidence level and dof >= 1."""
    check_probability("confidence", confidence)
    if dof < 1:
        raise ValueError(f"dof must be >= 1, got {dof}")
    alpha = 1.0 - confidence
    return float(_scipy_stats.t.ppf(1.0 - alpha / 2.0, dof))


def confidence_interval(
    mean: float, std: float, n: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Student-t confidence interval of the mean of ``n`` observations."""
    if n < 2:
        raise ValueError("confidence interval needs at least 2 observations")
    half = student_t_critical(confidence, n - 1) * std / math.sqrt(n)
    return (mean - half, mean + half)


def relative_precision(mean: float, std: float, n: int, confidence: float = 0.95) -> float:
    """CI half-width divided by the mean (the reliability criterion).

    Returns ``inf`` when fewer than two observations exist or the mean is 0.
    """
    if n < 2 or mean == 0.0:
        return math.inf
    half = student_t_critical(confidence, n - 1) * std / math.sqrt(n)
    return abs(half / mean)


@dataclass
class RunningStats:
    """Welford online mean/variance accumulator.

    >>> rs = RunningStats()
    >>> for v in (1.0, 2.0, 3.0):
    ...     rs.add(v)
    >>> rs.mean
    2.0
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0

    def add(self, value: float) -> None:
        """Accumulate one observation."""
        if not math.isfinite(value):
            raise ValueError(f"observation must be finite, got {value!r}")
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 until two observations exist)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(self.variance)

    def relative_precision(self, confidence: float = 0.95) -> float:
        """Reliability criterion of the accumulated sample (see module doc)."""
        return relative_precision(self.mean, self.std, self.count, confidence)

    def is_reliable(self, rel_err: float = 0.025, confidence: float = 0.95) -> bool:
        """True when the CI half-width is within ``rel_err`` of the mean."""
        check_positive("rel_err", rel_err)
        return self.relative_precision(confidence) <= rel_err

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Return a new accumulator equivalent to both samples combined."""
        if other.count == 0:
            return RunningStats(self.count, self.mean, self._m2)
        if self.count == 0:
            return RunningStats(other.count, other.mean, other._m2)
        n = self.count + other.count
        delta = other.mean - self.mean
        mean = self.mean + delta * other.count / n
        m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / n
        return RunningStats(n, mean, m2)


def geometric_mean(values: list[float]) -> float:
    """Geometric mean of strictly positive values."""
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    log_sum = 0.0
    for v in values:
        check_positive("value", v)
        log_sum += math.log(v)
    return math.exp(log_sum / len(values))


def coefficient_of_variation(values: list[float]) -> float:
    """Sample std / mean; 0.0 for constant or single-element samples."""
    rs = RunningStats()
    for v in values:
        rs.add(v)
    if rs.count < 2 or rs.mean == 0.0:
        return 0.0
    return rs.std / abs(rs.mean)
