"""Generic frozen-dataclass <-> JSON-value codec.

Experiment results and measurement artifacts are (possibly nested) frozen
dataclasses built from tuples and primitives.  :func:`to_jsonable`
flattens them into JSON-compatible values; :func:`from_jsonable` inverts
the flattening given the target dataclass type, reconstructing nested
dataclasses and converting JSON lists back into the tuples the type
hints declare.  Together they let the content-addressed store
(:mod:`repro.store`) persist any experiment result as inspectable JSON
and hand back an object indistinguishable from a fresh run — floats
survive the round-trip exactly (JSON uses ``repr`` precision).
"""

from __future__ import annotations

import dataclasses
import types
import typing
from typing import Any


def to_jsonable(value: Any) -> Any:
    """Recursively convert dataclasses/tuples to JSON-compatible values."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: to_jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"cannot export value of type {type(value).__name__}")


def qualified_type_name(cls: type) -> str:
    """``"module:ClassName"`` — the store's record of a payload's type."""
    return f"{cls.__module__}:{cls.__qualname__}"


def resolve_type_name(name: str) -> type:
    """Inverse of :func:`qualified_type_name` (imports the module)."""
    import importlib

    module_name, _, qualname = name.partition(":")
    if not module_name or not qualname or "." in qualname:
        raise ValueError(f"malformed type name {name!r}")
    obj: Any = importlib.import_module(module_name)
    obj = getattr(obj, qualname)
    if not isinstance(obj, type):
        raise TypeError(f"{name!r} does not resolve to a class")
    return obj


def from_jsonable(cls: type, data: Any) -> Any:
    """Rebuild an instance of dataclass ``cls`` from :func:`to_jsonable` output."""
    return _decode(cls, data)


def _decode(hint: Any, data: Any) -> Any:
    if hint is Any or hint is None:
        return data
    origin = typing.get_origin(hint)
    if origin is None:
        if dataclasses.is_dataclass(hint):
            return _decode_dataclass(hint, data)
        if hint is float:
            return float(data)
        if hint in (int, str, bool):
            return data
        if hint is type(None):
            return None
        return data
    args = typing.get_args(hint)
    if origin in (typing.Union, types.UnionType):
        return _decode_union(args, data)
    if origin is tuple:
        if len(args) == 2 and args[1] is Ellipsis:
            return tuple(_decode(args[0], v) for v in data)
        return tuple(_decode(a, v) for a, v in zip(args, data))
    if origin is list:
        inner = args[0] if args else Any
        return [_decode(inner, v) for v in data]
    if origin is dict:
        key_hint = args[0] if args else Any
        val_hint = args[1] if len(args) > 1 else Any
        return {
            _decode_key(key_hint, k): _decode(val_hint, v)
            for k, v in data.items()
        }
    return data


def _decode_union(args: tuple, data: Any) -> Any:
    if data is None:
        return None
    for arg in args:
        if arg is type(None):
            continue
        try:  # noqa: PERF203 - attempting each union arm IS the algorithm
            return _decode(arg, data)
        except (TypeError, ValueError, KeyError):
            continue
    return data


def _decode_key(hint: Any, key: str) -> Any:
    """JSON object keys are strings; restore the declared key type."""
    if hint is int:
        return int(key)
    if hint is float:
        return float(key)
    return key


def _decode_dataclass(cls: type, data: Any) -> Any:
    if not isinstance(data, dict):
        raise TypeError(
            f"expected a mapping for {cls.__name__}, got {type(data).__name__}"
        )
    hints = typing.get_type_hints(cls)
    kwargs = {}
    for field in dataclasses.fields(cls):
        if field.name not in data:
            continue  # let the dataclass default fill the gap
        kwargs[field.name] = _decode(
            hints.get(field.name, Any), data[field.name]
        )
    return cls(**kwargs)
