"""Shared utilities: statistics, units, validation, RNG, tables, timelines.

These modules are deliberately dependency-light (numpy/scipy only) and are
used by every other subsystem of :mod:`repro`.
"""

from repro.util.rng import RngStream, derive_seed
from repro.util.stats import (
    RunningStats,
    confidence_interval,
    relative_precision,
    student_t_critical,
)
from repro.util.units import (
    BYTES_PER_SP_ELEMENT,
    blocks_to_elements,
    blocks_to_bytes,
    gemm_kernel_flops,
    gflops,
    matmul_total_flops,
)
from repro.util.validation import (
    check_in,
    check_nonnegative,
    check_positive,
    check_probability,
)

__all__ = [
    "RngStream",
    "derive_seed",
    "RunningStats",
    "confidence_interval",
    "relative_precision",
    "student_t_critical",
    "BYTES_PER_SP_ELEMENT",
    "blocks_to_elements",
    "blocks_to_bytes",
    "gemm_kernel_flops",
    "gflops",
    "matmul_total_flops",
    "check_in",
    "check_nonnegative",
    "check_positive",
    "check_probability",
]
