"""Terminal line plots for the experiment CLI.

The paper's figures are speed/time curves; ``python -m repro fig3 --plot``
renders them as ASCII charts so the shapes (plateaus, cliffs, crossovers)
are visible without leaving the terminal.  Pure-text, no dependencies.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.util.validation import check_positive_int

#: Symbols assigned to series in order.
_MARKERS = "ox+*#@%&"


def line_plot(
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 68,
    height: int = 18,
    title: str | None = None,
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render one or more y-series against a shared x-axis.

    Points are plotted with one marker per series; a legend maps markers
    to names.  Values are linearly scaled into the plot box; non-finite
    values are skipped.
    """
    check_positive_int("width", width)
    check_positive_int("height", height)
    if not series:
        raise ValueError("need at least one series")
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(ys)} points, x has {len(x_values)}"
            )
    if len(series) > len(_MARKERS):
        raise ValueError(f"at most {len(_MARKERS)} series supported")

    xs = [float(x) for x in x_values]
    all_y = [
        float(y)
        for ys in series.values()
        for y in ys
        if math.isfinite(float(y))
    ]
    if not xs or not all_y:
        raise ValueError("nothing to plot")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(all_y), max(all_y)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, mark: str) -> None:
        col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = mark

    for (name, ys), mark in zip(series.items(), _MARKERS):
        pts = [
            (x, float(y))
            for x, y in zip(xs, ys)
            if math.isfinite(float(y))
        ]
        # connect consecutive points with interpolated marks for visibility
        for (x0, y0), (x1, y1) in zip(pts, pts[1:]):
            steps = max(
                2,
                round(abs(x1 - x0) / (x_hi - x_lo) * (width - 1)) + 1,
            )
            for k in range(steps + 1):
                t = k / steps
                place(x0 + t * (x1 - x0), y0 + t * (y1 - y0), mark)
        for x, y in pts:
            place(x, y, mark)

    lines = []
    if title:
        lines.append(title)
    label_width = max(
        len(f"{y_hi:.4g}"), len(f"{y_lo:.4g}"), len(y_label)
    )
    if y_label:
        lines.append(f"{y_label:>{label_width}}")
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{y_hi:.4g}"
        elif i == height - 1:
            label = f"{y_lo:.4g}"
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |{''.join(row)}|")
    axis = f"{'':>{label_width}} +{'-' * width}+"
    lines.append(axis)
    x_left = f"{x_lo:.4g}"
    x_right = f"{x_hi:.4g}"
    padding = width - len(x_left) - len(x_right)
    lines.append(
        f"{'':>{label_width}}  {x_left}{' ' * max(1, padding)}{x_right}"
        + (f"  {x_label}" if x_label else "")
    )
    legend = "   ".join(
        f"{mark} = {name}" for (name, _), mark in zip(series.items(), _MARKERS)
    )
    lines.append(f"{'':>{label_width}}  {legend}")
    return "\n".join(lines)
