"""Minimal ASCII table rendering for experiment and benchmark output.

The experiment harness prints the same rows the paper's tables report; this
module renders them without any third-party dependency.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_cell(value: Any, precision: int = 2) -> str:
    """Render a single cell: floats get fixed precision, others use str()."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
    precision: int = 2,
) -> str:
    """Render an ASCII table with right-aligned numeric-looking columns.

    >>> print(render_table(["n", "t"], [[1, 2.5]]))
    n |    t
    --+-----
    1 | 2.50
    """
    str_rows = [[format_cell(c, precision) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.rjust(widths[j]) for j, c in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def render_series(
    x_name: str,
    x_values: Sequence[Any],
    series: dict[str, Sequence[Any]],
    title: str | None = None,
    precision: int = 2,
) -> str:
    """Render several named y-series against a common x-axis as a table.

    This mirrors how the paper's figures are tabulated in EXPERIMENTS.md.
    """
    headers = [x_name, *series.keys()]
    columns = list(series.values())
    for name, col in series.items():
        if len(col) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(col)} points but x has {len(x_values)}"
            )
    rows = [
        [x, *(col[i] for col in columns)]
        for i, x in enumerate(x_values)
    ]
    return render_table(headers, rows, title=title, precision=precision)
