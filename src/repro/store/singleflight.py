"""Single-flight coalescing for concurrent builds of one cache artifact.

The partition service receives bursts of requests whose model sets hash
to the same content address.  Without coordination, N concurrent cold
requests would each run the full FPM measurement sweep, then overwrite
each other's (identical) store entries — N-1 sweeps wasted.  A
:class:`SingleFlight` group keyed by the store's digest lets the first
requester (the *leader*) run the build while every later requester for
the same key awaits the leader's result; the ``store.coalesced`` counter
advances once per follower, so ``store.miss`` / ``store.coalesced``
together prove that a cold burst performed exactly one build.

The group is asyncio-native: keys map to futures on the running loop,
and the actual (blocking, CPU-bound) build is whatever awaitable the
caller supplies — typically a ``to_thread``/executor wrapper around the
synchronous model builder.  Failures propagate to every waiter and the
key is cleared, so the next request retries the build instead of
replaying a cached exception forever.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Hashable

from repro.obs import get_tracer


class SingleFlight:
    """Deduplicate concurrent async computations sharing a cache key."""

    def __init__(self) -> None:
        self._inflight: dict[Hashable, asyncio.Future] = {}

    @property
    def inflight(self) -> int:
        """Number of builds currently running (for gauges/tests)."""
        return len(self._inflight)

    def pending(self, key: Hashable) -> bool:
        """True when a flight for ``key`` is already running.

        Callers that need to distinguish "I led the build" from "I
        joined one" check this immediately before :meth:`run` (no await
        between the two keeps the answer exact on one event loop).
        """
        return key in self._inflight

    async def run(
        self, key: Hashable, thunk: Callable[[], Awaitable[Any]]
    ) -> Any:
        """Run ``thunk`` once per concurrent burst of ``key``.

        The first caller for a key executes ``thunk`` and resolves every
        concurrent duplicate with its result; duplicates never start the
        computation and each increments ``store.coalesced``.  Once the
        leader finishes (either way) the key leaves the group, so a
        *later* call starts a fresh flight — single-flight deduplicates
        concurrency, it is not a cache.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            get_tracer().counter("store.coalesced").add()
            return await asyncio.shield(existing)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        try:
            result = await thunk()
        except BaseException as exc:
            if not future.cancelled():
                future.set_exception(exc)
                future.exception()  # mark retrieved: followers may be gone
            raise
        else:
            if not future.cancelled():
                future.set_result(result)
            return result
        finally:
            self._inflight.pop(key, None)
