"""Content-addressed cache keys: canonical JSON + BLAKE2 digests.

Every cached artifact is addressed by a digest of its *inputs*: the
hardware description (:class:`~repro.platform.spec.NodeSpec`), the
experiment configuration, any extra parameters of the producing call,
and a code-version salt.  Two runs with identical inputs map to the same
digest; changing any field of any input — a GPU's bandwidth, the seed,
the ``fast`` flag — changes the digest, so stale artifacts are simply
never found (invalidation by construction, paper Section III's
"measurements are only comparable under identical conditions").

The salt folds in :data:`repro.__version__` plus a manually bumped
schema tag (:data:`STORE_SCHEMA`), so upgrading the library or changing
what a cached payload means orphans every old entry instead of
replaying it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from typing import Any

#: Bump when the *meaning* of cached payloads changes (not just the code).
STORE_SCHEMA = 1

#: Hex digest length (BLAKE2b, 16-byte digests — plenty for a local cache).
_DIGEST_SIZE = 16


def code_salt() -> str:
    """The code-version salt mixed into every digest."""
    from repro import __version__

    return f"repro-{__version__}-schema{STORE_SCHEMA}"


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, dataclasses flattened.

    ``NaN``/``Infinity`` are rejected — a key containing them would not be
    canonical (``NaN != NaN``), so callers must not put them in keys.
    """
    return json.dumps(
        _plain(value),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )


def _plain(value: Any) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _plain(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"cannot canonicalise value of type {type(value).__name__}")


def digest_key(kind: str, key: Any, salt: str | None = None) -> str:
    """The content address of one artifact: BLAKE2b over kind+key+salt."""
    if salt is None:
        salt = code_salt()
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    h.update(kind.encode("utf-8"))
    h.update(b"\x00")
    h.update(canonical_json(key).encode("utf-8"))
    h.update(b"\x00")
    h.update(salt.encode("utf-8"))
    return h.hexdigest()


def node_key(node: Any) -> dict:
    """A NodeSpec (or any spec dataclass) as a canonical key fragment.

    Every field participates, so *any* changed hardware parameter — core
    count, bandwidth, interference drop — produces a different digest.
    """
    plain = _plain(node)
    if not isinstance(plain, dict):
        raise TypeError(f"expected a spec dataclass, got {type(node).__name__}")
    return plain


def bench_key(bench: Any) -> dict:
    """A benchmark facade as a key fragment: node + everything stochastic.

    The simulated measurements depend on the node's hardware description,
    the RNG seed, the noise level, and the reliability criterion's
    stopping rule — nothing else — so these four pin a benchmark's output
    exactly.
    """
    return {
        "node": node_key(bench.node),
        "seed": bench.seed,
        "noise_sigma": bench.noise_sigma,
        "criterion": _plain(bench.criterion),
    }


def kernel_key(kernel: Any) -> dict:
    """A kernel as a key fragment.

    Kernel names encode their full configuration (device, active cores,
    contention flag, GPU version), and the valid range pins boundedness;
    device behaviour itself is covered by the accompanying
    :func:`bench_key`.  Infinite range bounds are canonicalised to the
    string ``"inf"`` (canonical JSON rejects non-finite floats).
    """
    rng = kernel.valid_range
    return {
        "type": type(kernel).__name__,
        "name": kernel.name,
        "block_size": kernel.block_size,
        "range": [
            b if math.isfinite(b) else "inf"
            for b in (rng.min_blocks, rng.max_blocks)
        ],
    }


def models_key(models: list) -> list:
    """Performance models as a key fragment (samples are the content)."""
    out = []
    for m in models:
        samples = getattr(m, "speed_function", m)
        out.append(
            {
                "name": getattr(m, "name", ""),
                "bounded": bool(getattr(samples, "bounded", False)),
                "samples": [
                    [s.size, s.speed] for s in getattr(samples, "samples", ())
                ],
            }
        )
    return out
