"""Content-addressed on-disk cache for models, partitions and results.

Building a functional performance model is the expensive step of the
whole reproduction — the paper's reliability protocol (Section III)
times each point repeatedly until the confidence interval closes — and
every figure/table experiment used to redo it from scratch for identical
``(NodeSpec, seed, noise, sweep)`` inputs.  This package persists those
artifacts once, addressed by a BLAKE2 digest of *all* their inputs plus
a code-version salt (:mod:`repro.store.keys`), so a warm run replays
them instead of re-measuring while any changed input — or a corrupted
cache file — transparently forces a rebuild.

The active store follows the tracer pattern: off by default
(:func:`get_store` returns None and every producer computes from
scratch), installed for a run with :func:`use_store` or
:func:`set_store`.  The binding is *context-local* (``contextvars``):
concurrent asyncio tasks or context-carrying threads each see their own
store, which is what lets the partition service (:mod:`repro.service`)
serve many requests against one store while anything else in the
process uses another.  :class:`SingleFlight` coalesces concurrent
builds of one artifact so a cold burst measures once.  The CLI
(``repro report``) activates :func:`default_store` unless ``--no-cache``
is given.
"""

from repro.store.keys import (
    STORE_SCHEMA,
    bench_key,
    canonical_json,
    code_salt,
    digest_key,
    kernel_key,
    models_key,
    node_key,
)
from repro.store.singleflight import SingleFlight
from repro.store.store import (
    KINDS,
    ResultStore,
    default_store,
    default_store_root,
    get_store,
    set_store,
    use_store,
)

__all__ = [
    "STORE_SCHEMA",
    "bench_key",
    "canonical_json",
    "kernel_key",
    "code_salt",
    "digest_key",
    "models_key",
    "node_key",
    "KINDS",
    "ResultStore",
    "SingleFlight",
    "default_store",
    "default_store_root",
    "get_store",
    "set_store",
    "use_store",
]
