"""The on-disk content-addressed artifact store.

Layout (one JSON file per artifact, sharded by kind)::

    <root>/
      fpm/<digest>.json        built performance-model sets
      partition/<digest>.json  frozen partition decisions
      result/<digest>.json     frozen experiment results
      lint/<digest>.json       flow-tier module summaries (static analyser)

Each file is a self-describing envelope: the kind, the digest it is
stored under, the salt it was computed with, the full (canonical) key,
and the payload.  :meth:`ResultStore.get` re-derives the digest from the
recorded key and refuses mismatched, differently-salted, or unparseable
files — a corrupted or stale entry is indistinguishable from a miss, so
the caller rebuilds and overwrites.  Writes go through a temporary file
and an atomic ``os.replace``, which also makes concurrent writers (the
parallel orchestrator's workers) safe: last writer wins with a complete
file, never a torn one.

Hits, misses and puts are counted on the active tracer
(``store.hit`` / ``store.miss`` / ``store.put``), and every disk
round-trip is wrapped in a ``store.get`` / ``store.put`` span, so
``repro profile`` shows exactly what the cache saved.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import Any, Iterator

from repro.obs import get_tracer
from repro.store.keys import code_salt, digest_key

_ENVELOPE_FORMAT = 1

#: Artifact kinds the store shards by.
KINDS = ("fpm", "partition", "result", "lint")


class ResultStore:
    """A content-addressed cache rooted at one directory.

    ``salt`` defaults to the library's code-version salt; tests override
    it to prove that a salt change orphans every existing entry.
    """

    def __init__(self, root: str | Path, salt: str | None = None):
        self.root = Path(root)
        self.salt = code_salt() if salt is None else salt

    # ------------------------------------------------------------ addressing
    def path_for(self, kind: str, key: Any) -> Path:
        """Where an artifact with this key lives (existing or not)."""
        self._check_kind(kind)
        return self.root / kind / f"{digest_key(kind, key, self.salt)}.json"

    @staticmethod
    def _check_kind(kind: str) -> None:
        if kind not in KINDS:
            raise ValueError(f"unknown artifact kind {kind!r}; expected {KINDS}")

    # ------------------------------------------------------------------- get
    def get(self, kind: str, key: Any) -> Any | None:
        """The cached payload for ``key``, or None on miss/corruption."""
        path = self.path_for(kind, key)
        tracer = get_tracer()
        if not tracer.enabled:
            return self._read(kind, key, path)
        with tracer.span("store.get", category="store", kind=kind) as span:
            payload = self._read(kind, key, path)
            span.set_attr("hit", payload is not None)
            return payload

    def _read(self, kind: str, key: Any, path: Path) -> Any | None:
        tracer = get_tracer()
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
            if envelope["format"] != _ENVELOPE_FORMAT:
                raise ValueError(f"unknown envelope format {envelope['format']!r}")
            if envelope["salt"] != self.salt:
                raise ValueError("entry written under a different salt")
            expected = digest_key(kind, envelope["key"], self.salt)
            if envelope["digest"] != expected or path.stem != expected:
                raise ValueError("digest does not match the recorded key")
            payload = envelope["payload"]
        except FileNotFoundError:
            tracer.counter("store.miss").add()
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # unreadable / corrupted / stale entry: treat as a miss so the
            # caller rebuilds; the rebuild's put overwrites the bad file
            tracer.counter("store.miss").add()
            tracer.counter("store.corrupt").add()
            return None
        tracer.counter("store.hit").add()
        return payload

    # ------------------------------------------------------------------- put
    def put(self, kind: str, key: Any, payload: Any) -> Path:
        """Persist ``payload`` under ``key``; returns the artifact path."""
        path = self.path_for(kind, key)
        tracer = get_tracer()
        if not tracer.enabled:
            return self._write(kind, key, payload, path)
        with tracer.span("store.put", category="store", kind=kind):
            return self._write(kind, key, payload, path)

    def _write(self, kind: str, key: Any, payload: Any, path: Path) -> Path:
        from repro.store.keys import _plain

        envelope = {
            "format": _ENVELOPE_FORMAT,
            "kind": kind,
            "digest": path.stem,
            "salt": self.salt,
            "key": _plain(key),
            "payload": payload,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(envelope, indent=1), encoding="utf-8")
        os.replace(tmp, path)
        get_tracer().counter("store.put").add()
        return path

    # ---------------------------------------------------------- invalidation
    def invalidate(self, kind: str, key: Any) -> bool:
        """Explicitly drop one artifact; True if something was removed."""
        path = self.path_for(kind, key)
        try:
            path.unlink()
            return True
        except FileNotFoundError:
            return False

    def clear(self, kind: str | None = None) -> int:
        """Remove every artifact (of one kind, or all); returns the count."""
        kinds = (kind,) if kind is not None else KINDS
        removed = 0
        for k in kinds:
            self._check_kind(k)
            shard = self.root / k
            if not shard.is_dir():
                continue
            for path in shard.glob("*.json"):
                path.unlink()
                removed += 1
        return removed

    def entries(self, kind: str | None = None) -> list[Path]:
        """Paths of the stored artifacts (of one kind, or all), sorted."""
        kinds = (kind,) if kind is not None else KINDS
        out: list[Path] = []
        for k in kinds:
            self._check_kind(k)
            shard = self.root / k
            if shard.is_dir():
                out.extend(sorted(shard.glob("*.json")))
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultStore({str(self.root)!r}, entries={len(self.entries())})"


def default_store_root() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro`` — the CLI's default root."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro").expanduser()


def default_store() -> ResultStore:
    """A store at :func:`default_store_root` (created lazily on first put)."""
    return ResultStore(default_store_root())


#: The active store is *context-local* (:mod:`contextvars`), not a module
#: global: two asyncio tasks — or two threads spawned with a copied
#: context, as :func:`asyncio.to_thread` does — can each install their
#: own store and interleave freely without observing each other's.  The
#: partition service relies on this to serve concurrent requests against
#: one store while tests run against another in the same process.
#: Sequential single-threaded use behaves exactly as the old global did.
_ACTIVE: ContextVar[ResultStore | None] = ContextVar(
    "repro_active_store", default=None
)


def get_store() -> ResultStore | None:
    """The context-local active store, or None when caching is off."""
    return _ACTIVE.get()


def set_store(store: ResultStore | None) -> ResultStore | None:
    """Install ``store`` as the active store; returns the previous one.

    The rebind is context-local: pool workers call this deliberately
    (via ``use_store``) to re-open the store in their own process, and
    concurrent tasks that each ``set_store`` never race — every context
    sees only its own binding.
    """
    previous = _ACTIVE.get()
    _ACTIVE.set(store)
    return previous


@contextmanager
def use_store(store: ResultStore | None) -> Iterator[ResultStore | None]:
    """Activate ``store`` for a ``with`` block (None disables caching)."""
    previous = set_store(store)
    try:
        yield store
    finally:
        set_store(previous)
