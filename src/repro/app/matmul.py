"""The heterogeneous hybrid matrix-multiplication pipeline (Section IV + VI).

:class:`HybridMatMul` ties everything together on one node:

1. identify the *compute units* — each GPU (with its dedicated core) and
   each socket (with its remaining cores), exactly the paper's model set
   ``{g1, g2, 2 x s5, 2 x s6}``;
2. build their functional performance models with the measurement stack
   (or accept pre-built / loaded models);
3. partition the ``n^2`` blocks between units with the FPM, CPM or
   homogeneous algorithm and round to integers;
4. expand unit allocations to the per-process level (a socket's share is
   split evenly over its CPU processes) and arrange all rectangles with
   the column-based geometry;
5. simulate the execution.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property

from repro.core.cpm import ConstantPerformanceModel, cpms_from_even_split
from repro.core.fpm import FunctionalPerformanceModel
from repro.core.geometry import ColumnPartition, column_based_partition
from repro.core.integer import refine_integer_partition, round_partition
from repro.core.solver import Solver
from repro.app.execution import (
    ExecutionResult,
    simulate_execution,
    simulate_execution_events,
)
from repro.measurement.benchmark import HybridBenchmark
from repro.measurement.binding import BindingPlan, default_binding
from repro.measurement.fpm_builder import FpmBuilder, SizeGrid
from repro.platform.faults import FaultPlan
from repro.platform.spec import NodeSpec
from repro.runtime.mpi_sim import CommModel, SimulatedComm
from repro.runtime.process import DeviceBoundProcess, bind_processes
from repro.util.validation import check_positive, check_positive_int


class PartitioningStrategy(str, enum.Enum):
    """The three algorithms compared in the paper's Section VI."""

    FPM = "fpm"
    CPM = "cpm"
    HOMOGENEOUS = "homogeneous"


@dataclass(frozen=True)
class ComputeUnit:
    """One partitioning unit: a GPU (plus dedicated core) or a socket."""

    name: str
    kind: str  # "gpu" | "socket"
    socket_index: int
    gpu_index: int | None
    member_ranks: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.kind not in ("gpu", "socket"):
            raise ValueError(f"unknown unit kind {self.kind!r}")
        if not self.member_ranks:
            raise ValueError(f"unit {self.name} has no member processes")


@dataclass(frozen=True)
class MatMulPlan:
    """A fully resolved run plan: allocations, geometry, and strategy."""

    n: int
    strategy: PartitioningStrategy
    units: tuple[ComputeUnit, ...]
    unit_allocations: tuple[int, ...]
    process_allocations: tuple[int, ...]
    partition: ColumnPartition

    @cached_property
    def _allocation_index(self) -> dict[str, int]:
        return {
            unit.name: alloc
            for unit, alloc in zip(self.units, self.unit_allocations)
        }

    def allocation_of(self, unit_name: str) -> int:
        try:
            return self._allocation_index[unit_name]
        except KeyError:
            raise KeyError(f"no unit named {unit_name!r}") from None


class HybridMatMul:
    """The application, bound to one (simulated) hybrid node."""

    def __init__(
        self,
        node: NodeSpec,
        seed: int = 42,
        noise_sigma: float = 0.02,
        gpu_version: int = 3,
        comm_model: CommModel | None = None,
        faults: FaultPlan | None = None,
    ):
        self.node = node
        self.gpu_version = gpu_version
        self.bench = HybridBenchmark(
            node, seed=seed, noise_sigma=noise_sigma, faults=faults
        )
        self.binding: BindingPlan = default_binding(node)
        self.comm_model = comm_model or CommModel()
        self._models: dict[str, FunctionalPerformanceModel] = {}
        self._units: tuple[ComputeUnit, ...] | None = None

    # ----------------------------------------------------------- topology
    def compute_units(self) -> list[ComputeUnit]:
        """GPUs first (attachment order), then sockets — the model set.

        The node and binding are fixed per instance, so the unit list is
        computed once and a fresh copy returned on every call.
        """
        if self._units is not None:
            return list(self._units)
        units: list[ComputeUnit] = []
        for gpu_index, att in enumerate(self.node.gpus):
            rank = self.binding.dedicated_ranks()[gpu_index]
            units.append(
                ComputeUnit(
                    name=att.gpu.name,
                    kind="gpu",
                    socket_index=att.socket_index,
                    gpu_index=gpu_index,
                    member_ranks=(rank,),
                )
            )
        for s in range(self.node.num_sockets):
            ranks = tuple(self.binding.cpu_ranks_on_socket(s))
            if not ranks:
                continue
            units.append(
                ComputeUnit(
                    name=f"socket{s}:c{len(ranks)}",
                    kind="socket",
                    socket_index=s,
                    gpu_index=None,
                    member_ranks=ranks,
                )
            )
        self._units = tuple(units)
        return units

    def cpu_cores_of(self, unit: ComputeUnit) -> int:
        """Active CPU-kernel cores of a socket unit."""
        if unit.kind != "socket":
            raise ValueError(f"{unit.name} is not a socket unit")
        return len(unit.member_ranks)

    # ------------------------------------------------------------- models
    def set_models(self, models: dict[str, FunctionalPerformanceModel]) -> None:
        """Install pre-built models, keyed by compute-unit name."""
        self._models.update(models)

    def build_models(
        self,
        max_blocks: float,
        cpu_points: int = 12,
        gpu_points: int = 16,
        adaptive: bool = True,
    ) -> dict[str, FunctionalPerformanceModel]:
        """Benchmark every compute unit and build its FPM.

        ``max_blocks`` should cover the largest allocation any unit may
        receive (the total block count of the largest planned problem is
        always safe).  Models are cached on the instance.
        """
        check_positive("max_blocks", max_blocks)
        builder = FpmBuilder(self.bench)
        for unit in self.compute_units():
            if unit.name in self._models:
                continue
            if unit.kind == "gpu":
                kernel = self.bench.gpu_kernel(unit.gpu_index, self.gpu_version)
                grid = SizeGrid.geometric(8.0, max_blocks, gpu_points)
            else:
                gpu_here = bool(self.node.gpus_on_socket(unit.socket_index))
                kernel = self.bench.socket_kernel(
                    unit.socket_index, len(unit.member_ranks), gpu_active=gpu_here
                )
                # sockets never receive more than a modest share
                grid = SizeGrid.geometric(
                    4.0, max(8.0, max_blocks / 2.0), cpu_points
                )
            model = builder.build(kernel, grid, adaptive=adaptive, name=unit.name)
            self._models[unit.name] = model.repaired()
        return dict(self._models)

    def models_for(self, units: list[ComputeUnit]) -> list[FunctionalPerformanceModel]:
        missing = [u.name for u in units if u.name not in self._models]
        if missing:
            raise ValueError(
                f"no models built for units {missing}; call build_models() "
                f"or set_models() first"
            )
        return [self._models[u.name] for u in units]

    def constant_models(
        self, calibration_total: float
    ) -> list[ConstantPerformanceModel]:
        """The paper's CPM procedure: constants from an even-split run."""
        units = self.compute_units()
        return cpms_from_even_split(self.models_for(units), calibration_total)

    # --------------------------------------------------------------- plan
    def plan(
        self,
        n: int,
        strategy: PartitioningStrategy | str = PartitioningStrategy.FPM,
        cpm_calibration_total: float | None = None,
    ) -> MatMulPlan:
        """Partition the ``n x n``-block problem under a strategy.

        ``cpm_calibration_total`` (CPM only) is the total size of the
        even-split calibration run; it defaults to a problem that fits the
        GPUs' memories — reproducing why CPM overloads GPUs at scale.
        """
        check_positive_int("n", n)
        strategy = PartitioningStrategy(strategy)
        units = self.compute_units()
        total = n * n

        if strategy is PartitioningStrategy.HOMOGENEOUS:
            # even distribution over *processes*, not units
            process_allocs = self._even_process_allocations(total)
            unit_allocs = [
                sum(process_allocs[r] for r in u.member_ranks) for u in units
            ]
        else:
            if strategy is PartitioningStrategy.FPM:
                models = self.models_for(units)
                continuous = list(Solver().solve(models, float(total)).allocations)
                unit_allocs = round_partition(models, continuous, total)
                unit_allocs = refine_integer_partition(models, unit_allocs)
            else:
                calibration = cpm_calibration_total or 40.0 * 40.0
                constants = self.constant_models(calibration)
                continuous = list(
                    Solver(strategy="cpm").solve(constants, float(total)).allocations
                )
                speeds = [c.speed for c in constants]
                unit_allocs = round_partition(speeds, continuous, total)
            process_allocs = self._expand_to_processes(units, unit_allocs)

        partition = column_based_partition(process_allocs, n)
        return MatMulPlan(
            n=n,
            strategy=strategy,
            units=tuple(units),
            unit_allocations=tuple(unit_allocs),
            process_allocations=tuple(process_allocs),
            partition=partition,
        )

    def plan_from_unit_allocations(
        self,
        n: int,
        unit_allocations: list[int],
        strategy: PartitioningStrategy | str = PartitioningStrategy.FPM,
    ) -> MatMulPlan:
        """Materialise a plan from externally computed unit allocations.

        Used by refinement passes (e.g. communication-aware adjustment)
        that post-process the partitioner's output before geometry.
        """
        check_positive_int("n", n)
        units = self.compute_units()
        if len(unit_allocations) != len(units):
            raise ValueError(
                f"{len(unit_allocations)} allocations for {len(units)} units"
            )
        if sum(unit_allocations) != n * n:
            raise ValueError(
                f"allocations sum to {sum(unit_allocations)}, expected {n * n}"
            )
        process_allocs = self._expand_to_processes(units, list(unit_allocations))
        partition = column_based_partition(process_allocs, n)
        return MatMulPlan(
            n=n,
            strategy=PartitioningStrategy(strategy),
            units=tuple(units),
            unit_allocations=tuple(int(a) for a in unit_allocations),
            process_allocations=tuple(process_allocs),
            partition=partition,
        )

    def plan_for_units(
        self,
        n: int,
        units: list[ComputeUnit],
        unit_allocations: list[int],
        strategy: PartitioningStrategy | str = PartitioningStrategy.FPM,
    ) -> MatMulPlan:
        """Materialise a plan over a *subset* of this node's units.

        The degraded-mode seam used by :mod:`repro.runtime.recovery`:
        after a device drop, the partitioner re-solves over the surviving
        units and this method expands the allocations to processes and
        rebuilds the geometry.  Ranks of excluded units receive zero
        blocks (their rectangles are empty), so the plan still spans the
        node's full process set.
        """
        check_positive_int("n", n)
        known = {u.name for u in self.compute_units()}
        unknown = [u.name for u in units if u.name not in known]
        if unknown:
            raise ValueError(f"units not on this node: {unknown}")
        if len(unit_allocations) != len(units):
            raise ValueError(
                f"{len(unit_allocations)} allocations for {len(units)} units"
            )
        if sum(unit_allocations) != n * n:
            raise ValueError(
                f"allocations sum to {sum(unit_allocations)}, expected {n * n}"
            )
        process_allocs = self._expand_to_processes(
            list(units), [int(a) for a in unit_allocations]
        )
        partition = column_based_partition(process_allocs, n)
        return MatMulPlan(
            n=n,
            strategy=PartitioningStrategy(strategy),
            units=tuple(units),
            unit_allocations=tuple(int(a) for a in unit_allocations),
            process_allocations=tuple(process_allocs),
            partition=partition,
        )

    # ------------------------------------------------------------ execute
    def processes(self) -> list[DeviceBoundProcess]:
        """All ranks of the node with their kernels and contention state."""
        return bind_processes(
            self.binding,
            self.bench.sockets,
            self.bench.gpus,
            gpu_version=self.gpu_version,
        )

    def execute(self, plan: MatMulPlan) -> ExecutionResult:
        """Simulate the application run for a resolved plan."""
        comm = SimulatedComm(self.binding.num_processes, self.comm_model)
        return simulate_execution(
            self.processes(), plan.partition, comm, self.node.block_size
        )

    def execute_events(
        self,
        plan: MatMulPlan,
        *,
        panels: int | None = None,
        engine: str = "vector",
    ) -> ExecutionResult:
        """Play the run on the event engine, one batched panel per iteration.

        Same profile as :meth:`execute` but simulated panel by panel
        (:func:`repro.app.execution.simulate_execution_events`); ``panels``
        defaults to all ``n`` main-loop iterations.
        """
        comm = SimulatedComm(self.binding.num_processes, self.comm_model)
        return simulate_execution_events(
            self.processes(),
            plan.partition,
            comm,
            self.node.block_size,
            panels=panels,
            engine=engine,
        )

    def run(
        self,
        n: int,
        strategy: PartitioningStrategy | str = PartitioningStrategy.FPM,
    ) -> tuple[MatMulPlan, ExecutionResult]:
        """Plan and execute in one call."""
        plan = self.plan(n, strategy)
        return plan, self.execute(plan)

    # ------------------------------------------------------------ helpers
    def _even_process_allocations(self, total: int) -> list[int]:
        p = self.binding.num_processes
        base, extra = divmod(total, p)
        return [base + (1 if r < extra else 0) for r in range(p)]

    def _expand_to_processes(
        self, units: list[ComputeUnit], unit_allocs: list[int]
    ) -> list[int]:
        """Split each unit's blocks evenly over its member processes."""
        process_allocs = [0] * self.binding.num_processes
        for unit, alloc in zip(units, unit_allocs):
            members = unit.member_ranks
            base, extra = divmod(alloc, len(members))
            for i, rank in enumerate(members):
                process_allocs[rank] = base + (1 if i < extra else 0)
        return process_allocs
