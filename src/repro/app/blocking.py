"""Blocked-matrix bookkeeping for the numeric path.

The matrices are square grids of ``n x n`` blocks of ``b x b`` elements.
These helpers slice numpy arrays by block rectangles and extract the pivot
column/row panels of each iteration of the main loop (paper Fig. 1a).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.geometry import Rectangle
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class BlockGrid:
    """Geometry of an ``n x n``-block matrix with blocking factor ``b``."""

    n: int
    block_size: int

    def __post_init__(self) -> None:
        check_positive_int("n", self.n)
        check_positive_int("block_size", self.block_size)

    @property
    def elements(self) -> int:
        """Matrix side length in elements."""
        return self.n * self.block_size

    def block_slice(self, first_block: int, num_blocks: int) -> slice:
        """Element slice covering ``num_blocks`` blocks from ``first_block``."""
        if first_block < 0 or num_blocks < 0 or first_block + num_blocks > self.n:
            raise ValueError(
                f"block range [{first_block}, {first_block + num_blocks}) "
                f"outside grid of {self.n} blocks"
            )
        b = self.block_size
        return slice(first_block * b, (first_block + num_blocks) * b)

    def rectangle_view(self, matrix: np.ndarray, rect: Rectangle) -> np.ndarray:
        """A writable view of ``matrix`` covering a block rectangle."""
        self._check_matrix(matrix)
        return matrix[
            self.block_slice(rect.row, rect.height),
            self.block_slice(rect.col, rect.width),
        ]

    def pivot_column_panel(
        self, matrix: np.ndarray, iteration: int, rect: Rectangle
    ) -> np.ndarray:
        """The piece of pivot block-column ``iteration`` spanning the
        rectangle's rows — what the rectangle's owner receives from the
        horizontal broadcast."""
        self._check_matrix(matrix)
        self._check_iteration(iteration)
        return matrix[
            self.block_slice(rect.row, rect.height),
            self.block_slice(iteration, 1),
        ]

    def pivot_row_panel(
        self, matrix: np.ndarray, iteration: int, rect: Rectangle
    ) -> np.ndarray:
        """The piece of pivot block-row ``iteration`` spanning the
        rectangle's columns (the vertical broadcast)."""
        self._check_matrix(matrix)
        self._check_iteration(iteration)
        return matrix[
            self.block_slice(iteration, 1),
            self.block_slice(rect.col, rect.width),
        ]

    def _check_matrix(self, matrix: np.ndarray) -> None:
        expected = (self.elements, self.elements)
        if matrix.shape != expected:
            raise ValueError(
                f"matrix shape {matrix.shape} does not match grid {expected}"
            )

    def _check_iteration(self, iteration: int) -> None:
        if not 0 <= iteration < self.n:
            raise ValueError(
                f"iteration {iteration} outside the {self.n} main-loop steps"
            )
