"""Execution simulation of the blocked parallel matrix multiplication.

The application (paper Fig. 1a) is bulk-synchronous: at each of the ``n``
main-loop iterations the pivot block-column of ``A`` and pivot block-row of
``B`` are broadcast, then every process updates its ``C`` rectangle with
one kernel run.  The iteration completes when the slowest process finishes,
so per-iteration time is the broadcast time plus the maximum kernel time —
and the paper's figures fall out directly: Fig. 6 plots each process's
accumulated computation time, Table II / Fig. 7 the total including
communication.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.geometry import ColumnPartition
from repro.obs import get_tracer
from repro.runtime.mpi_sim import SimulatedComm
from repro.runtime.panel_loop import simulate_panel_loop
from repro.runtime.process import DeviceBoundProcess
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class ExecutionResult:
    """Simulated timings of one application run."""

    n: int
    total_time: float
    computation_time: tuple[float, ...]  # per process, summed over iterations
    communication_time: float
    iteration_time: float
    areas: tuple[int, ...]  # realized rectangle areas per process

    @property
    def makespan_computation(self) -> float:
        """Computation part of the total (slowest process per iteration)."""
        return max(self.computation_time, default=0.0)

    @property
    def computation_imbalance(self) -> float:
        """max / min positive per-process computation time (1.0 = flat)."""
        positive = [t for t in self.computation_time if t > 0]
        if not positive:
            return 1.0
        return max(positive) / min(positive)


def _iteration_profile(
    processes: list[DeviceBoundProcess], partition: ColumnPartition
) -> tuple[list[int], list[float], list[int]]:
    """Per-rank (areas, kernel times, pivot receive sizes) of one iteration.

    Shared prologue of the analytic and event-simulated execution paths,
    so both time exactly the same per-process profile.
    """
    by_rank = {p.rank: p for p in processes}
    rects = {r.owner: r for r in partition.rectangles}
    missing = set(rects) - set(by_rank)
    if any(rects[owner].area > 0 for owner in missing):
        raise ValueError(
            f"partition assigns work to ranks without processes: "
            f"{sorted(o for o in missing if rects[o].area > 0)}"
        )

    areas = []
    compute_per_iter = []
    recv_blocks = []
    for rank in sorted(by_rank):
        rect = rects.get(rank)
        area = rect.area if rect is not None else 0
        areas.append(area)
        compute_per_iter.append(by_rank[rank].iteration_time(area))
        if rect is not None and rect.area > 0:
            recv_blocks.append(rect.height + rect.width)
        else:
            recv_blocks.append(0)
    return areas, compute_per_iter, recv_blocks


def simulate_execution(
    processes: list[DeviceBoundProcess],
    partition: ColumnPartition,
    comm: SimulatedComm,
    block_size: int,
) -> ExecutionResult:
    """Simulate the full application run over a given matrix arrangement.

    ``processes`` must cover every rectangle owner in ``partition``; ranks
    with empty rectangles simply idle through the compute phase.
    """
    check_positive_int("block_size", block_size)
    n = partition.n
    areas, compute_per_iter, recv_blocks = _iteration_profile(
        processes, partition
    )

    # Broadcast phase: every process receives its pivot column and row
    # pieces; the cost model lives with the communicator (runtime layer).
    p = len(compute_per_iter)
    tracer = get_tracer()
    with tracer.span(
        "exec.simulate", category="app", n=n, processes=p
    ) as span:
        comm_per_iter = comm.pivot_bcast_time(
            recv_blocks, block_size, participants=p
        )

        iteration = comm_per_iter + max(compute_per_iter, default=0.0)
        span.mark_sim(0.0, n * iteration)
        return ExecutionResult(
            n=n,
            total_time=n * iteration,
            computation_time=tuple(n * t for t in compute_per_iter),
            communication_time=n * comm_per_iter,
            iteration_time=iteration,
            areas=tuple(areas),
        )


def simulate_execution_events(
    processes: list[DeviceBoundProcess],
    partition: ColumnPartition,
    comm: SimulatedComm,
    block_size: int,
    *,
    panels: int | None = None,
    engine: str = "vector",
) -> ExecutionResult:
    """Event-driven twin of :func:`simulate_execution`, panel by panel.

    Instead of multiplying one analytic iteration by ``n``, the run is
    played on the discrete-event engine as ``panels`` barrier-
    synchronised generations (default: all ``n`` main-loop iterations) —
    the substrate for drift, faults, or any per-panel dynamics the
    closed form cannot express.  On static inputs the totals agree with
    the analytic path to float accumulation order, and the ``vector`` /
    ``scalar`` engines agree bit-identically
    (:mod:`repro.runtime.panel_loop`).
    """
    check_positive_int("block_size", block_size)
    n = partition.n
    areas, compute_per_iter, recv_blocks = _iteration_profile(
        processes, partition
    )
    p = len(compute_per_iter)
    tracer = get_tracer()
    with tracer.span(
        "exec.simulate_events", category="app", n=n, processes=p, engine=engine
    ) as span:
        if engine == "vector":
            comm_per_iter = comm.pivot_bcast_time(
                np.asarray(recv_blocks, dtype=float),
                block_size,
                participants=p,
            )
        else:
            comm_per_iter = comm.pivot_bcast_time(
                recv_blocks, block_size, participants=p
            )
        result = simulate_panel_loop(
            compute_per_iter,
            panels if panels is not None else n,
            comm_per_iter,
            engine=engine,
        )
        span.mark_sim(0.0, result.total_time_s)
        return ExecutionResult(
            n=n,
            total_time=result.total_time_s,
            computation_time=result.compute_time_s,
            communication_time=result.comm_time_s,
            iteration_time=result.panel_finish_s[0],
            areas=tuple(areas),
        )
