"""Per-iteration execution traces of the application.

:func:`trace_execution` replays the bulk-synchronous main loop on the
timeline machinery: for each iteration, a broadcast interval followed by
every process's compute interval.  The trace powers the ASCII Gantt view
(:func:`ascii_gantt`) used by the examples, and gives tests a structural
view of the run (idle time per process, synchronisation overhead) that a
single total-seconds number hides.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.geometry import ColumnPartition
from repro.runtime.mpi_sim import SimulatedComm
from repro.runtime.process import DeviceBoundProcess
from repro.util.timeline import Timeline
from repro.util.units import blocks_to_bytes


@dataclass(frozen=True)
class ExecutionTrace:
    """A full run as a timeline: one resource per rank, plus "comm"."""

    timeline: Timeline
    n: int
    num_processes: int

    @property
    def makespan(self) -> float:
        return self.timeline.makespan()

    def idle_fraction(self, rank: int) -> float:
        """Fraction of the makespan rank spent neither computing nor in
        broadcasts (waiting on stragglers)."""
        busy = self.timeline.busy_time(f"rank{rank}")
        comm = self.timeline.busy_time("comm")
        span = self.makespan
        if span == 0:
            return 0.0
        return max(0.0, 1.0 - (busy + comm) / span)

    def mean_idle_fraction(self) -> float:
        """Average idle fraction over working ranks — the balance metric."""
        working = [
            r
            for r in range(self.num_processes)
            if self.timeline.busy_time(f"rank{r}") > 0
        ]
        if not working:
            return 0.0
        return sum(self.idle_fraction(r) for r in working) / len(working)


def trace_execution(
    processes: list[DeviceBoundProcess],
    partition: ColumnPartition,
    comm: SimulatedComm,
    block_size: int,
    max_iterations: int | None = None,
) -> ExecutionTrace:
    """Build the iteration-by-iteration trace of the application run.

    ``max_iterations`` truncates the trace (all iterations are identical in
    the static model, so a few suffice for visualisation).
    """
    n = partition.n
    steps = n if max_iterations is None else min(n, max_iterations)
    by_rank = {p.rank: p for p in processes}
    rects = {r.owner: r for r in partition.rectangles}

    compute = {}
    recv_blocks = {}
    for rank, proc in by_rank.items():
        rect = rects.get(rank)
        area = rect.area if rect is not None else 0
        compute[rank] = proc.iteration_time(area)
        recv_blocks[rank] = (
            rect.height + rect.width if rect is not None and rect.area else 0
        )

    p = len(by_rank)
    depth = math.ceil(math.log2(p)) if p > 1 else 0
    comm_per_iter = max(
        (
            comm.model.latency_s * depth
            + blocks_to_bytes(b, block_size) / (comm.model.bandwidth_gbs * 1e9)
            for b in recv_blocks.values()
        ),
        default=0.0,
    )

    timeline = Timeline()
    clock = 0.0
    step_compute = max(compute.values(), default=0.0)
    for _ in range(steps):
        if comm_per_iter > 0:
            timeline.add("comm", clock, clock + comm_per_iter, "bcast")
        clock += comm_per_iter
        for rank, dur in compute.items():
            if dur > 0:
                timeline.add(f"rank{rank}", clock, clock + dur, "update")
        clock += step_compute
    timeline.validate()
    return ExecutionTrace(timeline=timeline, n=n, num_processes=p)


def ascii_gantt(timeline: Timeline, width: int = 72) -> str:
    """Render a timeline as one ASCII row per resource."""
    span = timeline.makespan()
    if span == 0:
        return "(empty timeline)"
    lines = []
    for resource in timeline.resources():
        row = [" "] * width
        for iv in timeline.on_resource(resource):
            a = int(iv.start / span * (width - 1))
            b = max(a + 1, int(iv.end / span * (width - 1)))
            mark = iv.label[0] if iv.label else "#"
            for i in range(a, min(b, width)):
                row[i] = mark
        lines.append(f"{resource:>8s} |{''.join(row)}|")
    return "\n".join(lines)
