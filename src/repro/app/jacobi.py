"""The second application: an iterative Jacobi solver on a 2D grid.

Demonstrates the paper's central point that FPMs are *application
specific*: the same node, modelled for the stencil kernel instead of GEMM,
yields completely different speed functions (bandwidth-bound sockets, a
GPU with a brutal out-of-core cliff) — and the same FPM partitioning
machinery balances it without any code changes above the kernel layer.

The grid is partitioned into contiguous **row strips** (stencils need
halo exchange with neighbours, so 1D contiguity matters); workload unit =
grid rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fpm import FunctionalPerformanceModel
from repro.core.integer import refine_integer_partition, round_partition
from repro.core.solver import Solver
from repro.core.cpm import cpms_from_even_split
from repro.kernels.stencil import (
    CELL_BYTES,
    CpuStencilKernel,
    GpuStencilKernel,
    numpy_jacobi_sweep,
)
from repro.measurement.fpm_builder import FpmBuilder, SizeGrid
from repro.measurement.benchmark import HybridBenchmark
from repro.platform.spec import NodeSpec
from repro.runtime.mpi_sim import CommModel
from repro.runtime.panel_loop import simulate_panel_loop
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class StripPartition:
    """Contiguous row strips, one per compute unit (top to bottom)."""

    total_rows: int
    rows_per_unit: tuple[int, ...]

    def __post_init__(self) -> None:
        check_positive_int("total_rows", self.total_rows)
        if any(r < 0 for r in self.rows_per_unit):
            raise ValueError("strip heights must be non-negative")
        if sum(self.rows_per_unit) != self.total_rows:
            raise ValueError(
                f"strips cover {sum(self.rows_per_unit)} rows, expected "
                f"{self.total_rows}"
            )

    def bounds(self) -> list[tuple[int, int]]:
        """(start, end) row of each strip (empty strips collapse)."""
        out = []
        start = 0
        for rows in self.rows_per_unit:
            out.append((start, start + rows))
            start += rows
        return out


@dataclass(frozen=True)
class JacobiResult:
    """Simulated timings of an iterative Jacobi run."""

    iterations: int
    total_time: float
    sweep_time_per_unit: tuple[float, ...]
    halo_time: float

    @property
    def imbalance(self) -> float:
        working = [t for t in self.sweep_time_per_unit if t > 0]
        return max(working) / min(working) if working else 1.0


class JacobiApp:
    """The stencil application bound to a (simulated) hybrid node."""

    def __init__(
        self,
        node: NodeSpec,
        width: int = 16384,
        seed: int = 42,
        noise_sigma: float = 0.02,
        comm_model: CommModel | None = None,
        streamed_gpu: bool = True,
    ):
        check_positive_int("width", width)
        self.node = node
        self.width = width
        self.streamed_gpu = streamed_gpu
        self.bench = HybridBenchmark(node, seed=seed, noise_sigma=noise_sigma)
        self.comm_model = comm_model or CommModel()
        self._models: dict[str, FunctionalPerformanceModel] = {}

    # ------------------------------------------------------------ kernels
    def unit_kernels(self) -> dict[str, object]:
        """One stencil kernel per compute unit (GPUs first, then sockets)."""
        kernels: dict[str, object] = {}
        for gpu_index, att in enumerate(self.node.gpus):
            kernels[att.gpu.name] = GpuStencilKernel(
                gpu=self.bench.gpus[gpu_index],
                width=self.width,
                streamed=self.streamed_gpu,
            )
        for s in range(self.node.num_sockets):
            cpu_cores = self.node.socket_spec(s).cores - len(self.node.gpus_on_socket(s))
            if cpu_cores == 0:
                continue
            kernels[f"socket{s}:c{cpu_cores}"] = CpuStencilKernel(
                socket=self.bench.sockets[s],
                active_cores=cpu_cores,
                width=self.width,
                gpu_active=bool(self.node.gpus_on_socket(s)),
            )
        return kernels

    # ------------------------------------------------------------- models
    def build_models(
        self, max_rows: float, points: int = 12, adaptive: bool = True
    ) -> dict:
        """Benchmark every unit's stencil kernel into an FPM.

        Speeds are in the builder's internal units (rows-proportional);
        only ratios matter to the partitioner.  Adaptive refinement runs
        deep (6 rounds) because the streamed GPU kernel's capacity cliff
        is near-vertical — the model must localise it to a few hundred
        rows or the partitioner overshoots into the catastrophic regime.
        """
        builder = FpmBuilder(self.bench, max_adaptive_rounds=6)
        grid = SizeGrid.geometric(64.0, max_rows, points)
        for name, kernel in self.unit_kernels().items():
            if name not in self._models:
                model = builder.build(kernel, grid, name=name, adaptive=adaptive)
                self._models[name] = model.repaired()
        return dict(self._models)

    def models(self) -> list[FunctionalPerformanceModel]:
        kernels = self.unit_kernels()
        missing = [n for n in kernels if n not in self._models]
        if missing:
            raise ValueError(
                f"no stencil models for {missing}; call build_models() first"
            )
        return [self._models[n] for n in kernels]

    # --------------------------------------------------------------- plan
    def plan(self, rows: int, strategy: str = "fpm") -> StripPartition:
        """Partition grid rows across the units."""
        check_positive_int("rows", rows)
        names = list(self.unit_kernels())
        if strategy == "homogeneous":
            base, extra = divmod(rows, len(names))
            alloc = [base + (1 if i < extra else 0) for i in range(len(names))]
        elif strategy == "fpm":
            models = self.models()
            continuous = list(Solver().solve(models, float(rows)).allocations)
            alloc = round_partition(models, continuous, rows)
            alloc = refine_integer_partition(models, alloc)
        elif strategy == "cpm":
            models = self.models()
            constants = cpms_from_even_split(models, calibration_total=2048.0)
            continuous = list(
                Solver(strategy="cpm").solve(constants, float(rows)).allocations
            )
            alloc = round_partition(
                [c.speed for c in constants], continuous, rows
            )
        else:
            raise ValueError(f"unknown strategy {strategy!r}")
        return StripPartition(total_rows=rows, rows_per_unit=tuple(alloc))

    # ------------------------------------------------------------ execute
    def execute(self, partition: StripPartition, iterations: int) -> JacobiResult:
        """Simulate ``iterations`` sweeps with per-iteration halo exchange."""
        check_positive_int("iterations", iterations)
        kernels = list(self.unit_kernels().values())
        if len(kernels) != len(partition.rows_per_unit):
            raise ValueError(
                f"partition has {len(partition.rows_per_unit)} strips but the "
                f"node has {len(kernels)} units"
            )
        sweeps = [
            k.run_time(float(r)) if r > 0 else 0.0
            for k, r in zip(kernels, partition.rows_per_unit)
        ]
        halo_bytes = self.width * CELL_BYTES
        halo = 2.0 * self.comm_model.p2p_time(halo_bytes)
        step = max(sweeps) + halo
        return JacobiResult(
            iterations=iterations,
            total_time=iterations * step,
            sweep_time_per_unit=tuple(iterations * t for t in sweeps),
            halo_time=iterations * halo,
        )

    def execute_events(
        self,
        partition: StripPartition,
        iterations: int,
        *,
        engine: str = "vector",
    ) -> JacobiResult:
        """Event-engine twin of :meth:`execute`, one panel per sweep.

        Each Jacobi iteration becomes one barrier-synchronised generation
        (:func:`repro.runtime.panel_loop.simulate_panel_loop`): the halo
        exchange is charged per panel, then every unit sweeps its strip.
        On static inputs the totals agree with the analytic path to float
        accumulation order; ``vector`` and ``scalar`` engines are
        bit-identical.
        """
        check_positive_int("iterations", iterations)
        kernels = list(self.unit_kernels().values())
        if len(kernels) != len(partition.rows_per_unit):
            raise ValueError(
                f"partition has {len(partition.rows_per_unit)} strips but the "
                f"node has {len(kernels)} units"
            )
        sweeps = [
            k.run_time(float(r)) if r > 0 else 0.0
            for k, r in zip(kernels, partition.rows_per_unit)
        ]
        halo_bytes = self.width * CELL_BYTES
        halo = 2.0 * self.comm_model.p2p_time(halo_bytes)
        result = simulate_panel_loop(sweeps, iterations, halo, engine=engine)
        return JacobiResult(
            iterations=iterations,
            total_time=result.total_time_s,
            sweep_time_per_unit=result.compute_time_s,
            halo_time=result.comm_time_s,
        )

    def run(
        self, rows: int, iterations: int, strategy: str = "fpm"
    ) -> tuple[StripPartition, JacobiResult]:
        """Plan and execute in one call."""
        partition = self.plan(rows, strategy)
        return partition, self.execute(partition, iterations)


def run_partitioned_jacobi(
    grid: np.ndarray, partition: StripPartition, iterations: int
) -> np.ndarray:
    """Execute real Jacobi sweeps strip by strip (numeric verification).

    Each strip owner updates its rows using one halo row from each
    neighbour — exactly the data the simulated halo exchange moves — and
    the result must equal whole-grid sweeping.
    """
    if grid.ndim != 2 or grid.shape[0] != partition.total_rows:
        raise ValueError(
            f"grid of {grid.shape} does not match partition over "
            f"{partition.total_rows} rows"
        )
    check_positive_int("iterations", iterations)
    current = grid.astype(np.float64, copy=True)
    scratch = np.empty_like(current)
    bounds = [(s, e) for s, e in partition.bounds() if e > s]
    for _ in range(iterations):
        full_new = np.empty_like(current)
        for start, end in bounds:
            lo = max(0, start - 1)
            hi = min(current.shape[0], end + 1)
            local = current[lo:hi]
            out = scratch[lo:hi]
            numpy_jacobi_sweep(local, out)
            # the sweep leaves local boundary rows untouched, which is
            # exactly right: global boundary rows stay fixed, halo rows are
            # someone else's interior and are not copied back
            full_new[start:end] = out[start - lo : end - lo]
        current = full_new
    return current


def reference_jacobi(grid: np.ndarray, iterations: int) -> np.ndarray:
    """Whole-grid Jacobi sweeps — the ground truth."""
    current = grid.astype(np.float64, copy=True)
    out = np.empty_like(current)
    for _ in range(iterations):
        numpy_jacobi_sweep(current, out)
        current, out = out, current
    return current
