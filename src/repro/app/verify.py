"""Numeric verification of the partitioned multiplication.

The simulator predicts *time*; this module proves the *data layout* right:
it executes the column-based blocked algorithm for real with numpy — every
process updating its own ``C`` rectangle from broadcast pivot panels, one
block-step at a time — and compares against ``A @ B``.  Run with a small
blocking factor so full matrices stay laptop-sized.
"""

from __future__ import annotations

import numpy as np

from repro.app.blocking import BlockGrid
from repro.core.geometry import ColumnPartition
from repro.kernels.gemm_cpu import numpy_gemm_update
from repro.util.rng import RngStream
from repro.util.validation import check_positive_int


def run_partitioned_matmul(
    a: np.ndarray,
    b: np.ndarray,
    partition: ColumnPartition,
    block_size: int,
) -> np.ndarray:
    """Execute the blocked algorithm over a partition; return ``C``.

    Mirrors the paper's Fig. 1: for each iteration ``k`` the pivot block
    column of ``A`` and pivot block row of ``B`` are (conceptually)
    broadcast; each rectangle owner updates its piece of ``C`` with one
    rank-``b`` GEMM.
    """
    grid = BlockGrid(partition.n, block_size)
    if a.shape != (grid.elements, grid.elements) or b.shape != a.shape:
        raise ValueError(
            f"matrices must be {grid.elements} x {grid.elements} for this "
            f"partition, got A {a.shape}, B {b.shape}"
        )
    c = np.zeros_like(a)
    live = [r for r in partition.rectangles if r.area > 0]
    for k in range(partition.n):
        for rect in live:
            c_view = grid.rectangle_view(c, rect)
            a_panel = grid.pivot_column_panel(a, k, rect)
            b_panel = grid.pivot_row_panel(b, k, rect)
            numpy_gemm_update(c_view, a_panel, b_panel)
    return c


def verify_partition_numerically(
    partition: ColumnPartition,
    block_size: int = 8,
    seed: int = 0,
    rtol: float = 1e-5,
    atol: float = 1e-6,
) -> float:
    """Run the partitioned product on random data and check it.

    Returns the maximum absolute deviation from the numpy reference;
    raises AssertionError when outside tolerance.
    """
    check_positive_int("block_size", block_size)
    grid = BlockGrid(partition.n, block_size)
    rng = RngStream(seed).child("verify-data").generator
    a = rng.standard_normal((grid.elements, grid.elements)).astype(np.float64)
    b = rng.standard_normal((grid.elements, grid.elements)).astype(np.float64)
    c = run_partitioned_matmul(a, b, partition, block_size)
    reference = a @ b
    if not np.allclose(c, reference, rtol=rtol, atol=atol):
        worst = float(np.max(np.abs(c - reference)))
        raise AssertionError(
            f"partitioned product deviates from reference by {worst}"
        )
    return float(np.max(np.abs(c - reference)))
