"""The heterogeneous parallel column-based matrix multiplication
(paper Section IV).

:mod:`repro.app.matmul` assembles the whole pipeline: build / accept
performance models per compute unit (sockets and GPUs), partition the
``n x n``-block matrices, arrange rectangles with the column-based
geometry, and simulate the blocked multiplication's execution
(:mod:`repro.app.execution`).  :mod:`repro.app.verify` runs the same
partition numerically with numpy on small matrices, proving the data
layout and update logic correct.
"""

from repro.app.execution import ExecutionResult, simulate_execution
from repro.app.matmul import (
    ComputeUnit,
    HybridMatMul,
    MatMulPlan,
    PartitioningStrategy,
)
from repro.app.verify import verify_partition_numerically

__all__ = [
    "ExecutionResult",
    "simulate_execution",
    "ComputeUnit",
    "HybridMatMul",
    "MatMulPlan",
    "PartitioningStrategy",
    "verify_partition_numerically",
]
