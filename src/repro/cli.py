"""Command-line entry point: ``python -m repro <experiment>``.

Runs one experiment (or the full report) and prints the same rows/series
the paper's tables and figures show.  ``--plot`` renders curve figures as
ASCII charts; ``--export-json PATH`` archives the raw result.

Runs are backed by the content-addressed artifact store by default
(``$REPRO_CACHE_DIR`` or ``~/.cache/repro``): built models and frozen
results are replayed when their inputs are unchanged.  ``--no-cache``
disables the store, ``--cache-dir`` relocates it, and ``--jobs N`` fans
the report's experiments out over worker processes.

``repro lint [paths]`` dispatches to the static analyser
(:mod:`repro.analysis`) instead of running an experiment; ``repro
profile <experiment>`` runs one experiment under the tracer
(:mod:`repro.obs`) and exports spans/metrics; ``repro serve`` runs the
partition-service daemon (:mod:`repro.service`); ``repro
list-experiments`` prints the registry.
"""

from __future__ import annotations

import argparse
import sys
import warnings

from repro.experiments.common import ExperimentConfig
from repro.experiments.export import export_json
from repro.experiments.registry import all_experiments, get_experiment
from repro.store import ResultStore, default_store, use_store
from repro.util.asciiplot import line_plot


def _runnable_names() -> list[str]:
    """The directly runnable experiments (ablations run via 'ablations')."""
    return [e.name for e in all_experiments() if e.kind != "ablation"]


def __getattr__(name: str):
    # Pre-registry callers read the experiment table from this module;
    # keep the attribute alive as a deprecated view of the registry.
    if name == "_EXPERIMENTS":
        warnings.warn(
            "repro.cli._EXPERIMENTS is deprecated; use "
            "repro.experiments.registry (all_experiments/get_experiment)",
            DeprecationWarning,
            stacklevel=2,
        )
        return {
            e.name: (e.run, e.format_result)
            for e in all_experiments()
            if e.kind != "ablation"
        }
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _plot_fig2(result) -> str:
    return line_plot(
        result.sizes,
        {"s5": result.s5, "s6": result.s6},
        title="Figure 2: socket speed functions (GFlops vs blocks)",
        y_label="GFlops",
        x_label="blocks",
    )


def _plot_fig3(result) -> str:
    return line_plot(
        result.sizes,
        {"v1": result.v1, "v2": result.v2, "v3": result.v3},
        title=(
            "Figure 3: GTX680 kernel versions (GFlops vs blocks; memory "
            f"limit ~{result.memory_limit_blocks:.0f})"
        ),
        y_label="GFlops",
        x_label="blocks",
    )


def _plot_fig7(result) -> str:
    return line_plot(
        result.sizes,
        {
            "homogeneous": result.homogeneous,
            "CPM": result.cpm,
            "FPM": result.fpm,
        },
        title="Figure 7: execution time vs matrix size (seconds)",
        y_label="s",
        x_label="n",
    )


def _plot_fig6(result) -> str:
    ranks = list(range(len(result.cpm_times)))
    return line_plot(
        ranks,
        {"CPM": result.cpm_times, "FPM": result.fpm_times},
        title="Figure 6: per-process computation time (seconds vs rank)",
        y_label="s",
        x_label="rank",
    )


_PLOTTERS = {
    "fig2": _plot_fig2,
    "fig3": _plot_fig3,
    "fig6": _plot_fig6,
    "fig7": _plot_fig7,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description=(
            "Reproduce the tables and figures of Zhong, Rychkov, "
            "Lastovetsky (CLUSTER 2012) on the simulated hybrid node."
        ),
        epilog=(
            "Separate subcommands: `repro lint [paths] [--help]` runs the "
            "static analyser; `repro profile <experiment> [--help]` runs "
            "one experiment under the tracer; `repro serve [--help]` runs "
            "the partition service daemon."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_runnable_names())
        + ["report", "models", "ablations", "list-experiments"],
        help=(
            "which table/figure to reproduce ('report' runs everything; "
            "'models' builds and saves the node's FPMs; 'ablations' runs "
            "all extension studies; 'list-experiments' prints the registry)"
        ),
    )
    parser.add_argument("--seed", type=int, default=42, help="experiment seed")
    parser.add_argument(
        "--noise",
        type=float,
        default=0.02,
        help="measurement noise sigma (log-time std)",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="coarser sweeps for a quick run",
    )
    parser.add_argument(
        "--gpu-version",
        type=int,
        default=3,
        choices=(1, 2, 3),
        help="GPU kernel version for the application experiments",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="also render curve figures as ASCII charts",
    )
    parser.add_argument(
        "--export-json",
        metavar="PATH",
        help="write the raw experiment result as JSON",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default="models.json",
        help="output file for the 'models' command (default: models.json)",
    )
    parser.add_argument(
        "--max-blocks",
        type=float,
        default=6500.0,
        help="model range for the 'models' command, in b x b blocks",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the 'report' command (default: 1)",
    )
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help=(
            "fault-injection spec, e.g. 'fail:GeForce GTX680:p=0.3; "
            "spike:*:p=0.05,x=10' (see docs/fault-tolerance.md)"
        ),
    )
    parser.add_argument(
        "--drift",
        metavar="SPEC",
        default=None,
        help=(
            "time-varying device speed spec, e.g. 'throttle:GeForce "
            "GTX680:t0=2,tau=10,floor=0.5; jitter:*:sigma=0.01' "
            "(see docs/drift.md)"
        ),
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-experiment timeout for the 'report' command",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the artifact store: rebuild models and results",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="artifact store root (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    return parser


def _resolve_store(args) -> ResultStore | None:
    if args.no_cache:
        return None
    if args.cache_dir:
        return ResultStore(args.cache_dir)
    return default_store()


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv[:1] == ["lint"]:
        # the analyser owns its own argparse surface; keep the experiment
        # parser free of lint flags
        from repro.analysis.cli import main as lint_main

        return lint_main(argv[1:])
    if argv[:1] == ["profile"]:
        # ditto for the tracing front-end
        from repro.obs.cli import main as profile_main

        return profile_main(argv[1:])
    if argv[:1] == ["serve"]:
        # ditto for the partition daemon
        from repro.service.cli import main as serve_main

        return serve_main(argv[1:])
    args = build_parser().parse_args(argv)
    config = ExperimentConfig(
        seed=args.seed,
        noise_sigma=args.noise,
        fast=args.fast,
        gpu_version=args.gpu_version,
        faults=args.faults,
        drift=args.drift,
    )
    if args.experiment == "list-experiments":
        return _list_experiments_command()
    store = _resolve_store(args)
    if args.experiment == "report":
        from repro.experiments.orchestrator import run_full_report

        print(
            run_full_report(
                config, jobs=args.jobs, store=store, timeout_s=args.timeout
            )
        )
        return 0
    with use_store(store):
        if args.experiment == "models":
            return _build_models_command(config, args.out, args.max_blocks)
        if args.experiment == "ablations":
            return _run_ablations_command(config, store)
        from repro.experiments.orchestrator import run_experiment

        result = run_experiment(args.experiment, config, store=store)
    print(get_experiment(args.experiment).format_result(result))
    if args.plot:
        plotter = _PLOTTERS.get(args.experiment)
        if plotter is None:
            print(f"(no plot defined for {args.experiment})")
        else:
            print()
            print(plotter(result))
    if args.export_json:
        export_json(result, args.export_json)
        print(f"result written to {args.export_json}")
    return 0


def _list_experiments_command() -> int:
    """Print the experiment registry as a table."""
    print(f"{'name':<22} {'kind':<9} {'module':<46} paper refs")
    for e in all_experiments():
        refs = ", ".join(e.paper_refs) or "-"
        print(f"{e.name:<22} {e.kind:<9} {e.module:<46} {refs}")
    return 0


def _run_ablations_command(config: ExperimentConfig, store) -> int:
    """Run every extension study and print its regenerated output."""
    from repro.experiments.orchestrator import run_experiment

    for exp in all_experiments():
        if exp.kind != "ablation":
            continue
        name = exp.name
        print(f"=== {name} " + "=" * max(0, 60 - len(name)))
        print(exp.format_result(run_experiment(name, config, store=store)))
        print()
    return 0


def _build_models_command(
    config: ExperimentConfig, out: str, max_blocks: float
) -> int:
    """Build the preset node's FPMs and persist them as JSON."""
    from repro.app.matmul import HybridMatMul
    from repro.core.serialization import save_models
    from repro.platform.presets import ig_icl_node

    app = HybridMatMul(
        ig_icl_node(),
        seed=config.seed,
        noise_sigma=config.noise_sigma,
        gpu_version=config.gpu_version,
    )
    models = app.build_models(
        max_blocks=max_blocks,
        cpu_points=8 if config.fast else 12,
        gpu_points=10 if config.fast else 16,
        adaptive=not config.fast,
    )
    ordered = [models[name] for name in sorted(models)]
    save_models(out, ordered)
    total_reps = sum(m.repetitions_total for m in ordered)
    for m in ordered:
        print(
            f"  {m.name:18s} {len(m.speed_function):3d} samples "
            f"({m.repetitions_total} repetitions)"
        )
    print(f"{len(ordered)} models ({total_reps} repetitions) saved to {out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
