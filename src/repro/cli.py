"""Command-line entry point: ``python -m repro <experiment>``.

Runs one experiment (or the full report) and prints the same rows/series
the paper's tables and figures show.  ``--plot`` renders curve figures as
ASCII charts; ``--export-json PATH`` archives the raw result.

``repro lint [paths]`` dispatches to the static analyser
(:mod:`repro.analysis`) instead of running an experiment; ``repro
profile <experiment>`` runs one experiment under the tracer
(:mod:`repro.obs`) and exports spans/metrics.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    fig2_socket_fpm,
    fig3_gpu_versions,
    fig5_contention,
    fig6_process_times,
    fig7_exec_vs_size,
    jacobi_app,
    table2_exec_time,
    table3_partitioning,
)
from repro.experiments.common import ExperimentConfig
from repro.experiments.export import export_json
from repro.experiments.report import full_report
from repro.util.asciiplot import line_plot

_EXPERIMENTS = {
    "fig2": (fig2_socket_fpm.run, fig2_socket_fpm.format_result),
    "fig3": (fig3_gpu_versions.run, fig3_gpu_versions.format_result),
    "fig5": (fig5_contention.run, fig5_contention.format_result),
    "fig6": (fig6_process_times.run, fig6_process_times.format_result),
    "fig7": (fig7_exec_vs_size.run, fig7_exec_vs_size.format_result),
    "table2": (table2_exec_time.run, table2_exec_time.format_result),
    "table3": (table3_partitioning.run, table3_partitioning.format_result),
    "jacobi": (jacobi_app.run, jacobi_app.format_result),
}


def _plot_fig2(result) -> str:
    return line_plot(
        result.sizes,
        {"s5": result.s5, "s6": result.s6},
        title="Figure 2: socket speed functions (GFlops vs blocks)",
        y_label="GFlops",
        x_label="blocks",
    )


def _plot_fig3(result) -> str:
    return line_plot(
        result.sizes,
        {"v1": result.v1, "v2": result.v2, "v3": result.v3},
        title=(
            "Figure 3: GTX680 kernel versions (GFlops vs blocks; memory "
            f"limit ~{result.memory_limit_blocks:.0f})"
        ),
        y_label="GFlops",
        x_label="blocks",
    )


def _plot_fig7(result) -> str:
    return line_plot(
        result.sizes,
        {
            "homogeneous": result.homogeneous,
            "CPM": result.cpm,
            "FPM": result.fpm,
        },
        title="Figure 7: execution time vs matrix size (seconds)",
        y_label="s",
        x_label="n",
    )


def _plot_fig6(result) -> str:
    ranks = list(range(len(result.cpm_times)))
    return line_plot(
        ranks,
        {"CPM": result.cpm_times, "FPM": result.fpm_times},
        title="Figure 6: per-process computation time (seconds vs rank)",
        y_label="s",
        x_label="rank",
    )


_PLOTTERS = {
    "fig2": _plot_fig2,
    "fig3": _plot_fig3,
    "fig6": _plot_fig6,
    "fig7": _plot_fig7,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description=(
            "Reproduce the tables and figures of Zhong, Rychkov, "
            "Lastovetsky (CLUSTER 2012) on the simulated hybrid node."
        ),
        epilog=(
            "Separate subcommands: `repro lint [paths] [--help]` runs the "
            "static analyser; `repro profile <experiment> [--help]` runs "
            "one experiment under the tracer."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["report", "models", "ablations"],
        help=(
            "which table/figure to reproduce ('report' runs everything; "
            "'models' builds and saves the node's FPMs; 'ablations' runs "
            "all extension studies)"
        ),
    )
    parser.add_argument("--seed", type=int, default=42, help="experiment seed")
    parser.add_argument(
        "--noise",
        type=float,
        default=0.02,
        help="measurement noise sigma (log-time std)",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="coarser sweeps for a quick run",
    )
    parser.add_argument(
        "--gpu-version",
        type=int,
        default=3,
        choices=(1, 2, 3),
        help="GPU kernel version for the application experiments",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="also render curve figures as ASCII charts",
    )
    parser.add_argument(
        "--export-json",
        metavar="PATH",
        help="write the raw experiment result as JSON",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default="models.json",
        help="output file for the 'models' command (default: models.json)",
    )
    parser.add_argument(
        "--max-blocks",
        type=float,
        default=6500.0,
        help="model range for the 'models' command, in b x b blocks",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv[:1] == ["lint"]:
        # the analyser owns its own argparse surface; keep the experiment
        # parser free of lint flags
        from repro.analysis.cli import main as lint_main

        return lint_main(argv[1:])
    if argv[:1] == ["profile"]:
        # ditto for the tracing front-end
        from repro.obs.cli import main as profile_main

        return profile_main(argv[1:])
    args = build_parser().parse_args(argv)
    config = ExperimentConfig(
        seed=args.seed,
        noise_sigma=args.noise,
        fast=args.fast,
        gpu_version=args.gpu_version,
    )
    if args.experiment == "report":
        print(full_report(config))
        return 0
    if args.experiment == "models":
        return _build_models_command(config, args.out, args.max_blocks)
    if args.experiment == "ablations":
        return _run_ablations_command(config)
    run, fmt = _EXPERIMENTS[args.experiment]
    result = run(config)
    print(fmt(result))
    if args.plot:
        plotter = _PLOTTERS.get(args.experiment)
        if plotter is None:
            print(f"(no plot defined for {args.experiment})")
        else:
            print()
            print(plotter(result))
    if args.export_json:
        export_json(result, args.export_json)
        print(f"result written to {args.export_json}")
    return 0


def _run_ablations_command(config: ExperimentConfig) -> int:
    """Run every extension study and print its regenerated output."""
    from repro.experiments import ablations

    for name in ablations.__all__:
        module = getattr(ablations, name)
        print(f"=== {name} " + "=" * max(0, 60 - len(name)))
        print(module.format_result(module.run(config)))
        print()
    return 0


def _build_models_command(
    config: ExperimentConfig, out: str, max_blocks: float
) -> int:
    """Build the preset node's FPMs and persist them as JSON."""
    from repro.app.matmul import HybridMatMul
    from repro.core.serialization import save_models
    from repro.platform.presets import ig_icl_node

    app = HybridMatMul(
        ig_icl_node(),
        seed=config.seed,
        noise_sigma=config.noise_sigma,
        gpu_version=config.gpu_version,
    )
    models = app.build_models(
        max_blocks=max_blocks,
        cpu_points=8 if config.fast else 12,
        gpu_points=10 if config.fast else 16,
        adaptive=not config.fast,
    )
    ordered = [models[name] for name in sorted(models)]
    save_models(out, ordered)
    total_reps = sum(m.repetitions_total for m in ordered)
    for m in ordered:
        print(
            f"  {m.name:18s} {len(m.speed_function):3d} samples "
            f"({m.repetitions_total} repetitions)"
        )
    print(f"{len(ordered)} models ({total_reps} repetitions) saved to {out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
