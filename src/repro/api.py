"""The stable high-level API: build models, solve partitions, run experiments.

These entry points cover the library's everyday uses without touching
the internal layers; all arguments are keyword-only so call sites stay
readable and future knobs can be added without breaking anyone:

* :func:`build_models` — benchmark a node and return its FPMs (cached
  via the active store when one is installed);
* :class:`Solver` / :class:`SolverOptions` / :class:`SolveResult` — the
  unified partitioning entry point: one options record, one ``solve``
  call for flat and hierarchical cluster partitioning (re-exported from
  :mod:`repro.core.solver`);
* :func:`partition_node` — the service-shaped composition: a platform
  spec plus a problem size in, a named allocation out;
* :func:`run_experiment` — run one registered table/figure/ablation;
* :func:`load_cached_result` — peek at a frozen result without running;
* :func:`run_report` — the full paper-vs-measured report, optionally
  parallel and store-backed.

The pre-``Solver`` :func:`partition` function is deprecated: it still
works (module ``__getattr__`` serves it with a one-time
``DeprecationWarning``) but new code should hold a :class:`Solver`.

Async callers (the partition service, notebooks driving many solves)
use the ``*_async`` variants, which run the synchronous pipeline on a
worker thread via :func:`asyncio.to_thread`.  ``to_thread`` copies the
calling context, and the active store binding is context-local
(:mod:`repro.store`), so a store installed with
:func:`repro.store.use_store` around the ``await`` is seen by the
solve — the entry points are async-*safe*, not just async-flavoured.
"""

from __future__ import annotations

import asyncio
import warnings
from typing import Any

from repro.app.matmul import HybridMatMul
from repro.core.fpm import FunctionalPerformanceModel
from repro.core.solver import SolveResult, Solver, SolverOptions
from repro.experiments import orchestrator
from repro.experiments.common import ExperimentConfig
from repro.platform.presets import ig_icl_node
from repro.platform.spec import NodeSpec
from repro.store import ResultStore

__all__ = [
    "Solver",
    "SolverOptions",
    "SolveResult",
    "build_models",
    "build_models_async",
    "partition",  # deprecated, served lazily
    "partition_node",
    "partition_node_async",
    "run_experiment",
    "load_cached_result",
    "run_report",
]


def build_models(
    *,
    node: NodeSpec | None = None,
    seed: int = 42,
    noise_sigma: float = 0.02,
    gpu_version: int = 3,
    max_blocks: float = 6500.0,
    cpu_points: int = 12,
    gpu_points: int = 16,
    adaptive: bool = True,
) -> dict[str, FunctionalPerformanceModel]:
    """Benchmark every compute unit of a node and build its FPMs.

    Defaults reproduce the paper's hybrid node; install a store
    (:func:`repro.store.use_store`) to make repeated builds warm.
    """
    app = HybridMatMul(
        node or ig_icl_node(),
        seed=seed,
        noise_sigma=noise_sigma,
        gpu_version=gpu_version,
    )
    return app.build_models(
        max_blocks=max_blocks,
        cpu_points=cpu_points,
        gpu_points=gpu_points,
        adaptive=adaptive,
    )


def _legacy_partition(
    models: list, total: float, *, strategy: str = "fpm"
) -> list[float]:
    """Deprecated: split ``total`` across ``models`` under a strategy.

    The pre-:class:`Solver` entry point; equivalent to
    ``Solver(strategy=strategy).solve(models, total)``.  ``strategy``
    accepts the historical names (``"fpm"``, ``"geometric"``, ``"cpm"``,
    ``"homogeneous"``) plus the canonical ``"even"``.
    """
    return list(Solver(strategy=strategy).solve(list(models), total).allocations)


#: Deprecated module attributes, served by ``__getattr__`` with a
#: one-time warning each: name -> (replacement object, message).
_DEPRECATED = {
    "partition": (
        _legacy_partition,
        "repro.api.partition is deprecated; use repro.api.Solver — e.g. "
        "Solver(strategy='fpm').solve(models, total).allocations",
    ),
}
_warned_deprecated: set[str] = set()


def __getattr__(name: str):
    # PEP 562: keep the pre-Solver entry points importable while steering
    # new code (and `repro lint`) toward the Solver facade
    if name in _DEPRECATED:
        replacement, message = _DEPRECATED[name]
        if name not in _warned_deprecated:
            _warned_deprecated.add(name)
            warnings.warn(message, DeprecationWarning, stacklevel=2)
        return replacement
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def partition_node(
    *,
    node: NodeSpec | None = None,
    total_blocks: float,
    strategy: str = "fpm",
    seed: int = 42,
    noise_sigma: float = 0.02,
    gpu_version: int = 3,
    max_blocks: float = 6500.0,
    cpu_points: int = 12,
    gpu_points: int = 16,
    adaptive: bool = True,
    tolerance: float | None = None,
    max_iters: int | None = None,
) -> dict[str, float]:
    """Build a node's FPMs and split ``total_blocks`` across its units.

    The one-call composition the partition service exposes over HTTP:
    platform spec + problem size in, ``{unit name: allocation}`` out,
    with units in sorted-name order (the order :func:`build_models`
    reports).  Model building goes through the active store when one is
    installed, so repeated calls for one spec are warm.  ``tolerance``
    and ``max_iters`` tune the FPM solver (defaults when ``None``).
    """
    models = build_models(
        node=node,
        seed=seed,
        noise_sigma=noise_sigma,
        gpu_version=gpu_version,
        max_blocks=max_blocks,
        cpu_points=cpu_points,
        gpu_points=gpu_points,
        adaptive=adaptive,
    )
    solver_kwargs: dict[str, Any] = {"strategy": strategy}
    if tolerance is not None:
        solver_kwargs["tolerance"] = tolerance
    if max_iters is not None:
        solver_kwargs["max_iters"] = max_iters
    names = sorted(models)
    result = Solver(**solver_kwargs).solve(
        [models[name] for name in names], total_blocks
    )
    return result.as_dict(names)


async def build_models_async(**kwargs: Any) -> dict[str, FunctionalPerformanceModel]:
    """:func:`build_models` on a worker thread (context — store — carried)."""
    return await asyncio.to_thread(lambda: build_models(**kwargs))


async def partition_node_async(**kwargs: Any) -> dict[str, float]:
    """:func:`partition_node` on a worker thread (context — store — carried)."""
    return await asyncio.to_thread(lambda: partition_node(**kwargs))


def run_experiment(
    name: str,
    *,
    config: ExperimentConfig | None = None,
    store: ResultStore | None = None,
) -> Any:
    """Run one registered experiment by name; see ``repro list-experiments``."""
    return orchestrator.run_experiment(
        name, config or ExperimentConfig(), store=store
    )


def load_cached_result(
    name: str,
    *,
    config: ExperimentConfig | None = None,
    store: ResultStore | None = None,
) -> Any | None:
    """A previous identical run's frozen result, or None on miss."""
    return orchestrator.load_cached_result(
        name, config or ExperimentConfig(), store=store
    )


def run_report(
    *,
    config: ExperimentConfig | None = None,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> str:
    """The complete text report (``repro report``), orchestrated."""
    return orchestrator.run_full_report(
        config or ExperimentConfig(), jobs=jobs, store=store
    )
