"""The stable high-level API: build models, partition, run experiments.

These entry points cover the library's everyday uses without touching
the internal layers; all arguments are keyword-only so call sites stay
readable and future knobs can be added without breaking anyone:

* :func:`build_models` — benchmark a node and return its FPMs (cached
  via the active store when one is installed);
* :func:`partition` — split a workload under any of the paper's
  algorithms;
* :func:`partition_node` — the service-shaped composition of the two: a
  platform spec plus a problem size in, a named allocation out;
* :func:`run_experiment` — run one registered table/figure/ablation;
* :func:`load_cached_result` — peek at a frozen result without running;
* :func:`run_report` — the full paper-vs-measured report, optionally
  parallel and store-backed.

Async callers (the partition service, notebooks driving many solves)
use the ``*_async`` variants, which run the synchronous pipeline on a
worker thread via :func:`asyncio.to_thread`.  ``to_thread`` copies the
calling context, and the active store binding is context-local
(:mod:`repro.store`), so a store installed with
:func:`repro.store.use_store` around the ``await`` is seen by the
solve — the entry points are async-*safe*, not just async-flavoured.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.app.matmul import HybridMatMul
from repro.core.cpm import cpms_from_even_split
from repro.core.fpm import FunctionalPerformanceModel
from repro.core.partition import (
    geometric_partition,
    partition_cpm,
    partition_fpm,
    partition_homogeneous,
)
from repro.experiments import orchestrator
from repro.experiments.common import ExperimentConfig
from repro.platform.presets import ig_icl_node
from repro.platform.spec import NodeSpec
from repro.store import ResultStore


def build_models(
    *,
    node: NodeSpec | None = None,
    seed: int = 42,
    noise_sigma: float = 0.02,
    gpu_version: int = 3,
    max_blocks: float = 6500.0,
    cpu_points: int = 12,
    gpu_points: int = 16,
    adaptive: bool = True,
) -> dict[str, FunctionalPerformanceModel]:
    """Benchmark every compute unit of a node and build its FPMs.

    Defaults reproduce the paper's hybrid node; install a store
    (:func:`repro.store.use_store`) to make repeated builds warm.
    """
    app = HybridMatMul(
        node or ig_icl_node(),
        seed=seed,
        noise_sigma=noise_sigma,
        gpu_version=gpu_version,
    )
    return app.build_models(
        max_blocks=max_blocks,
        cpu_points=cpu_points,
        gpu_points=gpu_points,
        adaptive=adaptive,
    )


def partition(models: list, total: float, *, strategy: str = "fpm") -> list[float]:
    """Split ``total`` workload units across ``models`` under a strategy.

    ``strategy`` is one of ``"fpm"`` (equal finish times via the
    time-function bisection), ``"geometric"`` (the equivalent ray
    rotation), ``"cpm"`` (proportional to constant speeds) or
    ``"homogeneous"`` (even split — ``models`` only sets the count).
    """
    if strategy == "fpm":
        return partition_fpm(models, total)
    if strategy == "geometric":
        return geometric_partition(models, total)
    if strategy == "cpm":
        # the traditional partitioner works on constants; FPMs are
        # calibrated at an even split of the problem (the paper's CPM
        # procedure) before the proportional split
        if models and isinstance(models[0], FunctionalPerformanceModel):
            models = cpms_from_even_split(list(models), total)
        return partition_cpm(models, total)
    if strategy == "homogeneous":
        return partition_homogeneous(len(models), total)
    raise ValueError(
        f"unknown strategy {strategy!r}; expected fpm, geometric, cpm "
        f"or homogeneous"
    )


def partition_node(
    *,
    node: NodeSpec | None = None,
    total_blocks: float,
    strategy: str = "fpm",
    seed: int = 42,
    noise_sigma: float = 0.02,
    gpu_version: int = 3,
    max_blocks: float = 6500.0,
    cpu_points: int = 12,
    gpu_points: int = 16,
    adaptive: bool = True,
) -> dict[str, float]:
    """Build a node's FPMs and split ``total_blocks`` across its units.

    The one-call composition the partition service exposes over HTTP:
    platform spec + problem size in, ``{unit name: allocation}`` out,
    with units in sorted-name order (the order :func:`build_models`
    reports).  Model building goes through the active store when one is
    installed, so repeated calls for one spec are warm.
    """
    models = build_models(
        node=node,
        seed=seed,
        noise_sigma=noise_sigma,
        gpu_version=gpu_version,
        max_blocks=max_blocks,
        cpu_points=cpu_points,
        gpu_points=gpu_points,
        adaptive=adaptive,
    )
    names = sorted(models)
    shares = partition(
        [models[name] for name in names], total_blocks, strategy=strategy
    )
    return dict(zip(names, shares))


async def build_models_async(**kwargs: Any) -> dict[str, FunctionalPerformanceModel]:
    """:func:`build_models` on a worker thread (context — store — carried)."""
    return await asyncio.to_thread(lambda: build_models(**kwargs))


async def partition_node_async(**kwargs: Any) -> dict[str, float]:
    """:func:`partition_node` on a worker thread (context — store — carried)."""
    return await asyncio.to_thread(lambda: partition_node(**kwargs))


def run_experiment(
    name: str,
    *,
    config: ExperimentConfig | None = None,
    store: ResultStore | None = None,
) -> Any:
    """Run one registered experiment by name; see ``repro list-experiments``."""
    return orchestrator.run_experiment(
        name, config or ExperimentConfig(), store=store
    )


def load_cached_result(
    name: str,
    *,
    config: ExperimentConfig | None = None,
    store: ResultStore | None = None,
) -> Any | None:
    """A previous identical run's frozen result, or None on miss."""
    return orchestrator.load_cached_result(
        name, config or ExperimentConfig(), store=store
    )


def run_report(
    *,
    config: ExperimentConfig | None = None,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> str:
    """The complete text report (``repro report``), orchestrated."""
    return orchestrator.run_full_report(
        config or ExperimentConfig(), jobs=jobs, store=store
    )
