"""Simulated hybrid multicore / multi-GPU platform substrate.

The paper runs on a real NUMA node (4 x six-core AMD Opteron 8439SE + GeForce
GTX680 + Tesla C870, Table I).  This environment has neither GPUs nor ACML /
CUBLAS, so — per the reproduction's substitution rule — this package provides
an *analytic performance substrate*: device models that map (kernel, problem
size, contention state) to execution time, with calibrated curve shapes and
multiplicative measurement noise.  Everything above this package (measurement,
FPM construction, partitioning, the application) treats these devices exactly
as the paper treats hardware: as black boxes that can be timed.
"""

from repro.platform.contention import CpuGpuInterference, SocketContention
from repro.platform.device import SimulatedCore, SimulatedGpu, SimulatedSocket
from repro.platform.drift import (
    DeviceDrift,
    DriftModel,
    DriftSpec,
    parse_drift_spec,
)
from repro.platform.faults import (
    DeviceDrop,
    DeviceFaults,
    FaultPlan,
    FaultSpec,
    KernelFaultError,
    RetryPolicy,
    parse_fault_spec,
)
from repro.platform.memory import CoreCacheModel, GpuMemoryModel
from repro.platform.noise import NoiseModel
from repro.platform.pcie import PcieLink
from repro.platform.presets import ig_icl_node
from repro.platform.spec import (
    CpuSpec,
    GpuSpec,
    HybridNode,
    NodeSpec,
    SocketSpec,
)

__all__ = [
    "CpuGpuInterference",
    "SocketContention",
    "SimulatedCore",
    "SimulatedGpu",
    "SimulatedSocket",
    "CoreCacheModel",
    "GpuMemoryModel",
    "DeviceDrift",
    "DriftModel",
    "DriftSpec",
    "parse_drift_spec",
    "DeviceDrop",
    "DeviceFaults",
    "FaultPlan",
    "FaultSpec",
    "KernelFaultError",
    "RetryPolicy",
    "parse_fault_spec",
    "NoiseModel",
    "PcieLink",
    "ig_icl_node",
    "CpuSpec",
    "GpuSpec",
    "HybridNode",
    "NodeSpec",
    "SocketSpec",
]
