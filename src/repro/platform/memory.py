"""Memory-hierarchy effects on kernel speed.

:class:`CoreCacheModel` shapes the per-core CPU GEMM rate as a function of
the per-core problem area: a warm-up ramp at small sizes and a gentle droop
once the working set outgrows the cache-friendly regime.  Together with the
socket contention model it generates speed functions with the paper's Fig. 2
shape.

:class:`GpuMemoryModel` answers capacity questions for the GPU kernels: how
many b x b blocks of ``C`` (plus pivot and double buffers) fit in usable
device memory.  It defines the out-of-core threshold — the vertical
"memory limit" line in the paper's Fig. 3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.platform.spec import CpuSpec, GpuSpec
from repro.util.units import blocks_to_bytes
from repro.util.validation import check_nonnegative, check_positive


#: The blocking factor all calibration constants are normalised at.
REFERENCE_BLOCK_SIZE = 640


def blocking_factor_efficiency(
    block_size: int, halfpoint_elems: float, reference: int = REFERENCE_BLOCK_SIZE
) -> float:
    """GEMM rate multiplier for a blocking factor other than the reference.

    The kernel's inner dimension is ``b``; BLAS implementations approach
    peak as ``b / (b + halfpoint)`` (rank-k updates amortise memory traffic
    over more flops).  Normalised to 1.0 at the paper's b = 640 so the
    calibrated peak rates stay meaningful.
    """
    check_positive("block_size", block_size)
    check_nonnegative("halfpoint_elems", halfpoint_elems)
    if halfpoint_elems == 0.0:
        return 1.0
    raw = block_size / (block_size + halfpoint_elems)
    ref = reference / (reference + halfpoint_elems)
    return raw / ref


@dataclass(frozen=True)
class CoreCacheModel:
    """Size-dependent efficiency of one CPU core running the GEMM kernel."""

    cpu: CpuSpec

    def efficiency(self, per_core_area_blocks: float) -> float:
        """Multiplier in (0, 1] applied to the core's peak rate."""
        check_nonnegative("per_core_area_blocks", per_core_area_blocks)
        a = per_core_area_blocks
        ramp = 1.0 - self.cpu.ramp_depth * math.exp(-a / self.cpu.ramp_blocks)
        over = max(0.0, a - self.cpu.mem_pressure_blocks)
        droop = 1.0 / (1.0 + self.cpu.mem_pressure_slope * over)
        return ramp * droop

    def efficiency_batch(self, per_core_area_blocks: np.ndarray) -> np.ndarray:
        """:meth:`efficiency` over an array of areas, element-identical.

        Areas are assumed pre-validated (>= 0) by the calling kernel.
        """
        a = np.asarray(per_core_area_blocks, dtype=np.float64)
        ramp = 1.0 - self.cpu.ramp_depth * np.exp(-a / self.cpu.ramp_blocks)
        over = np.maximum(0.0, a - self.cpu.mem_pressure_blocks)
        droop = 1.0 / (1.0 + self.cpu.mem_pressure_slope * over)
        return ramp * droop

    def core_rate_gflops(self, per_core_area_blocks: float) -> float:
        """Solo-core GEMM rate at the given per-core problem area."""
        return self.cpu.peak_gflops * self.efficiency(per_core_area_blocks)

    def core_rate_gflops_batch(self, per_core_area_blocks: np.ndarray) -> np.ndarray:
        """:meth:`core_rate_gflops` over an array of areas."""
        return self.cpu.peak_gflops * self.efficiency_batch(per_core_area_blocks)


@dataclass(frozen=True)
class GpuMemoryModel:
    """Capacity accounting for GPU kernel buffers, in b x b blocks."""

    gpu: GpuSpec
    block_size: int

    def __post_init__(self) -> None:
        check_positive("block_size", self.block_size)

    @property
    def block_bytes(self) -> float:
        """Single-precision bytes of one b x b block."""
        return blocks_to_bytes(1, self.block_size)

    @property
    def usable_blocks(self) -> float:
        """Usable device memory expressed in b x b blocks."""
        return self.gpu.usable_memory_mb * 1024.0 * 1024.0 / self.block_bytes

    def pivot_blocks(self, area_blocks: float) -> float:
        """Blocks needed by the pivot column and row pieces for area ``x``.

        A near-square submatrix of area ``x`` has sides ``~sqrt(x)`` blocks,
        so the pivot column piece ``A_(b)`` holds ``sqrt(x)`` blocks and the
        pivot row piece ``B_(b)`` holds ``sqrt(x)`` blocks.
        """
        check_nonnegative("area_blocks", area_blocks)
        return 2.0 * math.sqrt(area_blocks)

    def pivot_blocks_batch(self, area_blocks: np.ndarray) -> np.ndarray:
        """:meth:`pivot_blocks` over an array of (pre-validated) areas."""
        return 2.0 * np.sqrt(np.asarray(area_blocks, dtype=np.float64))

    def resident_capacity_blocks(self) -> float:
        """Largest C area (blocks) whose submatrix + pivots fit on device.

        Solves ``x + 2 sqrt(x) <= usable`` for the in-core threshold — the
        paper's "memory limit".
        """
        u = self.usable_blocks
        if u <= 0:
            return 0.0
        # x + 2 sqrt(x) = u  =>  sqrt(x) = -1 + sqrt(1 + u)
        root = -1.0 + math.sqrt(1.0 + u)
        return root * root

    def fits_resident(self, area_blocks: float) -> bool:
        """True when a C submatrix of the given area can stay device-resident."""
        check_nonnegative("area_blocks", area_blocks)
        return area_blocks <= self.resident_capacity_blocks()

    def out_of_core_tile_blocks(self, buffered_tiles: int = 2) -> float:
        """Largest per-tile C area for the out-of-core kernels.

        Version 2 needs 1 C tile resident at a time but keeps the *last two*
        rectangles (paper Section V), and version 3 double-buffers C (C0/C1)
        and A (A0/A1); sizing tiles so ``buffered_tiles`` of them plus
        pivot buffers fit covers both.
        """
        if buffered_tiles < 1:
            raise ValueError("buffered_tiles must be >= 1")
        u = self.usable_blocks
        if u <= 0:
            return 0.0
        # buffered_tiles * t + pivot buffers (sized for the tile) <= usable;
        # pivots for a near-square tile of area t take 2 sqrt(t), and A is
        # double-buffered, so allow 4 sqrt(t):
        #   k t + 4 sqrt(t) = u
        k = float(buffered_tiles)
        root = (-2.0 + math.sqrt(4.0 + k * u)) / k
        return max(0.0, root * root)
