"""Simulated processing elements of the hybrid node.

Devices are *deterministic* time oracles — measurement noise belongs to the
measurement layer (:mod:`repro.measurement`), mirroring reality where the
hardware is what it is and the noise enters through timing.

Device taxonomy (paper Section III):

* :class:`SimulatedCore` — one CPU core running the CPU GEMM kernel; its
  speed depends on its per-core problem area, on how many sibling cores run
  the kernel simultaneously, and on whether a GPU process is busy on the
  same socket.
* :class:`SimulatedSocket` — a group of cores measured together (the paper's
  unit of CPU performance modelling).
* :class:`SimulatedGpu` — a GPU plus its PCIe link and memory model; exposes
  compute/transfer primitives from which :mod:`repro.kernels.gemm_gpu`
  assembles the three kernel versions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.platform.contention import CpuGpuInterference, SocketContention
from repro.platform.memory import (
    CoreCacheModel,
    GpuMemoryModel,
    blocking_factor_efficiency,
)
from repro.platform.pcie import PcieLink
from repro.platform.spec import GpuSpec, NodeSpec, SocketSpec
from repro.util.units import gemm_kernel_flops, gemm_kernel_flops_batch
from repro.util.validation import (
    check_nonnegative,
    check_positive,
    check_positive_int,
)


@dataclass(frozen=True)
class SimulatedCore:
    """One CPU core of a socket, running the CPU GEMM kernel."""

    name: str
    socket: SocketSpec
    interference: CpuGpuInterference
    block_size: int

    @cached_property
    def cache(self) -> CoreCacheModel:
        return CoreCacheModel(self.socket.cpu)

    @cached_property
    def contention(self) -> SocketContention:
        return SocketContention(self.socket.contention_alpha)

    def rate_gflops(
        self,
        per_core_area_blocks: float,
        active_cores: int = 1,
        gpu_active: bool = False,
    ) -> float:
        """Effective GEMM rate of this core under the given sharing state."""
        check_nonnegative("per_core_area_blocks", per_core_area_blocks)
        solo = self.cache.core_rate_gflops(per_core_area_blocks)
        return (
            solo
            * blocking_factor_efficiency(
                self.block_size, self.socket.cpu.gemm_halfpoint_elems
            )
            * self.contention.efficiency(active_cores)
            * self.interference.cpu_speed_factor(gpu_active)
        )

    def rate_gflops_batch(
        self,
        per_core_area_blocks: np.ndarray,
        active_cores: int = 1,
        gpu_active: bool = False,
    ) -> np.ndarray:
        """:meth:`rate_gflops` over an array of (pre-validated) areas."""
        solo = self.cache.core_rate_gflops_batch(per_core_area_blocks)
        return (
            solo
            * blocking_factor_efficiency(
                self.block_size, self.socket.cpu.gemm_halfpoint_elems
            )
            * self.contention.efficiency(active_cores)
            * self.interference.cpu_speed_factor(gpu_active)
        )

    def kernel_time(
        self,
        per_core_area_blocks: float,
        active_cores: int = 1,
        gpu_active: bool = False,
    ) -> float:
        """Seconds for ONE kernel run (``C_i += A_(b) x B_(b)``) on this core."""
        if per_core_area_blocks == 0:
            return 0.0
        flops = gemm_kernel_flops(per_core_area_blocks, self.block_size)
        rate = self.rate_gflops(per_core_area_blocks, active_cores, gpu_active)
        return flops / (rate * 1e9)

    def kernel_time_batch(
        self,
        per_core_area_blocks: np.ndarray,
        active_cores: int = 1,
        gpu_active: bool = False,
    ) -> np.ndarray:
        """:meth:`kernel_time` over an array of per-core areas.

        Element-identical to the scalar method (a zero area divides 0 flops
        by a positive rate, which is exactly the scalar early-out's 0.0).
        """
        areas = np.asarray(per_core_area_blocks, dtype=np.float64)
        flops = gemm_kernel_flops_batch(areas, self.block_size)
        rates = self.rate_gflops_batch(areas, active_cores, gpu_active)
        return flops / (rates * 1e9)


@dataclass(frozen=True)
class SimulatedSocket:
    """A socket measured as a group of ``c`` cores running kernels together.

    The paper's CPU speed functions ``s_c(x)`` give the aggregate socket
    speed when the socket's area ``x`` is split evenly across ``c`` active
    cores (``x / c`` each).
    """

    name: str
    spec: SocketSpec
    interference: CpuGpuInterference
    block_size: int

    def core(self, index: int = 0) -> SimulatedCore:
        """One of the socket's (identical) cores."""
        if not 0 <= index < self.spec.cores:
            raise ValueError(f"core index {index} out of range on {self.name}")
        return SimulatedCore(
            name=f"{self.name}.core{index}",
            socket=self.spec,
            interference=self.interference,
            block_size=self.block_size,
        )

    def kernel_time(
        self,
        socket_area_blocks: float,
        active_cores: int | None = None,
        gpu_active: bool = False,
    ) -> float:
        """Seconds for one kernel run with the socket area split evenly.

        All active cores run identical shares in lockstep, so the group
        finishes when each core's run finishes.
        """
        cores = self.spec.cores if active_cores is None else active_cores
        check_positive_int("active_cores", cores)
        if cores > self.spec.cores:
            raise ValueError(
                f"{cores} active cores requested but {self.name} has "
                f"{self.spec.cores}"
            )
        per_core = socket_area_blocks / cores
        return self.core(0).kernel_time(per_core, cores, gpu_active)

    def kernel_time_batch(
        self,
        socket_area_blocks: np.ndarray,
        active_cores: int | None = None,
        gpu_active: bool = False,
    ) -> np.ndarray:
        """:meth:`kernel_time` over an array of socket areas."""
        cores = self.spec.cores if active_cores is None else active_cores
        check_positive_int("active_cores", cores)
        if cores > self.spec.cores:
            raise ValueError(
                f"{cores} active cores requested but {self.name} has "
                f"{self.spec.cores}"
            )
        per_core = np.asarray(socket_area_blocks, dtype=np.float64) / cores
        return self.core(0).kernel_time_batch(per_core, cores, gpu_active)

    def speed_gflops(
        self,
        socket_area_blocks: float,
        active_cores: int | None = None,
        gpu_active: bool = False,
    ) -> float:
        """Aggregate socket speed ``s_c(x)`` at area ``x`` (paper Fig. 2)."""
        if socket_area_blocks == 0:
            return 0.0
        t = self.kernel_time(socket_area_blocks, active_cores, gpu_active)
        return gemm_kernel_flops(socket_area_blocks, self.block_size) / t / 1e9


@dataclass(frozen=True)
class SimulatedGpu:
    """A GPU, its PCIe link, memory model and host-side interference state."""

    name: str
    spec: GpuSpec
    interference: CpuGpuInterference
    socket_cores: int
    block_size: int

    @cached_property
    def memory(self) -> GpuMemoryModel:
        return GpuMemoryModel(self.spec, self.block_size)

    @cached_property
    def pcie(self) -> PcieLink:
        return PcieLink(self.spec, staging_blocks=self.memory.resident_capacity_blocks())

    def kernel_rate_gflops(
        self,
        tile_area_blocks: float,
        aligned: bool = True,
        aspect: float = 1.0,
    ) -> float:
        """On-device GEMM rate for one tile (saturating with tile size).

        ``aspect`` is the tile's rows/cols ratio: nearly square tiles run
        at full rate (the paper's Section IV assumption), extreme strips
        pay a small quadratic-in-log penalty.
        """
        check_nonnegative("tile_area_blocks", tile_area_blocks)
        check_positive("aspect", aspect)
        if tile_area_blocks == 0:
            return self.spec.peak_gflops  # vacuous; no work
        rate = (
            self.spec.peak_gflops
            * tile_area_blocks
            / (tile_area_blocks + self.spec.rate_half_blocks)
        )
        rate *= blocking_factor_efficiency(
            self.block_size, self.spec.gemm_halfpoint_elems
        )
        if aspect != 1.0 and self.spec.aspect_penalty > 0.0:
            rate /= 1.0 + self.spec.aspect_penalty * math.log2(aspect) ** 2
        if not aligned:
            rate /= self.spec.misalignment_penalty
        return rate

    def compute_time(
        self,
        tile_area_blocks: float,
        aligned: bool = True,
        busy_cpu_cores: int = 0,
    ) -> float:
        """Seconds of on-device GEMM for one tile of ``C``.

        ``busy_cpu_cores`` — CPU kernels running on the host socket slow the
        combined GPU process down (paper Fig. 5b); the slowdown is applied
        uniformly to the GPU's contributions.
        """
        if tile_area_blocks == 0:
            return 0.0
        flops = gemm_kernel_flops(tile_area_blocks, self.block_size)
        rate = self.kernel_rate_gflops(tile_area_blocks, aligned)
        rate *= self.interference.gpu_speed_factor(busy_cpu_cores, self.socket_cores)
        return flops / (rate * 1e9)

    def compute_time_batch(
        self,
        tile_area_blocks: np.ndarray,
        aligned: bool = True,
        busy_cpu_cores: int = 0,
    ) -> np.ndarray:
        """:meth:`compute_time` over an array of (near-square) tile areas.

        Element-identical to the scalar method; used by the GPU kernels'
        ``run_time_batch`` for the device-resident size range.
        """
        areas = np.asarray(tile_area_blocks, dtype=np.float64)
        flops = gemm_kernel_flops_batch(areas, self.block_size)
        rates = self.spec.peak_gflops * areas / (areas + self.spec.rate_half_blocks)
        rates = rates * blocking_factor_efficiency(
            self.block_size, self.spec.gemm_halfpoint_elems
        )
        if not aligned:
            rates = rates / self.spec.misalignment_penalty
        rates = rates * self.interference.gpu_speed_factor(
            busy_cpu_cores, self.socket_cores
        )
        with np.errstate(invalid="ignore", divide="ignore"):
            times = flops / (rates * 1e9)
        return np.where(areas == 0.0, 0.0, times)

    def upload_pivots_time_batch(
        self, area_blocks: np.ndarray, busy_cpu_cores: int = 0
    ) -> np.ndarray:
        """:meth:`upload_pivots_time` over an array of areas."""
        blocks = self.memory.pivot_blocks_batch(area_blocks)
        nbytes = blocks * self.memory.block_bytes
        times = self.pcie.contiguous_time_batch(nbytes)
        return times / self.interference.gpu_speed_factor(
            busy_cpu_cores, self.socket_cores
        )

    def upload_pivots_time(self, area_blocks: float, busy_cpu_cores: int = 0) -> float:
        """Seconds to send the pivot column and row pieces for area ``x``."""
        blocks = self.memory.pivot_blocks(area_blocks)
        nbytes = blocks * self.memory.block_bytes
        t = self.pcie.contiguous_time(nbytes)
        return t / self.interference.gpu_speed_factor(busy_cpu_cores, self.socket_cores)

    def transfer_c_time(
        self,
        tile_area_blocks: float,
        footprint_blocks: float,
        busy_cpu_cores: int = 0,
        kernel_active: bool = False,
    ) -> float:
        """Seconds for a one-way pitched transfer of a C rectangle.

        ``footprint_blocks`` is the area of the whole host submatrix being
        walked (drives the staging bandwidth decay); ``kernel_active``
        applies the concurrent-copy slowdown for overlapped schedules.
        """
        if tile_area_blocks == 0:
            return 0.0
        nbytes = tile_area_blocks * self.memory.block_bytes
        t = self.pcie.pitched_time(nbytes, footprint_blocks)
        t /= self.pcie.concurrent_copy_factor(kernel_active)
        return t / self.interference.gpu_speed_factor(busy_cpu_cores, self.socket_cores)


def build_devices(
    node: NodeSpec,
) -> tuple[list[SimulatedSocket], list[SimulatedGpu]]:
    """Instantiate the simulated devices of a node specification."""
    interference = CpuGpuInterference(
        gpu_drop_max=node.gpu_interference_drop,
        cpu_drop=node.cpu_interference_drop,
    )
    sockets = [
        SimulatedSocket(
            name=f"{node.name}.socket{i}",
            spec=node.socket_spec(i),
            interference=interference,
            block_size=node.block_size,
        )
        for i in range(node.num_sockets)
    ]
    gpus = [
        SimulatedGpu(
            name=f"{node.name}.{att.gpu.name}",
            spec=att.gpu,
            interference=interference,
            socket_cores=node.socket_spec(att.socket_index).cores,
            block_size=node.block_size,
        )
        for att in node.gpus
    ]
    return sockets, gpus
