"""PCI Express link model for host <-> device transfers.

Two transfer classes, matching how the GPU kernels move data:

* **contiguous** — pivot column/row pieces, staged through pinned buffers;
  a fixed effective bandwidth plus per-call latency.
* **pitched** — 2D rectangles of the ``C`` submatrix, copied row-by-row out
  of the (much larger) host matrix.  While the walked submatrix fits the
  pinned staging area (sized like device memory) these run at pinned speed;
  past it the runtime falls back to pageable copies, whose bandwidth is much
  lower and decays mildly with footprint.  This cliff is what produces the
  sharp performance drop past the device-memory limit in the paper's Fig. 3
  and the GPU/socket speed-ratio decline (9x -> ~4x) around Table III.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.platform.spec import GpuSpec
from repro.util.validation import check_nonnegative, check_positive


@dataclass(frozen=True)
class PcieLink:
    """Transfer-time model of one GPU's PCIe connection."""

    gpu: GpuSpec
    staging_blocks: float

    def __post_init__(self) -> None:
        check_positive("staging_blocks", self.staging_blocks)

    def contiguous_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` of contiguous (pinned) data one way."""
        check_nonnegative("nbytes", nbytes)
        if nbytes == 0:
            return 0.0
        return self.gpu.pcie_latency_s + nbytes / (self.gpu.pcie_contig_gbs * 1e9)

    def contiguous_time_batch(self, nbytes: np.ndarray) -> np.ndarray:
        """:meth:`contiguous_time` over an array of (pre-validated) sizes."""
        nb = np.asarray(nbytes, dtype=np.float64)
        times = self.gpu.pcie_latency_s + nb / (self.gpu.pcie_contig_gbs * 1e9)
        return np.where(nb == 0.0, 0.0, times)

    def pitched_bandwidth_gbs(self, footprint_blocks: float) -> float:
        """Effective GB/s of pitched C-rectangle copies.

        ``footprint_blocks`` is the area of the full host submatrix being
        walked during the kernel run (not the size of one transfer call).
        Within the staging area: pinned speed.  Past it: pageable fallback
        with a mild footprint-dependent decay.
        """
        check_nonnegative("footprint_blocks", footprint_blocks)
        if footprint_blocks <= self.staging_blocks:
            return self.gpu.pcie_pitched_pinned_gbs
        ratio = footprint_blocks / self.staging_blocks
        return self.gpu.pcie_pageable_gbs / (ratio ** self.gpu.pageable_decay_power)

    def pitched_bandwidth_gbs_batch(self, footprint_blocks: np.ndarray) -> np.ndarray:
        """:meth:`pitched_bandwidth_gbs` over an array of footprints."""
        fp = np.asarray(footprint_blocks, dtype=np.float64)
        ratio = fp / self.staging_blocks
        with np.errstate(divide="ignore"):
            pageable = self.gpu.pcie_pageable_gbs / ratio**self.gpu.pageable_decay_power
        return np.where(
            fp <= self.staging_blocks, self.gpu.pcie_pitched_pinned_gbs, pageable
        )

    def pitched_time(self, nbytes: float, footprint_blocks: float) -> float:
        """Seconds to move ``nbytes`` of a pitched rectangle one way."""
        check_nonnegative("nbytes", nbytes)
        if nbytes == 0:
            return 0.0
        bw = self.pitched_bandwidth_gbs(footprint_blocks)
        return self.gpu.pcie_latency_s + nbytes / (bw * 1e9)

    def concurrent_copy_factor(self, kernel_active: bool) -> float:
        """Bandwidth multiplier while a kernel occupies the memory controller."""
        return self.gpu.concurrent_copy_slowdown if kernel_active else 1.0
