"""Automated calibration of device-model parameters.

The preset node (:mod:`repro.platform.presets`) was tuned so the simulated
speed functions land on the paper's reported relationships.  This module
makes that process reproducible: given target (size, speed) observations —
digitised figure points, or measurements from real hardware — it fits the
free parameters of a :class:`~repro.platform.spec.CpuSpec` or
:class:`~repro.platform.spec.GpuSpec` by robust least squares on relative
speed error.

The same machinery retargets the simulator at *other* machines: measure a
few GEMM points on your node, fit, and every experiment in
:mod:`repro.experiments` runs against a model of your hardware.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import optimize

from repro.kernels.gemm_cpu import CpuGemmKernel
from repro.kernels.gemm_gpu import gpu_kernel
from repro.kernels.interface import kernel_speed_gflops
from repro.platform.contention import CpuGpuInterference
from repro.platform.device import SimulatedGpu, SimulatedSocket
from repro.platform.spec import CpuSpec, GpuSpec, SocketSpec
from repro.util.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class CalibrationTarget:
    """One desired point of a speed function (GFlops at an area)."""

    area_blocks: float
    speed_gflops: float

    def __post_init__(self) -> None:
        check_positive("area_blocks", self.area_blocks)
        check_positive("speed_gflops", self.speed_gflops)


@dataclass(frozen=True)
class CalibrationReport:
    """Outcome of a fit: the tuned spec and its residual error."""

    mean_relative_error: float
    worst_relative_error: float

    def acceptable(self, tolerance: float = 0.10) -> bool:
        return self.worst_relative_error <= tolerance


def _relative_errors(
    predicted: Sequence[float], targets: Sequence[CalibrationTarget]
) -> np.ndarray:
    return np.array(
        [
            (p - t.speed_gflops) / t.speed_gflops
            for p, t in zip(predicted, targets)
        ]
    )


def calibrate_cpu(
    base: CpuSpec,
    targets: Sequence[CalibrationTarget],
    active_cores: int,
    socket_cores: int = 6,
    contention_alpha: float = 0.04,
    block_size: int = 640,
) -> tuple[CpuSpec, CalibrationReport]:
    """Fit (peak_gflops, ramp_depth, ramp_blocks) to socket speed targets.

    ``targets`` describe the socket-level speed function ``s_c(x)`` for
    ``active_cores = c`` simultaneously busy cores (the paper's Fig. 2
    representation).
    """
    if len(targets) < 3:
        raise ValueError("CPU calibration needs at least 3 target points")
    check_positive_int("active_cores", active_cores)

    def predict(params: np.ndarray) -> list[float]:
        peak, depth, ramp = params
        spec = dataclasses.replace(
            base,
            peak_gflops=float(peak),
            ramp_depth=float(min(max(depth, 0.0), 0.95)),
            ramp_blocks=float(max(ramp, 1e-3)),
        )
        socket = SimulatedSocket(
            name="cal",
            spec=SocketSpec(
                cpu=spec,
                cores=socket_cores,
                memory_gb=16.0,
                contention_alpha=contention_alpha,
            ),
            interference=CpuGpuInterference(),
            block_size=block_size,
        )
        kernel = CpuGemmKernel(socket, active_cores)
        return [kernel_speed_gflops(kernel, t.area_blocks) for t in targets]

    def residuals(params: np.ndarray) -> np.ndarray:
        return _relative_errors(predict(params), targets)

    x0 = np.array([base.peak_gflops, base.ramp_depth, base.ramp_blocks])
    fit = optimize.least_squares(
        residuals,
        x0,
        bounds=([0.1, 0.0, 1e-3], [1e4, 0.95, 1e4]),
        xtol=1e-10,
    )
    peak, depth, ramp = fit.x
    tuned = dataclasses.replace(
        base,
        peak_gflops=float(peak),
        ramp_depth=float(depth),
        ramp_blocks=float(ramp),
    )
    errs = np.abs(residuals(fit.x))
    return tuned, CalibrationReport(
        mean_relative_error=float(errs.mean()),
        worst_relative_error=float(errs.max()),
    )


def calibrate_gpu(
    base: GpuSpec,
    targets: Sequence[CalibrationTarget],
    kernel_version: int = 3,
    socket_cores: int = 6,
    block_size: int = 640,
) -> tuple[GpuSpec, CalibrationReport]:
    """Fit (peak_gflops, rate_half_blocks, pcie_pageable_gbs) to targets.

    Targets may mix in-core and out-of-core points; the out-of-core ones
    constrain the pageable-transfer bandwidth, the in-core ones the kernel
    rate parameters.  Memory capacity is taken from ``base`` (it is known
    hardware data, not a free parameter).
    """
    if len(targets) < 3:
        raise ValueError("GPU calibration needs at least 3 target points")

    def make_gpu(params: np.ndarray) -> SimulatedGpu:
        peak, half, pageable = params
        spec = dataclasses.replace(
            base,
            peak_gflops=float(max(peak, 1e-3)),
            rate_half_blocks=float(max(half, 1e-3)),
            pcie_pageable_gbs=float(max(pageable, 1e-3)),
        )
        return SimulatedGpu(
            name="cal",
            spec=spec,
            interference=CpuGpuInterference(),
            socket_cores=socket_cores,
            block_size=block_size,
        )

    def residuals(params: np.ndarray) -> np.ndarray:
        kernel = gpu_kernel(make_gpu(params), kernel_version)
        predicted = [
            kernel_speed_gflops(kernel, t.area_blocks) for t in targets
        ]
        return _relative_errors(predicted, targets)

    x0 = np.array(
        [base.peak_gflops, base.rate_half_blocks, base.pcie_pageable_gbs]
    )
    fit = optimize.least_squares(
        residuals,
        x0,
        bounds=([1e-3, 1e-3, 1e-3], [1e5, 1e5, 64.0]),
        diff_step=1e-3,
        xtol=1e-10,
    )
    peak, half, pageable = fit.x
    tuned = dataclasses.replace(
        base,
        peak_gflops=float(peak),
        rate_half_blocks=float(half),
        pcie_pageable_gbs=float(pageable),
    )
    errs = np.abs(residuals(fit.x))
    return tuned, CalibrationReport(
        mean_relative_error=float(errs.mean()),
        worst_relative_error=float(errs.max()),
    )
