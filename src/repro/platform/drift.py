"""Time-varying device speed: the non-stationary platform layer.

The paper's functional performance models assume each device's speed
function is stationary, but real platforms disagree: DGEMM throughput is
data-dependent (arXiv:1912.05381) and GPU performance shifts across
machines and over time (arXiv:1904.09538).  This module makes that
non-stationarity a first-class, *seeded* phenomenon — a
:class:`DriftModel` yields a speed multiplier per ``(device, sim-time)``
so the runtime above (:mod:`repro.runtime.drift_control`) has something
real to detect and repartition against.

Design mirrors :class:`repro.platform.noise.NoiseModel` and
:class:`repro.platform.faults.FaultPlan`: every stochastic draw comes
from a named BLAKE2-derived RNG stream keyed by ``(seed, device,
window)``, so the same triple always yields the same multiplier
regardless of query order, and the batched query
(:meth:`DriftModel.speed_multipliers`) is bit-identical to the scalar
one — the scalar/batch simulation lanes must see the same platform.

Drift specs are written in the same clause grammar as ``--faults``::

    throttle:GeForce GTX680:t0=1.5,tau=0.3,floor=0.5; burst:*:p=0.05,x=2,len=0.5; jitter:*:sigma=0.01

* ``throttle`` — from simulated time ``t0`` the device's speed decays
  exponentially (time constant ``tau`` seconds) towards ``floor`` times
  its nominal speed; ``tau=0`` is a hard step.  Thermal throttling, a
  co-located tenant, a powercap.
* ``burst`` — with probability ``p`` per window of ``len`` seconds the
  device's *timing* is stretched by factor ``x`` for that window (a
  transient slowdown; speed is multiplied by ``1/x``).
* ``jitter`` — per-window log-normal speed jitter with log-std
  ``sigma`` (window ``w`` seconds, default 1.0): slow wander around the
  nominal speed.

Device names match compute-unit / kernel names; ``*`` is a wildcard
matching any device, exact names win over substring matches which win
over the wildcard (the :class:`~repro.platform.faults.FaultSpec` rules).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.util.rng import RngStream, sibling_generators
from repro.util.validation import check_nonnegative, check_probability

__all__ = [
    "DeviceDrift",
    "DriftSpec",
    "DriftModel",
    "parse_drift_spec",
    "STEADY",
]


@dataclass(frozen=True)
class DeviceDrift:
    """The drift profile of one device (all knobs default to 'steady').

    ``throttle_floor`` is the asymptotic speed fraction after the
    throttle at ``throttle_t0_s`` (None = no throttle); ``burst_factor``
    stretches timings (speed x ``1/factor``) in affected windows;
    ``jitter_sigma`` is per-window log-normal speed jitter.
    """

    throttle_t0_s: float | None = None
    throttle_tau_s: float = 0.0
    throttle_floor: float = 0.5
    burst_prob: float = 0.0
    burst_factor: float = 2.0
    burst_len_s: float = 1.0
    jitter_sigma: float = 0.0
    jitter_window_s: float = 1.0

    def __post_init__(self) -> None:
        if self.throttle_t0_s is not None:
            check_nonnegative("throttle_t0_s", self.throttle_t0_s)
        check_nonnegative("throttle_tau_s", self.throttle_tau_s)
        if not 0.0 < self.throttle_floor <= 1.0:
            raise ValueError(
                f"throttle floor must be in (0, 1], got {self.throttle_floor}"
            )
        check_probability("burst_prob", self.burst_prob)
        if self.burst_factor < 1.0:
            raise ValueError(
                f"burst factor must be >= 1, got {self.burst_factor}"
            )
        if self.burst_len_s <= 0.0:
            raise ValueError(
                f"burst window must be > 0 s, got {self.burst_len_s}"
            )
        check_nonnegative("jitter_sigma", self.jitter_sigma)
        if self.jitter_window_s <= 0.0:
            raise ValueError(
                f"jitter window must be > 0 s, got {self.jitter_window_s}"
            )

    @property
    def inert(self) -> bool:
        """True when the device's speed never departs from nominal."""
        return (
            self.throttle_t0_s is None
            and self.burst_prob == 0.0
            and self.jitter_sigma == 0.0
        )

    @property
    def stochastic(self) -> bool:
        """True when a multiplier query needs an RNG draw."""
        return self.burst_prob > 0.0 or self.jitter_sigma > 0.0

    def throttle_envelope(self, t_s: float) -> float:
        """The deterministic throttle speed fraction at ``t_s``."""
        t0 = self.throttle_t0_s
        if t0 is None or t_s < t0:
            return 1.0
        floor = self.throttle_floor
        tau = self.throttle_tau_s
        if tau == 0.0:
            return floor
        return floor + (1.0 - floor) * math.exp(-(t_s - t0) / tau)


#: Shared steady profile (the fast path returns it without hashing).
STEADY = DeviceDrift()


@dataclass(frozen=True)
class DriftSpec:
    """An ordered rule table ``(device_pattern, DeviceDrift)``.

    Lookup precedence mirrors :class:`repro.platform.faults.FaultSpec`:
    exact name, then substring (kernel names embed their device), then
    the ``*`` wildcard — first match wins within each tier.
    """

    rules: tuple[tuple[str, DeviceDrift], ...] = ()

    def for_device(self, device: str) -> DeviceDrift:
        """The drift profile of one device (STEADY when unmatched)."""
        device = str(device)
        wildcard: DeviceDrift | None = None
        substring: DeviceDrift | None = None
        for pattern, drift in self.rules:
            if pattern == device:
                return drift
            if pattern == "*":
                if wildcard is None:
                    wildcard = drift
            elif pattern in device and substring is None:
                substring = drift
        if substring is not None:
            return substring
        return wildcard if wildcard is not None else STEADY

    @property
    def inert(self) -> bool:
        """True when no rule can ever move a device off nominal speed."""
        return all(drift.inert for _, drift in self.rules)


def _parse_params(kind: str, text: str, clause: str) -> dict[str, float]:
    params: dict[str, float] = {}
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        if not sep:
            raise ValueError(
                f"bad drift parameter {item!r} in clause {clause!r} "
                f"(expected key=value)"
            )
        try:
            params[key.strip()] = float(value)
        except ValueError:
            raise ValueError(
                f"bad drift parameter value {value!r} in clause {clause!r}"
            ) from None
    allowed = {
        "throttle": {"t0", "tau", "floor"},
        "burst": {"p", "x", "len"},
        "jitter": {"sigma", "w"},
    }[kind]
    unknown = set(params) - allowed
    if unknown:
        raise ValueError(
            f"unknown parameter(s) {sorted(unknown)} for {kind!r} "
            f"in clause {clause!r} (allowed: {sorted(allowed)})"
        )
    return params


def parse_drift_spec(text: str) -> DriftSpec:
    """Parse the drift clause grammar into a :class:`DriftSpec`.

    ``clause (';' clause)*`` where each clause is
    ``throttle:<device>:t0=T[,tau=S][,floor=F]`` |
    ``burst:<device>:p=P[,x=F][,len=L]`` |
    ``jitter:<device>:sigma=S[,w=W]``.  Clauses naming the same device
    merge into one :class:`DeviceDrift`; an empty string yields an
    empty (inert) spec.
    """
    merged: dict[str, DeviceDrift] = {}
    order: list[str] = []
    for raw in text.split(";"):
        clause = raw.strip()
        if not clause:
            continue
        parts = clause.split(":", 2)
        if len(parts) != 3:
            raise ValueError(
                f"bad drift clause {clause!r} (expected kind:device:params)"
            )
        kind, device, params_text = (p.strip() for p in parts)
        if kind not in ("throttle", "burst", "jitter"):
            raise ValueError(
                f"unknown drift kind {kind!r} in clause {clause!r} "
                f"(expected throttle, burst or jitter)"
            )
        if not device:
            raise ValueError(f"empty device in clause {clause!r}")
        params = _parse_params(kind, params_text, clause)
        current = merged.get(device, STEADY)
        if kind == "throttle":
            if "t0" not in params:
                raise ValueError(f"clause {clause!r} needs t0=<seconds>")
            current = DeviceDrift(
                throttle_t0_s=params["t0"],
                throttle_tau_s=params.get("tau", 0.0),
                throttle_floor=params.get("floor", 0.5),
                burst_prob=current.burst_prob,
                burst_factor=current.burst_factor,
                burst_len_s=current.burst_len_s,
                jitter_sigma=current.jitter_sigma,
                jitter_window_s=current.jitter_window_s,
            )
        elif kind == "burst":
            if "p" not in params:
                raise ValueError(f"clause {clause!r} needs p=<probability>")
            current = DeviceDrift(
                throttle_t0_s=current.throttle_t0_s,
                throttle_tau_s=current.throttle_tau_s,
                throttle_floor=current.throttle_floor,
                burst_prob=params["p"],
                burst_factor=params.get("x", current.burst_factor),
                burst_len_s=params.get("len", current.burst_len_s),
                jitter_sigma=current.jitter_sigma,
                jitter_window_s=current.jitter_window_s,
            )
        else:  # jitter
            if "sigma" not in params:
                raise ValueError(f"clause {clause!r} needs sigma=<log-std>")
            current = DeviceDrift(
                throttle_t0_s=current.throttle_t0_s,
                throttle_tau_s=current.throttle_tau_s,
                throttle_floor=current.throttle_floor,
                burst_prob=current.burst_prob,
                burst_factor=current.burst_factor,
                burst_len_s=current.burst_len_s,
                jitter_sigma=params["sigma"],
                jitter_window_s=params.get("w", current.jitter_window_s),
            )
        if device not in merged:
            order.append(device)
        merged[device] = current
    return DriftSpec(rules=tuple((d, merged[d]) for d in order))


@dataclass(frozen=True)
class DriftModel:
    """Seeded, deterministic time-varying device speed for one experiment.

    The model owns an :class:`RngStream` (conventionally
    ``RngStream(seed).child("drift")``, disjoint from the noise model's
    ``"bench"`` and the fault plan's ``"faults"`` streams) and a
    :class:`DriftSpec`.  Every multiplier is a pure function of
    ``(seed, device, time window)`` — querying twice, in any order,
    scalar or batched, yields identical values.

    The *speed* multiplier combines, in pinned order, the deterministic
    throttle envelope, the burst factor of the burst window containing
    ``t``, and the jitter factor of the jitter window containing ``t``.
    The *time* multiplier is its reciprocal — what simulated kernel
    timings are stretched by.
    """

    rng: RngStream
    spec: DriftSpec

    @classmethod
    def from_spec(
        cls,
        spec: DriftSpec | str,
        seed: int,
        stream: str = "drift",
    ) -> "DriftModel":
        """Build a model from a spec (or spec text) and a base seed."""
        if isinstance(spec, str):
            spec = parse_drift_spec(spec)
        return cls(rng=RngStream(seed).child(stream), spec=spec)

    @property
    def inert(self) -> bool:
        """True when every device always runs at nominal speed."""
        return self.spec.inert

    # ------------------------------------------------------------- scalar
    def speed_multiplier(self, device: str, t_s: float) -> float:
        """The speed multiplier of one device at one simulated time."""
        check_nonnegative("t_s", t_s)
        drift = self.spec.for_device(device)
        if drift.inert:
            return 1.0
        value = drift.throttle_envelope(t_s)
        if drift.burst_prob > 0.0:
            window = math.floor(t_s / drift.burst_len_s)
            draw = (
                self.rng.child(str(device)).child("burst").child(f"w{window}")
            ).uniform()
            if draw < drift.burst_prob:
                value = value * (1.0 / drift.burst_factor)
        if drift.jitter_sigma > 0.0:
            window = math.floor(t_s / drift.jitter_window_s)
            stream = (
                self.rng.child(str(device)).child("jitter").child(f"w{window}")
            )
            value = value * stream.lognormal_factor(drift.jitter_sigma)
        return value

    def time_multiplier(self, device: str, t_s: float) -> float:
        """The timing stretch of one device at ``t_s`` (1 / speed)."""
        return 1.0 / self.speed_multiplier(device, t_s)

    # -------------------------------------------------------------- batch
    def speed_multipliers(
        self, devices: Sequence[str], t_s: float
    ) -> np.ndarray:
        """Speed multipliers of MANY devices at one time, in one call.

        Bit-identical to ``[self.speed_multiplier(d, t_s) for d in
        devices]``: the draws come from the same named streams the
        scalar path would construct (hashed via
        :func:`repro.util.rng.sibling_generators`), and the throttle /
        burst / jitter factors compose in the same pinned order.
        """
        check_nonnegative("t_s", t_s)
        names = [str(d) for d in devices]
        values = np.ones(len(names))
        if self.inert:
            return values
        profiles = [self.spec.for_device(d) for d in names]
        for i, drift in enumerate(profiles):
            if not drift.inert:
                values[i] = drift.throttle_envelope(t_s)
        prefix = self.rng.path
        burst_idx = [i for i, d in enumerate(profiles) if d.burst_prob > 0.0]
        if burst_idx:
            leaves = [
                (
                    names[i],
                    "burst",
                    f"w{math.floor(t_s / profiles[i].burst_len_s)}",
                )
                for i in burst_idx
            ]
            gens = sibling_generators(self.rng.seed, prefix, leaves)
            for i, gen in zip(burst_idx, gens):
                if float(gen.uniform(0.0, 1.0)) < profiles[i].burst_prob:
                    values[i] = values[i] * (1.0 / profiles[i].burst_factor)
        jitter_idx = [
            i for i, d in enumerate(profiles) if d.jitter_sigma > 0.0
        ]
        if jitter_idx:
            leaves = [
                (
                    names[i],
                    "jitter",
                    f"w{math.floor(t_s / profiles[i].jitter_window_s)}",
                )
                for i in jitter_idx
            ]
            gens = sibling_generators(self.rng.seed, prefix, leaves)
            for i, gen in zip(jitter_idx, gens):
                factor = float(
                    np.exp(gen.normal(0.0, profiles[i].jitter_sigma))
                )
                values[i] = values[i] * factor
        return values

    def time_multipliers(
        self, devices: Sequence[str], t_s: float
    ) -> np.ndarray:
        """Timing stretches of many devices at one time (1 / speed)."""
        return 1.0 / self.speed_multipliers(devices, t_s)
