"""Preset platform configurations.

:func:`ig_icl_node` reproduces the paper's experimental platform
(``ig.icl.utk.edu``, Table I): four six-core AMD Opteron 8439SE sockets with
16 GB each, accelerated by a GeForce GTX680 and a Tesla C870.  The
calibration constants are chosen so the simulated speed functions land on
the paper's own reported relationships:

* socket plateau ``s6 ~ 105`` GFlops single precision at b = 640 (Fig. 2,
  and consistent with Table II: 24 cores finishing the 40x40-block product
  in ~100 s);
* GTX680 combined speed ~9x a socket while ``C`` is device-resident
  (capacity ~1150 blocks, the "memory limit" line in Fig. 3), decaying to
  ~6x..4x for 50x50..70x70-block totals (Table III discussion);
* kernel version 2 doubles version 1 in the resident range; version 3
  gains ~30% over version 2 past the limit on the two-DMA GTX680 and less
  on the single-DMA C870 (Fig. 3 / Fig. 4);
* Tesla C870 ~2x a socket inside its ~718-block capacity (Table III,
  40x40 row), ~1.6x at the 70x70 allocation;
* GPU speed drops 7-15% under CPU contention, CPU cores barely affected
  (Fig. 5).
"""

from __future__ import annotations

from repro.platform.spec import (
    CpuSpec,
    GpuAttachment,
    GpuSpec,
    NodeSpec,
    SocketSpec,
)
from repro.util.units import DEFAULT_BLOCKING_FACTOR

#: Calibrated solo-core sustained SGEMM rate of the Opteron 8439SE (GFlops).
_OPTERON_CORE_GFLOPS = 21.0


def opteron_8439se() -> CpuSpec:
    """The node's CPU: six-core AMD Opteron 8439SE at 2.8 GHz."""
    return CpuSpec(
        name="AMD Opteron 8439SE",
        clock_ghz=2.8,
        peak_gflops=_OPTERON_CORE_GFLOPS,
        ramp_depth=0.35,
        ramp_blocks=8.0,
        mem_pressure_blocks=120.0,
        mem_pressure_slope=0.0004,
    )


def geforce_gtx680() -> GpuSpec:
    """GeForce GTX680: 2 GB, two DMA engines (concurrent bidirectional copies)."""
    return GpuSpec(
        name="GeForce GTX680",
        clock_mhz=1006.0,
        cuda_cores=1536,
        memory_mb=2048.0,
        mem_bandwidth_gbs=192.3,
        peak_gflops=1050.0,
        rate_half_blocks=60.0,
        reserved_mb=53.0,
        pcie_contig_gbs=6.4,
        pcie_pitched_pinned_gbs=6.4,
        pcie_pageable_gbs=1.9,
        pageable_decay_power=0.5,
        dma_engines=2,
        concurrent_copy_slowdown=0.9,
    )


def tesla_c870() -> GpuSpec:
    """Tesla C870: 1.5 GB, a single DMA engine (one copy direction at a time)."""
    return GpuSpec(
        name="Tesla C870",
        clock_mhz=600.0,
        cuda_cores=128,
        memory_mb=1536.0,
        mem_bandwidth_gbs=76.8,
        peak_gflops=245.0,
        rate_half_blocks=40.0,
        reserved_mb=268.0,
        pcie_contig_gbs=3.0,
        pcie_pitched_pinned_gbs=3.0,
        pcie_pageable_gbs=1.0,
        pageable_decay_power=0.5,
        dma_engines=1,
        concurrent_copy_slowdown=0.9,
    )


def ig_icl_node(block_size: int = DEFAULT_BLOCKING_FACTOR) -> NodeSpec:
    """The paper's hybrid node (Table I), with GPUs on sockets 0 and 1.

    The paper binds process 0 (Tesla C870's dedicated core) and process 6
    (GTX680's) on different sockets; we attach the C870 to socket 0 and the
    GTX680 to socket 1, leaving sockets 2 and 3 CPU-only.
    """
    socket = SocketSpec(
        cpu=opteron_8439se(),
        cores=6,
        memory_gb=16.0,
        contention_alpha=0.04,
    )
    return NodeSpec(
        name="ig.icl.utk.edu",
        socket=socket,
        num_sockets=4,
        gpus=(
            GpuAttachment(gpu=tesla_c870(), socket_index=0),
            GpuAttachment(gpu=geforce_gtx680(), socket_index=1),
        ),
        gpu_interference_drop=0.11,
        cpu_interference_drop=0.015,
        block_size=block_size,
    )


def cpu_only_node(
    num_sockets: int = 4, block_size: int = DEFAULT_BLOCKING_FACTOR
) -> NodeSpec:
    """The same node without accelerators (baseline configurations)."""
    socket = SocketSpec(
        cpu=opteron_8439se(),
        cores=6,
        memory_gb=16.0,
        contention_alpha=0.04,
    )
    return NodeSpec(
        name="ig.icl.utk.edu-cpu",
        socket=socket,
        num_sockets=num_sockets,
        gpus=(),
        block_size=block_size,
    )
