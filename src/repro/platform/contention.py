"""Shared-resource contention models.

Two distinct effects from the paper:

* **Intra-socket CPU contention** (Section III / Fig. 2): cores of one socket
  compete for shared cache and memory bandwidth, so socket speed grows
  sub-linearly with the number of active cores.  The paper measures cores in
  a *group* for exactly this reason.
* **CPU <-> GPU interference** (Section V / Fig. 5): when the CPU kernel and
  the GPU kernel run simultaneously on one socket, the GPU (i.e. the
  combined GPU + dedicated-core process) slows by 7–15% while the CPU cores
  are barely affected, because the GPU computes out of its own memory and
  only its host-side transfers compete for socket resources.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_nonnegative, check_positive_int


@dataclass(frozen=True)
class SocketContention:
    """Per-core efficiency when ``c`` cores run the kernel simultaneously.

    ``efficiency(c) = 1 / (1 + alpha * (c - 1))``; the socket's aggregate
    speed is then ``c * efficiency(c) * solo_core_speed`` — increasing in
    ``c`` but with diminishing returns, matching the paper's observation
    that socket performance "does not increase linearly with the number of
    active cores".
    """

    alpha: float = 0.04

    def __post_init__(self) -> None:
        check_nonnegative("alpha", self.alpha)

    def efficiency(self, active_cores: int) -> float:
        """Per-core speed multiplier for ``active_cores`` concurrent kernels."""
        check_positive_int("active_cores", active_cores)
        return 1.0 / (1.0 + self.alpha * (active_cores - 1))

    def socket_scaling(self, active_cores: int) -> float:
        """Socket aggregate speed relative to one solo core."""
        return active_cores * self.efficiency(active_cores)


@dataclass(frozen=True)
class CpuGpuInterference:
    """Mutual slowdown of co-located CPU and GPU kernels on one socket.

    Multipliers are applied to *time* (so a drop of 0.11 makes the GPU take
    ``1 / (1 - 0.11)`` times longer).  The GPU drop scales with how many CPU
    cores are actually busy (an idle socket does not interfere), saturating
    at the configured maximum, which reproduces the paper's 7–15% range
    across workload splits.
    """

    gpu_drop_max: float = 0.11
    cpu_drop: float = 0.015

    def __post_init__(self) -> None:
        check_nonnegative("gpu_drop_max", self.gpu_drop_max)
        check_nonnegative("cpu_drop", self.cpu_drop)
        if self.gpu_drop_max >= 1 or self.cpu_drop >= 1:
            raise ValueError("interference drops are fractions < 1")

    def gpu_speed_factor(self, busy_cpu_cores: int, socket_cores: int) -> float:
        """Speed multiplier (<= 1) for the GPU process.

        ``busy_cpu_cores`` counts cores running the *CPU* kernel on the
        GPU's socket (the dedicated core itself is not a competitor).
        """
        if busy_cpu_cores < 0:
            raise ValueError("busy_cpu_cores must be >= 0")
        check_positive_int("socket_cores", socket_cores)
        if busy_cpu_cores == 0:
            return 1.0
        share = min(1.0, busy_cpu_cores / max(1, socket_cores - 1))
        return 1.0 - self.gpu_drop_max * share

    def cpu_speed_factor(self, gpu_active: bool) -> float:
        """Speed multiplier (<= 1) for CPU cores sharing with a busy GPU."""
        return 1.0 - self.cpu_drop if gpu_active else 1.0
