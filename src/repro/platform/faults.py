"""Deterministic fault injection for the simulated platform.

Real heterogeneous clusters do not merely run slow — they fail: a kernel
invocation returns an error code, a timing spikes by an order of
magnitude, a device disappears mid-run.  This module makes those events
first-class, *seeded* phenomena so the fault-tolerance machinery above
(measurement retries, degraded-mode repartitioning) can be tested with
bit-reproducible fault sequences.

Design mirrors :class:`repro.platform.noise.NoiseModel`: every draw comes
from a named BLAKE2-derived RNG stream keyed by ``(seed, device,
context...)``, so the same ``(seed, device, stream)`` triple always yields
the same fault sequence regardless of code-path order, and a batched query
(:meth:`FaultPlan.kernel_outcomes_batch`) is bit-identical to the scalar
one.  Retry attempts get their own stream leaf (``a0``, ``a1``, ...), so a
repetition that failed on the first attempt can deterministically succeed
on the second — without that, retrying would be pointless.

Fault specs are written in a tiny clause grammar (the CLI's ``--faults``)::

    fail:GeForce GTX680:p=0.05,code=13; spike:*:p=0.01,x=8; drop:Tesla C870:t=1.5

* ``fail`` — the invocation raises :class:`KernelFaultError` with
  probability ``p`` (optional error ``code``).
* ``spike`` — the timing is stretched by factor ``x`` with probability
  ``p`` (a transient hiccup, not an error).
* ``drop`` — the device leaves the machine at simulated time ``t``
  seconds (consumed by :mod:`repro.runtime.recovery`).

Device names match compute-unit / kernel names; ``*`` is a wildcard
matching any device (exact rules win).  Drops must name a concrete device.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import RngStream, sibling_generators
from repro.util.validation import check_nonnegative, check_probability


class KernelFaultError(RuntimeError):
    """An injected kernel-invocation failure (transient; retryable)."""

    def __init__(self, device: str, code: int, context: tuple = ()):
        self.device = device
        self.code = code
        self.context = tuple(str(part) for part in context)
        where = "/".join(self.context) or "<unnamed>"
        super().__init__(
            f"injected kernel failure on {device} (error code {code}) at {where}"
        )

    def __reduce__(self):
        # the default exception reduce replays only the message, which does
        # not match this __init__'s signature — a worker raising this across
        # a process pool would break the pool on unpickling
        return (KernelFaultError, (self.device, self.code, self.context))


@dataclass(frozen=True)
class DeviceFaults:
    """The fault profile of one device (all knobs default to 'healthy')."""

    fail_prob: float = 0.0
    error_code: int = 77
    spike_prob: float = 0.0
    spike_factor: float = 8.0
    drop_time_s: float | None = None

    def __post_init__(self) -> None:
        check_probability("fail_prob", self.fail_prob)
        check_probability("spike_prob", self.spike_prob)
        if self.spike_factor < 1.0:
            raise ValueError(
                f"spike_factor must be >= 1, got {self.spike_factor}"
            )
        if self.drop_time_s is not None:
            check_nonnegative("drop_time_s", self.drop_time_s)

    @property
    def inert(self) -> bool:
        """True when no per-invocation draw is ever needed."""
        return self.fail_prob == 0.0 and self.spike_prob == 0.0


#: Shared healthy profile (the fast path returns it without hashing).
HEALTHY = DeviceFaults()


@dataclass(frozen=True)
class DeviceDrop:
    """One hard device failure at an absolute simulated time."""

    time_s: float
    device: str

    def __post_init__(self) -> None:
        check_nonnegative("time_s", self.time_s)
        if not self.device or self.device == "*":
            raise ValueError("a drop must name a concrete device")


@dataclass(frozen=True)
class KernelOutcome:
    """What the fault plan decided for one kernel invocation."""

    failed: bool = False
    error_code: int = 0
    spike_factor: float = 1.0

    @property
    def clean(self) -> bool:
        return not self.failed and self.spike_factor == 1.0


_OK = KernelOutcome()


@dataclass(frozen=True)
class FaultSpec:
    """An ordered rule table ``(device_pattern, DeviceFaults)``.

    Lookup precedence: exact name, then substring (kernel names embed
    their device, e.g. ``gpu-gemm-v3[node.Tesla C870]``, so
    ``fail:Tesla C870:p=0.1`` targets that GPU's kernels), then the ``*``
    wildcard — first match wins within each tier, so ``fail:*:p=1;
    fail:gpu0:p=0`` exempts ``gpu0``.
    """

    rules: tuple[tuple[str, DeviceFaults], ...] = ()

    def for_device(self, device: str) -> DeviceFaults:
        """The fault profile of one device (HEALTHY when unmatched)."""
        device = str(device)
        wildcard: DeviceFaults | None = None
        substring: DeviceFaults | None = None
        for pattern, faults in self.rules:
            if pattern == device:
                return faults
            if pattern == "*":
                if wildcard is None:
                    wildcard = faults
            elif pattern in device and substring is None:
                substring = faults
        if substring is not None:
            return substring
        return wildcard if wildcard is not None else HEALTHY

    def drops(self) -> tuple[DeviceDrop, ...]:
        """Every configured device drop, ordered by (time, device)."""
        found = [
            DeviceDrop(time_s=faults.drop_time_s, device=pattern)
            for pattern, faults in self.rules
            if faults.drop_time_s is not None
        ]
        return tuple(sorted(found, key=lambda d: (d.time_s, d.device)))

    @property
    def inert(self) -> bool:
        """True when no rule can ever perturb a kernel invocation."""
        return all(faults.inert for _, faults in self.rules)


def _parse_params(kind: str, text: str, clause: str) -> dict[str, float]:
    params: dict[str, float] = {}
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        if not sep:
            raise ValueError(
                f"bad fault parameter {item!r} in clause {clause!r} "
                f"(expected key=value)"
            )
        try:
            params[key.strip()] = float(value)
        except ValueError:
            raise ValueError(
                f"bad fault parameter value {value!r} in clause {clause!r}"
            ) from None
    allowed = {"fail": {"p", "code"}, "spike": {"p", "x"}, "drop": {"t"}}[kind]
    unknown = set(params) - allowed
    if unknown:
        raise ValueError(
            f"unknown parameter(s) {sorted(unknown)} for {kind!r} "
            f"in clause {clause!r} (allowed: {sorted(allowed)})"
        )
    return params


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse the ``--faults`` clause grammar into a :class:`FaultSpec`.

    ``clause (';' clause)*`` where each clause is
    ``fail:<device>:p=P[,code=C]`` | ``spike:<device>:p=P[,x=F]`` |
    ``drop:<device>:t=T``.  Clauses naming the same device merge into one
    :class:`DeviceFaults`; an empty string yields an empty (inert) spec.
    """
    merged: dict[str, DeviceFaults] = {}
    order: list[str] = []
    for raw in text.split(";"):
        clause = raw.strip()
        if not clause:
            continue
        parts = clause.split(":", 2)
        if len(parts) != 3:
            raise ValueError(
                f"bad fault clause {clause!r} (expected kind:device:params)"
            )
        kind, device, params_text = (p.strip() for p in parts)
        if kind not in ("fail", "spike", "drop"):
            raise ValueError(
                f"unknown fault kind {kind!r} in clause {clause!r} "
                f"(expected fail, spike or drop)"
            )
        if not device:
            raise ValueError(f"empty device in clause {clause!r}")
        params = _parse_params(kind, params_text, clause)
        current = merged.get(device, HEALTHY)
        if kind == "fail":
            if "p" not in params:
                raise ValueError(f"clause {clause!r} needs p=<probability>")
            current = DeviceFaults(
                fail_prob=params["p"],
                error_code=int(params.get("code", current.error_code)),
                spike_prob=current.spike_prob,
                spike_factor=current.spike_factor,
                drop_time_s=current.drop_time_s,
            )
        elif kind == "spike":
            if "p" not in params:
                raise ValueError(f"clause {clause!r} needs p=<probability>")
            current = DeviceFaults(
                fail_prob=current.fail_prob,
                error_code=current.error_code,
                spike_prob=params["p"],
                spike_factor=params.get("x", current.spike_factor),
                drop_time_s=current.drop_time_s,
            )
        else:  # drop
            if device == "*":
                raise ValueError(
                    f"drop clauses must name a concrete device, got {clause!r}"
                )
            if "t" not in params:
                raise ValueError(f"clause {clause!r} needs t=<seconds>")
            current = DeviceFaults(
                fail_prob=current.fail_prob,
                error_code=current.error_code,
                spike_prob=current.spike_prob,
                spike_factor=current.spike_factor,
                drop_time_s=params["t"],
            )
        if device not in merged:
            order.append(device)
        merged[device] = current
    return FaultSpec(rules=tuple((d, merged[d]) for d in order))


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for injected kernel failures.

    ``backoff_s(attempt)`` is the simulated wait charged before retry
    number ``attempt`` (1-based): ``base * factor**(attempt - 1)``.
    """

    max_retries: int = 3
    backoff_base_s: float = 0.002
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        check_nonnegative("backoff_base_s", self.backoff_base_s)
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def backoff_s(self, attempt: int) -> float:
        """Seconds waited before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return self.backoff_base_s * self.backoff_factor ** (attempt - 1)


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, deterministic fault decisions for one experiment.

    The plan owns an :class:`RngStream` (conventionally
    ``RngStream(seed).child("faults")``, disjoint from the noise model's
    ``"bench"`` stream) and a :class:`FaultSpec`.  Every outcome is a pure
    function of ``(seed, device, context)`` — querying twice, in any
    order, scalar or batched, yields identical decisions.
    """

    rng: RngStream
    spec: FaultSpec

    @classmethod
    def from_spec(
        cls,
        spec: FaultSpec | str,
        seed: int,
        stream: str = "faults",
    ) -> "FaultPlan":
        """Build a plan from a spec (or spec text) and a base seed."""
        if isinstance(spec, str):
            spec = parse_fault_spec(spec)
        return cls(rng=RngStream(seed).child(stream), spec=spec)

    @property
    def inert(self) -> bool:
        """True when kernel invocations can never be perturbed."""
        return self.spec.inert

    def kernel_outcome(self, device: str, *context: object) -> KernelOutcome:
        """The fault decision for ONE kernel invocation.

        ``context`` names the invocation (size, contention, repetition,
        attempt, ...) exactly like :meth:`NoiseModel.perturb`; the same
        context always yields the same decision.
        """
        faults = self.spec.for_device(device)
        if faults.inert:
            return _OK
        stream = self.rng.child(str(device))
        for part in context:
            stream = stream.child(str(part))
        if faults.fail_prob > 0.0:
            if stream.child("fail").uniform() < faults.fail_prob:
                return KernelOutcome(failed=True, error_code=faults.error_code)
        if faults.spike_prob > 0.0:
            if stream.child("spike").uniform() < faults.spike_prob:
                return KernelOutcome(spike_factor=faults.spike_factor)
        return _OK

    def kernel_outcomes_batch(
        self,
        device: str,
        context: tuple,
        rep_keys: list,
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Fault decisions for many repetitions of one invocation context.

        Returns ``(failed_mask, spike_factors, error_code)``; entry ``i``
        is bit-identical to ``kernel_outcome(device, *context,
        *rep_keys[i])`` (rep keys may be tuples of trailing path
        components, e.g. ``("r3", "a0")``).  The shared path prefix is
        hashed once, exactly like :meth:`NoiseModel.perturb_batch`.
        """
        n = len(rep_keys)
        failed = np.zeros(n, dtype=bool)
        factors = np.ones(n, dtype=np.float64)
        faults = self.spec.for_device(device)
        if faults.inert:
            return failed, factors, faults.error_code
        keys = [key if isinstance(key, tuple) else (key,) for key in rep_keys]
        prefix = (*self.rng.path, str(device), *context)
        if faults.fail_prob > 0.0:
            gens = sibling_generators(
                self.rng.seed, prefix, [(*key, "fail") for key in keys]
            )
            draws = np.array([g.uniform(0.0, 1.0) for g in gens])
            failed = draws < faults.fail_prob
        if faults.spike_prob > 0.0:
            gens = sibling_generators(
                self.rng.seed, prefix, [(*key, "spike") for key in keys]
            )
            draws = np.array([g.uniform(0.0, 1.0) for g in gens])
            factors = np.where(
                ~failed & (draws < faults.spike_prob),
                faults.spike_factor,
                1.0,
            )
        return failed, factors, faults.error_code

    def device_drops(self) -> tuple[DeviceDrop, ...]:
        """The configured hard device failures, ordered by (time, device)."""
        return self.spec.drops()
