"""Hardware specification dataclasses (the simulator's "Table I").

Specs are pure data: names, counts, capacities and calibration parameters.
Behaviour (time prediction) lives in :mod:`repro.platform.device` and its
helper models.  Separating the two lets tests and examples define synthetic
platforms without touching the performance models.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import DEFAULT_BLOCKING_FACTOR
from repro.util.validation import (
    check_nonnegative,
    check_positive,
    check_positive_int,
)


@dataclass(frozen=True)
class CpuSpec:
    """One CPU core's calibration parameters for the GEMM kernel.

    Attributes
    ----------
    name:
        Marketing name (e.g. ``"AMD Opteron 8439SE"``).
    clock_ghz:
        Core clock; informational only (speed comes from ``peak_gflops``).
    peak_gflops:
        Sustained single-core single-precision GEMM rate at large sizes,
        with no sharing (one active core on the socket).
    ramp_depth, ramp_blocks:
        Small-size efficiency ramp: a kernel on a per-core area of ``a``
        blocks runs at ``peak * (1 - ramp_depth * exp(-a / ramp_blocks))``.
        Models loop / cache warm-up overheads dominating tiny problems.
    mem_pressure_blocks, mem_pressure_slope:
        Beyond ``mem_pressure_blocks`` per core, speed decays mildly as
        ``1 / (1 + slope * (a - threshold))`` — the gentle droop visible at
        the right of the paper's Fig. 2.
    gemm_halfpoint_elems:
        GEMM rate dependence on the blocking factor ``b`` (the kernel's
        inner dimension): rate scales with ``b / (b + halfpoint)``,
        normalised to 1.0 at the paper's b = 640.  Drives the Section V
        discussion that "with a larger b, all processing elements perform
        better".
    """

    name: str
    clock_ghz: float
    peak_gflops: float
    ramp_depth: float = 0.35
    ramp_blocks: float = 8.0
    mem_pressure_blocks: float = 120.0
    mem_pressure_slope: float = 0.0004
    gemm_halfpoint_elems: float = 40.0

    def __post_init__(self) -> None:
        check_positive("clock_ghz", self.clock_ghz)
        check_positive("peak_gflops", self.peak_gflops)
        check_nonnegative("ramp_depth", self.ramp_depth)
        if self.ramp_depth >= 1.0:
            raise ValueError("ramp_depth must be < 1 (speed must stay positive)")
        check_positive("ramp_blocks", self.ramp_blocks)
        check_nonnegative("mem_pressure_blocks", self.mem_pressure_blocks)
        check_nonnegative("mem_pressure_slope", self.mem_pressure_slope)
        check_nonnegative("gemm_halfpoint_elems", self.gemm_halfpoint_elems)


@dataclass(frozen=True)
class SocketSpec:
    """A multicore socket: identical cores sharing memory bandwidth.

    ``contention_alpha`` parameterises the per-core slowdown when ``c`` cores
    run the kernel simultaneously: each runs at ``1 / (1 + alpha * (c - 1))``
    of its solo speed (see :class:`repro.platform.contention.SocketContention`).
    """

    cpu: CpuSpec
    cores: int
    memory_gb: float
    contention_alpha: float = 0.04
    #: Aggregate socket memory bandwidth (DDR2-800 dual channel for the
    #: paper's Opterons) — the wall memory-bound kernels hit.
    mem_bandwidth_gbs: float = 12.8

    def __post_init__(self) -> None:
        check_positive_int("cores", self.cores)
        check_positive("memory_gb", self.memory_gb)
        check_nonnegative("contention_alpha", self.contention_alpha)
        check_positive("mem_bandwidth_gbs", self.mem_bandwidth_gbs)


@dataclass(frozen=True)
class GpuSpec:
    """A GPU accelerator and its host link.

    Attributes
    ----------
    peak_gflops:
        Asymptotic on-device GEMM rate.
    rate_half_blocks:
        Size at which the kernel reaches half of peak:
        ``rate(a) = peak * a / (a + rate_half_blocks)`` — GPUs are strongly
        under-utilised on small matrices.
    memory_mb / reserved_mb:
        Device memory and the part unavailable to kernel buffers (runtime,
        context, alignment slack).
    pcie_contig_gbs:
        Effective bandwidth of contiguous (pinned) host<->device transfers —
        used for pivot rows/columns.
    pcie_pitched_pinned_gbs:
        Bandwidth of 2D pitched C-rectangle transfers while the whole walked
        submatrix fits the pinned staging area (sized like device memory).
    pcie_pageable_gbs:
        Bandwidth of pitched transfers once the host footprint exceeds the
        staging area and the runtime falls back to pageable copies — the
        classic cudaMemcpy2D-from-pageable-memory cliff.  It decays mildly
        with footprint: ``bw = pageable / (footprint / staging) ** power``.
    pageable_decay_power:
        Exponent of that mild decay (0 disables it).
    dma_engines:
        1 (Tesla C870: one copy direction at a time) or 2 (GTX680:
        concurrent bidirectional copies) — drives the overlap gain of GPU
        kernel version 3 (paper Fig. 4b).
    concurrent_copy_slowdown:
        DMA bandwidth multiplier while a kernel is executing (copies and
        compute share the memory controller).
    alignment_unit:
        Tile dimensions should be multiples of this (32 for CUBLAS, see the
        paper's citation of Barrachina et al.); misaligned tiles pay
        ``misalignment_penalty`` on compute.
    gemm_halfpoint_elems:
        GEMM rate dependence on the blocking factor (see
        :class:`CpuSpec.gemm_halfpoint_elems`); GPUs are hungrier for a
        large inner dimension than CPUs.
    """

    name: str
    clock_mhz: float
    cuda_cores: int
    memory_mb: float
    mem_bandwidth_gbs: float
    peak_gflops: float
    rate_half_blocks: float = 60.0
    reserved_mb: float = 160.0
    pcie_contig_gbs: float = 6.4
    pcie_pitched_pinned_gbs: float = 6.4
    pcie_pageable_gbs: float = 1.9
    pcie_latency_s: float = 2.0e-5
    pageable_decay_power: float = 0.5
    dma_engines: int = 2
    concurrent_copy_slowdown: float = 1.0
    alignment_unit: int = 32
    misalignment_penalty: float = 1.15
    gemm_halfpoint_elems: float = 100.0
    #: Rate penalty coefficient for non-square tiles:
    #: ``rate /= 1 + coeff * log2(aspect)^2``.  Small, so nearly square
    #: shapes are equivalent (the paper's Section IV assumption) while
    #: extreme strips lose measurably.
    aspect_penalty: float = 0.02

    def __post_init__(self) -> None:
        check_positive("clock_mhz", self.clock_mhz)
        check_positive_int("cuda_cores", self.cuda_cores)
        check_positive("memory_mb", self.memory_mb)
        check_nonnegative("reserved_mb", self.reserved_mb)
        if self.reserved_mb >= self.memory_mb:
            raise ValueError("reserved_mb must be smaller than memory_mb")
        check_positive("mem_bandwidth_gbs", self.mem_bandwidth_gbs)
        check_positive("peak_gflops", self.peak_gflops)
        check_positive("rate_half_blocks", self.rate_half_blocks)
        check_positive("pcie_contig_gbs", self.pcie_contig_gbs)
        check_positive("pcie_pitched_pinned_gbs", self.pcie_pitched_pinned_gbs)
        check_positive("pcie_pageable_gbs", self.pcie_pageable_gbs)
        if self.pcie_pageable_gbs > self.pcie_pitched_pinned_gbs:
            raise ValueError(
                "pcie_pageable_gbs cannot exceed pcie_pitched_pinned_gbs "
                "(pageable copies are never faster than pinned ones)"
            )
        check_nonnegative("pcie_latency_s", self.pcie_latency_s)
        check_nonnegative("pageable_decay_power", self.pageable_decay_power)
        if self.dma_engines not in (1, 2):
            raise ValueError(f"dma_engines must be 1 or 2, got {self.dma_engines}")
        check_positive("concurrent_copy_slowdown", self.concurrent_copy_slowdown)
        if self.concurrent_copy_slowdown > 1.0:
            raise ValueError("concurrent_copy_slowdown is a multiplier <= 1")
        check_positive_int("alignment_unit", self.alignment_unit)
        check_positive("misalignment_penalty", self.misalignment_penalty)
        check_nonnegative("gemm_halfpoint_elems", self.gemm_halfpoint_elems)
        check_nonnegative("aspect_penalty", self.aspect_penalty)

    @property
    def usable_memory_mb(self) -> float:
        """Device memory available for kernel buffers."""
        return self.memory_mb - self.reserved_mb


@dataclass(frozen=True)
class GpuAttachment:
    """Placement of a GPU on the node: which socket hosts its dedicated core."""

    gpu: GpuSpec
    socket_index: int

    def __post_init__(self) -> None:
        if self.socket_index < 0:
            raise ValueError("socket_index must be >= 0")


@dataclass(frozen=True)
class NodeSpec:
    """A full hybrid node: sockets plus attached GPUs.

    Sockets default to identical copies of ``socket``; a heterogeneous
    machine (mixed CPU generations, different core counts) supplies
    per-index overrides via ``socket_overrides``.

    ``gpu_interference_drop`` is the fractional slowdown of a GPU's combined
    (GPU + dedicated core) speed when CPU kernels run on the same socket —
    the paper measures 7–15% (Fig. 5b).  ``cpu_interference_drop`` is the
    (much smaller) reverse effect on the CPU cores (Fig. 5a).
    """

    name: str
    socket: SocketSpec
    num_sockets: int
    gpus: tuple[GpuAttachment, ...] = ()
    gpu_interference_drop: float = 0.11
    cpu_interference_drop: float = 0.015
    block_size: int = DEFAULT_BLOCKING_FACTOR
    socket_overrides: tuple[tuple[int, SocketSpec], ...] = ()

    def __post_init__(self) -> None:
        check_positive_int("num_sockets", self.num_sockets)
        check_nonnegative("gpu_interference_drop", self.gpu_interference_drop)
        check_nonnegative("cpu_interference_drop", self.cpu_interference_drop)
        if self.gpu_interference_drop >= 1 or self.cpu_interference_drop >= 1:
            raise ValueError("interference drops are fractions < 1")
        check_positive_int("block_size", self.block_size)
        seen_overrides = set()
        for idx, spec in self.socket_overrides:
            if not 0 <= idx < self.num_sockets:
                raise ValueError(
                    f"socket override index {idx} outside the node's "
                    f"{self.num_sockets} sockets"
                )
            if idx in seen_overrides:
                raise ValueError(f"duplicate socket override for index {idx}")
            seen_overrides.add(idx)
            if not isinstance(spec, SocketSpec):
                raise TypeError(
                    f"socket override {idx} must be a SocketSpec, got "
                    f"{type(spec).__name__}"
                )
        for att in self.gpus:
            if att.socket_index >= self.num_sockets:
                raise ValueError(
                    f"GPU {att.gpu.name} attached to socket {att.socket_index} "
                    f"but node has only {self.num_sockets} sockets"
                )
        per_socket = {}
        for att in self.gpus:
            per_socket[att.socket_index] = per_socket.get(att.socket_index, 0) + 1
        for idx, count in per_socket.items():
            cores = self.socket_spec(idx).cores
            if count >= cores:
                raise ValueError(
                    f"socket {idx} hosts {count} GPUs but has only "
                    f"{cores} cores for dedicated host processes"
                )

    def socket_spec(self, index: int) -> SocketSpec:
        """The (possibly overridden) spec of one socket."""
        if not 0 <= index < self.num_sockets:
            raise ValueError(
                f"socket index {index} outside the node's "
                f"{self.num_sockets} sockets"
            )
        for idx, spec in self.socket_overrides:
            if idx == index:
                return spec
        return self.socket

    @property
    def heterogeneous_sockets(self) -> bool:
        """True when any socket differs from the default."""
        return bool(self.socket_overrides)

    @property
    def total_cores(self) -> int:
        """All CPU cores on the node (dedicated ones included)."""
        return sum(
            self.socket_spec(i).cores for i in range(self.num_sockets)
        )

    def cpu_cores_available(self) -> int:
        """Cores left for CPU kernels after dedicating one per GPU."""
        return self.total_cores - len(self.gpus)

    def gpus_on_socket(self, socket_index: int) -> list[GpuAttachment]:
        """GPU attachments hosted by one socket."""
        return [a for a in self.gpus if a.socket_index == socket_index]


# Backwards-friendly alias used in examples/docs: a NodeSpec *is* the hybrid
# node description.
HybridNode = NodeSpec
