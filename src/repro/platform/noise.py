"""Measurement noise for the simulated platform.

Real benchmark timings fluctuate run to run; the paper's measurement
methodology (Section III) explicitly repeats experiments "until the results
are statistically reliable".  To keep that machinery honest, every simulated
timing is multiplied by log-normal noise with median 1.  Noise draws are
keyed by (device, context, repetition) through named RNG streams, so a whole
experiment is reproducible from one seed while distinct repetitions differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.util.rng import RngStream, sibling_generators
from repro.util.validation import check_nonnegative


@dataclass
class NoiseModel:
    """Multiplicative log-normal timing noise, with optional outliers.

    ``sigma`` is the standard deviation of log-time; 0.02 corresponds to
    roughly +/-2% run-to-run variation, typical of a dedicated node.
    ``sigma = 0`` makes the platform fully deterministic (useful in tests).

    ``outlier_prob`` / ``outlier_factor`` inject occasional timing spikes
    (an OS daemon waking up, a page-cache flush): with the given
    probability a measurement is stretched by the factor.  This is the
    failure-injection knob the reliability-protocol tests use — a
    measurement pipeline that trusts single timings breaks under it.
    """

    rng: RngStream
    sigma: float = 0.02
    outlier_prob: float = 0.0
    outlier_factor: float = 10.0

    def __post_init__(self) -> None:
        check_nonnegative("sigma", self.sigma)
        if not 0.0 <= self.outlier_prob <= 1.0:
            raise ValueError(
                f"outlier_prob must be in [0, 1], got {self.outlier_prob}"
            )
        if self.outlier_factor < 1.0:
            raise ValueError(
                f"outlier_factor must be >= 1, got {self.outlier_factor}"
            )

    def perturb(self, seconds: float, *context: object) -> float:
        """Return a noisy version of an ideal timing.

        ``context`` names the measurement (device, size, repetition index,
        ...); the same context always yields the same draw.
        """
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        if seconds == 0.0 or (self.sigma == 0.0 and self.outlier_prob == 0.0):
            return seconds
        stream = self.rng
        for part in context:
            stream = stream.child(str(part))
        value = seconds * stream.lognormal_factor(self.sigma)
        if self.outlier_prob > 0.0:
            if stream.child("outlier").uniform() < self.outlier_prob:
                value *= self.outlier_factor
        return value

    def perturb_batch(
        self,
        seconds: float,
        context: Sequence[object],
        rep_keys: Sequence[object],
    ) -> np.ndarray:
        """Noisy versions of ONE ideal timing for many repetitions at once.

        Bit-identical to ``[self.perturb(seconds, *context, key) for key in
        rep_keys]``: the (device, size, contention) part of the stream path
        is hashed once, and each repetition's draws come from the same named
        child streams the scalar path would construct.
        """
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        n = len(rep_keys)
        if seconds == 0.0 or (self.sigma == 0.0 and self.outlier_prob == 0.0):
            return np.full(n, float(seconds))
        prefix = (*self.rng.path, *context)
        if self.sigma == 0.0:
            # lognormal_factor short-circuits to 1.0 without consuming a draw
            values = np.full(n, seconds * 1.0)
        else:
            gens = sibling_generators(self.rng.seed, prefix, rep_keys)
            # Deliberately NOT vectorised: each repetition draws from its
            # OWN BLAKE2-seeded PCG64 stream (the scalar path's stream
            # tree), and NumPy can only sample many values from one
            # bit-generator — batching the draws would consume different
            # random bits.  Worse, ``Generator.normal`` is ziggurat
            # rejection sampling (a data-dependent number of raw draws),
            # so no closed-form vector expression can reproduce it.
            # Vectorising here would break the batch == scalar
            # bit-identity contract in the docstring, which the
            # hypothesis suite (tests/platform/test_noise_properties.py)
            # locks with outliers enabled; the loop stays.
            normals = np.array([g.normal(0.0, self.sigma) for g in gens])
            values = seconds * np.exp(normals)
        if self.outlier_prob > 0.0:
            outlier_gens = sibling_generators(
                self.rng.seed, prefix, [(key, "outlier") for key in rep_keys]
            )
            # Same constraint as above: per-repetition streams, scalar
            # draws, bit-identity over vector speed.
            draws = np.array([g.uniform(0.0, 1.0) for g in outlier_gens])
            values = np.where(
                draws < self.outlier_prob, values * self.outlier_factor, values
            )
        return values

    def quiet(self) -> "NoiseModel":
        """A zero-noise copy (deterministic timings)."""
        return NoiseModel(rng=self.rng, sigma=0.0)
