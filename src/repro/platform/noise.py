"""Measurement noise for the simulated platform.

Real benchmark timings fluctuate run to run; the paper's measurement
methodology (Section III) explicitly repeats experiments "until the results
are statistically reliable".  To keep that machinery honest, every simulated
timing is multiplied by log-normal noise with median 1.  Noise draws are
keyed by (device, context, repetition) through named RNG streams, so a whole
experiment is reproducible from one seed while distinct repetitions differ.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.rng import RngStream
from repro.util.validation import check_nonnegative


@dataclass
class NoiseModel:
    """Multiplicative log-normal timing noise, with optional outliers.

    ``sigma`` is the standard deviation of log-time; 0.02 corresponds to
    roughly +/-2% run-to-run variation, typical of a dedicated node.
    ``sigma = 0`` makes the platform fully deterministic (useful in tests).

    ``outlier_prob`` / ``outlier_factor`` inject occasional timing spikes
    (an OS daemon waking up, a page-cache flush): with the given
    probability a measurement is stretched by the factor.  This is the
    failure-injection knob the reliability-protocol tests use — a
    measurement pipeline that trusts single timings breaks under it.
    """

    rng: RngStream
    sigma: float = 0.02
    outlier_prob: float = 0.0
    outlier_factor: float = 10.0

    def __post_init__(self) -> None:
        check_nonnegative("sigma", self.sigma)
        if not 0.0 <= self.outlier_prob <= 1.0:
            raise ValueError(
                f"outlier_prob must be in [0, 1], got {self.outlier_prob}"
            )
        if self.outlier_factor < 1.0:
            raise ValueError(
                f"outlier_factor must be >= 1, got {self.outlier_factor}"
            )

    def perturb(self, seconds: float, *context: object) -> float:
        """Return a noisy version of an ideal timing.

        ``context`` names the measurement (device, size, repetition index,
        ...); the same context always yields the same draw.
        """
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        if seconds == 0.0 or (self.sigma == 0.0 and self.outlier_prob == 0.0):
            return seconds
        stream = self.rng
        for part in context:
            stream = stream.child(str(part))
        value = seconds * stream.lognormal_factor(self.sigma)
        if self.outlier_prob > 0.0:
            if stream.child("outlier").uniform() < self.outlier_prob:
                value *= self.outlier_factor
        return value

    def quiet(self) -> "NoiseModel":
        """A zero-noise copy (deterministic timings)."""
        return NoiseModel(rng=self.rng, sigma=0.0)
