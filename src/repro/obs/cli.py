"""``repro profile``: run one experiment under a live tracer.

Installs a :class:`~repro.obs.tracer.Tracer` for the duration of one
experiment run, wraps it in the experiment root span, then exports the
collected spans and metrics:

- ``--trace PATH`` writes Chrome/Perfetto ``trace_event`` JSON (open it
  at https://ui.perfetto.dev or ``chrome://tracing``),
- ``--metrics PATH`` writes the counters/gauges as flat CSV,
- ``--summary`` (the default when neither file is requested) prints the
  aggregated span tree to the terminal.

The experiment itself behaves exactly as under ``python -m repro``: same
seed handling, same printed result.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Callable

from repro.experiments.common import ExperimentConfig
from repro.obs.export import summary_tree, write_chrome_trace, write_metrics_csv
from repro.obs.tracer import Tracer, use_tracer


def profile_experiment(
    name: str, config: ExperimentConfig
) -> tuple[Tracer, Any, Callable[[Any], str]]:
    """Run experiment ``name`` under a fresh tracer.

    Returns the tracer (spans + metrics populated), the experiment's raw
    result, and its formatter.  This is the programmatic core of
    ``repro profile``; the golden-trace tests call it directly.
    """
    # lazy: the registry imports the experiment modules; importing them
    # at module scope would cycle through repro.obs during package init
    from repro.experiments.orchestrator import run_experiment
    from repro.experiments.registry import get_experiment

    exp = get_experiment(name)
    tracer = Tracer()
    with use_tracer(tracer):
        # no store: a profile should always run the real code path
        result = run_experiment(name, config, store=None)
    return tracer, result, exp.format_result


def build_parser() -> argparse.ArgumentParser:
    from repro.experiments.registry import experiment_names

    parser = argparse.ArgumentParser(
        prog="repro-profile",
        description=(
            "Run one experiment with tracing enabled and export the span "
            "tree / metrics."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(experiment_names()),
        help="which experiment to run under the tracer",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="write Chrome/Perfetto trace_event JSON here",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        help="write counters/gauges as CSV here",
    )
    parser.add_argument(
        "--summary",
        action="store_true",
        help="print the span summary tree (default if no files requested)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the experiment's own result output",
    )
    parser.add_argument("--seed", type=int, default=42, help="experiment seed")
    parser.add_argument(
        "--noise",
        type=float,
        default=0.02,
        help="measurement noise sigma (log-time std)",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="coarser sweeps for a quick run",
    )
    parser.add_argument(
        "--gpu-version",
        type=int,
        default=3,
        choices=(1, 2, 3),
        help="GPU kernel version for the application experiments",
    )
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help=(
            "fault-injection spec, e.g. 'fail:*:p=0.1' — the trace then "
            "carries measure.faults/measure.retries counters"
        ),
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    args = build_parser().parse_args(argv)
    config = ExperimentConfig(
        seed=args.seed,
        noise_sigma=args.noise,
        fast=args.fast,
        gpu_version=args.gpu_version,
        faults=args.faults,
    )
    tracer, result, fmt = profile_experiment(args.experiment, config)
    if not args.quiet:
        print(fmt(result))
    if args.trace:
        write_chrome_trace(tracer, args.trace)
        print(f"trace written to {args.trace}")
    if args.metrics:
        write_metrics_csv(tracer, args.metrics)
        print(f"metrics written to {args.metrics}")
    if args.summary or (not args.trace and not args.metrics):
        print()
        print(summary_tree(tracer))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
