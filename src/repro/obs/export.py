"""Exporters for the tracer: Chrome JSON, CSV metrics, terminal tree.

Three consumers, three formats:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` format (one ``X`` complete event per span, one ``C``
  counter track per gauge series), loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``;
* :func:`metrics_csv` / :func:`write_metrics_csv` — a flat CSV of every
  counter and gauge for spreadsheets and regression scripts;
* :func:`summary_tree` — an aggregated terminal tree (call counts and
  wall totals per span name) for quick eyeballing;
* :func:`span_skeleton` — the duration-free structural view (names,
  categories, nesting, counts) asserted byte-stable by the golden-trace
  test.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.tracer import Span, Tracer

#: Microseconds per second — Chrome trace timestamps are integer-ish µs.
_US = 1e6


def _trace_origin_s(tracer: Tracer) -> float:
    """Wall time of the earliest root span (the trace's ts=0)."""
    return min((s.wall_start_s for s in tracer.roots), default=0.0)


def _span_events(span: Span, origin_s: float, events: list[dict]) -> None:
    end = span.wall_end_s if span.wall_end_s is not None else span.wall_start_s
    args = dict(span.attrs)
    if span.sim_start_s is not None:
        args["sim_start_s"] = span.sim_start_s
    if span.sim_end_s is not None:
        args["sim_end_s"] = span.sim_end_s
    if span.sim_duration_s is not None:
        args["sim_duration_s"] = span.sim_duration_s
    events.append(
        {
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": (span.wall_start_s - origin_s) * _US,
            "dur": (end - span.wall_start_s) * _US,
            "pid": 1,
            "tid": 1,
            "args": args,
        }
    )
    for child in span.children:
        _span_events(child, origin_s, events)


def chrome_trace(tracer: Tracer) -> dict:
    """The full trace as a Chrome ``trace_event`` JSON object."""
    origin = _trace_origin_s(tracer)
    events: list[dict] = []
    for root in tracer.roots:
        _span_events(root, origin, events)
    last_ts = max((e["ts"] + e["dur"] for e in events), default=0.0)
    for name, gauge in tracer.metrics.gauges.items():
        events.extend(
            {
                "name": name,
                "cat": "metric",
                "ph": "C",
                "ts": max(0.0, (ts - origin)) * _US,
                "pid": 1,
                "tid": 1,
                "args": {"value": value},
            }
            for ts, value in zip(gauge.timestamps_s, gauge.values)
        )
    events.extend(
        {
            "name": name,
            "cat": "metric",
            "ph": "C",
            "ts": last_ts,
            "pid": 1,
            "tid": 1,
            "args": {"value": counter.value},
        }
        for name, counter in tracer.metrics.counters.items()
    )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs"},
    }


def write_chrome_trace(tracer: Tracer, path: str | Path) -> None:
    """Serialise :func:`chrome_trace` to ``path`` as JSON."""
    Path(path).write_text(
        json.dumps(chrome_trace(tracer), indent=1, sort_keys=True),
        encoding="utf-8",
    )


# ---------------------------------------------------------------- metrics CSV
def metrics_csv(tracer: Tracer) -> str:
    """Counters and gauges as flat CSV (kind,name,count,value,min,max)."""
    lines = ["kind,name,count,value,min,max"]
    for name in sorted(tracer.metrics.counters):
        counter = tracer.metrics.counters[name]
        lines.append(f"counter,{name},{counter.value},{counter.value},,")
    for name in sorted(tracer.metrics.gauges):
        gauge = tracer.metrics.gauges[name]
        lines.append(
            f"gauge,{name},{gauge.count},{gauge.last!r},{gauge.min!r},{gauge.max!r}"
        )
    return "\n".join(lines) + "\n"


def write_metrics_csv(tracer: Tracer, path: str | Path) -> None:
    """Write :func:`metrics_csv` to ``path``."""
    Path(path).write_text(metrics_csv(tracer), encoding="utf-8")


# ------------------------------------------------------------- span skeleton
def span_skeleton(tracer: Tracer) -> list[dict]:
    """Duration-free structure: spans aggregated by name at each level.

    Sibling spans with the same (name, category) collapse into one node
    with a ``count``; their children merge and aggregate recursively.
    Deterministic runs therefore produce byte-identical skeletons even
    though wall durations differ run to run.
    """
    return _skeleton_of(tracer.roots)


def _skeleton_of(spans: list[Span]) -> list[dict]:
    order: list[tuple[str, str]] = []
    counts: dict[tuple[str, str], int] = {}
    children: dict[tuple[str, str], list[Span]] = {}
    for span in spans:
        key = (span.name, span.category)
        if key not in counts:
            counts[key] = 0
            children[key] = []
            order.append(key)
        counts[key] += 1
        children[key].extend(span.children)
    nodes = []
    for key in order:
        name, category = key
        node: dict = {"name": name, "cat": category, "count": counts[key]}
        kids = _skeleton_of(children[key])
        if kids:
            node["children"] = kids
        nodes.append(node)
    return nodes


# -------------------------------------------------------------- summary tree
def summary_tree(tracer: Tracer) -> str:
    """Aggregated terminal view: per-name call counts and wall totals."""
    lines: list[str] = ["span tree (count, total wall time)"]
    _summarise(tracer.roots, 0, lines)
    snapshot = tracer.metrics.snapshot()
    if snapshot:
        lines.append("metrics")
        lines.extend(f"  {name} = {snapshot[name]:g}" for name in sorted(snapshot))
    return "\n".join(lines)


def _summarise(spans: list[Span], depth: int, lines: list[str]) -> None:
    order: list[tuple[str, str]] = []
    totals: dict[tuple[str, str], float] = {}
    counts: dict[tuple[str, str], int] = {}
    children: dict[tuple[str, str], list[Span]] = {}
    for span in spans:
        key = (span.name, span.category)
        if key not in counts:
            counts[key] = 0
            totals[key] = 0.0
            children[key] = []
            order.append(key)
        counts[key] += 1
        totals[key] += span.wall_duration_s
        children[key].extend(span.children)
    for key in order:
        name, _category = key
        indent = "  " * (depth + 1)
        lines.append(
            f"{indent}{name:<40s} {counts[key]:6d}x {totals[key]:10.4f}s"
        )
        _summarise(children[key], depth + 1, lines)
