"""Typed counters, gauges and histograms for the observability subsystem.

Three metric kinds cover everything the pipeline needs:

* :class:`Counter` — a monotone event count (samples taken, events
  processed, refinement points inserted);
* :class:`Gauge` — a last-value instrument that additionally keeps its
  min/max and the full sample series, so a gauge set once per partitioner
  iteration *is* the convergence curve;
* :class:`Histogram` — a latency/size distribution with cumulative
  log-spaced buckets (Prometheus-style ``le`` boundaries) plus a bounded
  reservoir of recent raw samples for exact percentile queries — what
  the partition service's ``/metrics`` endpoint serves as p50/p99.

Metrics are owned by a :class:`MetricRegistry` (one per
:class:`repro.obs.tracer.Tracer`).  The no-op tracer hands out the inert
:data:`NULL_COUNTER` / :data:`NULL_GAUGE` / :data:`NULL_HISTOGRAM`
singletons instead, so disabled instrumentation never allocates.
"""

from __future__ import annotations

import math
from typing import Callable


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        """Increment by ``n`` (must be >= 0: counters never go down)."""
        if n < 0:
            raise ValueError(f"counter {self.name}: negative increment {n}")
        self.value += n


class Gauge:
    """A float-valued instrument that remembers its whole series.

    ``clock`` stamps each observation with a wall-clock timestamp so
    exporters can render the series as Chrome ``Counter`` events; the
    series itself (``values``) is what convergence assertions consume.
    """

    __slots__ = ("name", "values", "timestamps_s", "_clock")

    def __init__(self, name: str, clock: Callable[[], float]):
        self.name = name
        self.values: list[float] = []
        self.timestamps_s: list[float] = []
        self._clock = clock

    def set(self, value: float) -> None:
        """Record one observation."""
        self.values.append(float(value))
        self.timestamps_s.append(self._clock())

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def last(self) -> float:
        return self.values[-1] if self.values else math.nan

    @property
    def min(self) -> float:
        return min(self.values) if self.values else math.nan

    @property
    def max(self) -> float:
        return max(self.values) if self.values else math.nan


#: Default histogram boundaries: log-spaced from 100 µs to ~100 s, a good
#: fit for request latencies in seconds (each bucket ~3.16x the previous).
DEFAULT_BUCKETS = tuple(10.0 ** (e / 2.0) for e in range(-8, 5))

#: Raw samples a histogram retains for exact percentile queries; beyond
#: this the reservoir keeps only the most recent window (bucket counts
#: and the running sum stay exact forever).
_RESERVOIR_LIMIT = 65536


class Histogram:
    """A distribution instrument: cumulative buckets + recent raw samples.

    Bucket counts, ``total`` and ``sum`` are exact over the histogram's
    whole life (what Prometheus scrapes); :meth:`percentile` is exact
    while fewer than the reservoir limit of samples have been observed
    and computed over the most recent window afterwards — a deliberate
    trade so a long-lived daemon's memory stays bounded.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "total", "sum", "_samples")

    def __init__(self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS):
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name}: bounds must strictly increase")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        #: per-bound counts of observations <= bound, plus the +Inf overflow
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self._samples: list[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.total += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                break
        else:
            self.bucket_counts[-1] += 1
        samples = self._samples
        samples.append(value)
        if len(samples) > _RESERVOIR_LIMIT:
            del samples[: len(samples) // 2]

    @property
    def count(self) -> int:
        return self.total

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) of the retained samples."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile {q} outside [0, 100]")
        if not self._samples:
            return math.nan
        ordered = sorted(self._samples)
        rank = q / 100.0 * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        return ordered[lo] + (ordered[hi] - ordered[lo]) * (rank - lo)

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else math.nan

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Prometheus-style ``(le, cumulative count)`` pairs, +Inf last."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.bucket_counts):
            running += count
            out.append((bound, running))
        out.append((math.inf, running + self.bucket_counts[-1]))
        return out


class MetricRegistry:
    """Name-keyed store of counters, gauges and histograms with stable
    iteration order."""

    def __init__(self, clock: Callable[[], float]):
        self._clock = clock
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get (or create) the counter called ``name``."""
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter(name)
        return found

    def gauge(self, name: str) -> Gauge:
        """Get (or create) the gauge called ``name``."""
        found = self._gauges.get(name)
        if found is None:
            found = self._gauges[name] = Gauge(name, self._clock)
        return found

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        """Get (or create) the histogram called ``name``."""
        found = self._histograms.get(name)
        if found is None:
            found = self._histograms[name] = Histogram(name, bounds)
        return found

    @property
    def counters(self) -> dict[str, Counter]:
        return dict(self._counters)

    @property
    def gauges(self) -> dict[str, Gauge]:
        return dict(self._gauges)

    @property
    def histograms(self) -> dict[str, Histogram]:
        return dict(self._histograms)

    def snapshot(self) -> dict[str, float]:
        """Flat ``{name: value}`` view (counters and gauge last-values)."""
        out: dict[str, float] = {}
        for name, counter in self._counters.items():
            out[name] = float(counter.value)
        for name, gauge in self._gauges.items():
            out[name] = gauge.last
        return out


class _NullCounter(Counter):
    """A counter that ignores increments (handed out when tracing is off)."""

    __slots__ = ()

    def add(self, n: int = 1) -> None:
        """Discard the increment."""


class _NullGauge(Gauge):
    """A gauge that ignores observations (handed out when tracing is off)."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null", lambda: 0.0)

    def set(self, value: float) -> None:
        """Discard the observation."""


class _NullHistogram(Histogram):
    """A histogram that ignores observations (handed out when tracing is off)."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null")

    def observe(self, value: float) -> None:
        """Discard the observation."""


#: Shared inert instruments returned by the no-op tracer.
NULL_COUNTER = _NullCounter("null")
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()
