"""Typed counters and gauges for the observability subsystem.

Two metric kinds cover everything the pipeline needs:

* :class:`Counter` — a monotone event count (samples taken, events
  processed, refinement points inserted);
* :class:`Gauge` — a last-value instrument that additionally keeps its
  min/max and the full sample series, so a gauge set once per partitioner
  iteration *is* the convergence curve.

Metrics are owned by a :class:`MetricRegistry` (one per
:class:`repro.obs.tracer.Tracer`).  The no-op tracer hands out the inert
:data:`NULL_COUNTER` / :data:`NULL_GAUGE` singletons instead, so
disabled instrumentation never allocates.
"""

from __future__ import annotations

import math
from typing import Callable


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        """Increment by ``n`` (must be >= 0: counters never go down)."""
        if n < 0:
            raise ValueError(f"counter {self.name}: negative increment {n}")
        self.value += n


class Gauge:
    """A float-valued instrument that remembers its whole series.

    ``clock`` stamps each observation with a wall-clock timestamp so
    exporters can render the series as Chrome ``Counter`` events; the
    series itself (``values``) is what convergence assertions consume.
    """

    __slots__ = ("name", "values", "timestamps_s", "_clock")

    def __init__(self, name: str, clock: Callable[[], float]):
        self.name = name
        self.values: list[float] = []
        self.timestamps_s: list[float] = []
        self._clock = clock

    def set(self, value: float) -> None:
        """Record one observation."""
        self.values.append(float(value))
        self.timestamps_s.append(self._clock())

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def last(self) -> float:
        return self.values[-1] if self.values else math.nan

    @property
    def min(self) -> float:
        return min(self.values) if self.values else math.nan

    @property
    def max(self) -> float:
        return max(self.values) if self.values else math.nan


class MetricRegistry:
    """Name-keyed store of counters and gauges with stable iteration order."""

    def __init__(self, clock: Callable[[], float]):
        self._clock = clock
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}

    def counter(self, name: str) -> Counter:
        """Get (or create) the counter called ``name``."""
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter(name)
        return found

    def gauge(self, name: str) -> Gauge:
        """Get (or create) the gauge called ``name``."""
        found = self._gauges.get(name)
        if found is None:
            found = self._gauges[name] = Gauge(name, self._clock)
        return found

    @property
    def counters(self) -> dict[str, Counter]:
        return dict(self._counters)

    @property
    def gauges(self) -> dict[str, Gauge]:
        return dict(self._gauges)

    def snapshot(self) -> dict[str, float]:
        """Flat ``{name: value}`` view (counters and gauge last-values)."""
        out: dict[str, float] = {}
        for name, counter in self._counters.items():
            out[name] = float(counter.value)
        for name, gauge in self._gauges.items():
            out[name] = gauge.last
        return out


class _NullCounter(Counter):
    """A counter that ignores increments (handed out when tracing is off)."""

    __slots__ = ()

    def add(self, n: int = 1) -> None:
        """Discard the increment."""


class _NullGauge(Gauge):
    """A gauge that ignores observations (handed out when tracing is off)."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null", lambda: 0.0)

    def set(self, value: float) -> None:
        """Discard the observation."""


#: Shared inert instruments returned by the no-op tracer.
NULL_COUNTER = _NullCounter("null")
NULL_GAUGE = _NullGauge()
