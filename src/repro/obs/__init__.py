"""repro.obs — zero-dependency observability for the reproduction pipeline.

The paper's argument rests on *where time goes*: repetitions until a
measurement is statistically reliable (Section III), partitioner
iterations converging to equal finish times (Section VI), and pipelined
compute/DMA schedules (Fig. 4).  This package makes those inner loops
visible without touching their numbers:

* :mod:`repro.obs.tracer` — a process-local tracer with nested spans that
  carry both wall-clock and simulated-clock bounds, plus the no-op
  :class:`NullTracer` installed by default (one predictable branch on the
  hot paths, no allocation);
* :mod:`repro.obs.metrics` — typed counters, gauges and histograms;
  gauges keep their sample series so partitioner convergence curves
  become data, histograms keep bucketed latency distributions for the
  partition service's ``/metrics`` endpoint;
* :mod:`repro.obs.export` — exporters to Chrome/Perfetto ``trace_event``
  JSON, flat CSV metrics, a terminal summary tree, and the
  duration-free span skeleton used by the golden-trace tests.

Tracing is **off by default**: every instrumented call site reads the
process-local tracer via :func:`get_tracer` and either finds the shared
:data:`NULL_TRACER` (whose spans and metrics are inert singletons) or a
live :class:`Tracer` installed by :func:`use_tracer` /
``repro profile``.  Instrumentation therefore never changes simulated
results — it only records them.

Quickstart::

    from repro.obs import Tracer, use_tracer, write_chrome_trace

    tracer = Tracer()
    with use_tracer(tracer):
        with tracer.span("experiment.demo", category="experiment"):
            run_workload()
    write_chrome_trace(tracer, "trace.json")
"""

from repro.obs.export import (
    chrome_trace,
    metrics_csv,
    span_skeleton,
    summary_tree,
    write_chrome_trace,
    write_metrics_csv,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricRegistry
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
    wall_clock_s,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "chrome_trace",
    "get_tracer",
    "metrics_csv",
    "set_tracer",
    "span_skeleton",
    "summary_tree",
    "use_tracer",
    "wall_clock_s",
    "write_chrome_trace",
    "write_metrics_csv",
]
