"""Process-local tracer with nested, sim-clock-aware spans.

A :class:`Span` records a named region of work: its wall-clock bounds
(always) and its simulated-clock bounds (when the instrumented code runs
on the simulated timeline and marks them with :meth:`Span.mark_sim`).
Spans nest: the tracer keeps an open-span stack, so instrumented layers
compose into one tree — experiment root over FPM construction over
individual reliable measurements over repetitions.

Tracing is off by default.  The module-level active tracer starts as
:data:`NULL_TRACER`, whose spans and metrics are shared inert
singletons; every instrumented call site pays one attribute load plus
(at most) one branch.  ``repro profile`` — or any caller — installs a
live :class:`Tracer` with :func:`use_tracer` for the duration of a run.

The wall clock is read here, and only here, via
:func:`wall_clock_s` — the simulation packages themselves stay free of
wall-clock reads (lint rule REP001), and wall durations never feed back
into simulated results.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
)


def wall_clock_s() -> float:
    """Monotonic wall-clock seconds (the tracer's time base).

    Exposed as a function so worker processes can time themselves and
    report durations back without importing :mod:`time` into the
    simulation packages.
    """
    return time.perf_counter()


class Span:
    """One traced region: name, category, attrs, wall and sim bounds."""

    __slots__ = (
        "name",
        "category",
        "attrs",
        "children",
        "wall_start_s",
        "wall_end_s",
        "sim_start_s",
        "sim_end_s",
        "_tracer",
    )

    def __init__(
        self,
        name: str,
        category: str,
        wall_start_s: float,
        tracer: "Tracer | None" = None,
        attrs: dict | None = None,
    ):
        self.name = name
        self.category = category
        self.attrs: dict = attrs or {}
        self.children: list[Span] = []
        self.wall_start_s = wall_start_s
        self.wall_end_s: float | None = None
        self.sim_start_s: float | None = None
        self.sim_end_s: float | None = None
        self._tracer = tracer

    # ------------------------------------------------------------- recording
    def set_attr(self, key: str, value) -> None:
        """Attach one key/value to the span (shown in exporters' ``args``)."""
        self.attrs[key] = value

    def mark_sim(self, start: float | None = None, end: float | None = None) -> None:
        """Record the span's bounds on the *simulated* clock."""
        if start is not None:
            self.sim_start_s = start
        if end is not None:
            self.sim_end_s = end

    def finish(self) -> None:
        """Close the span (idempotent) and pop it off the tracer's stack."""
        if self.wall_end_s is not None:
            return
        tracer = self._tracer
        self.wall_end_s = tracer.now() if tracer is not None else self.wall_start_s
        if tracer is not None:
            tracer._pop(self)

    # ---------------------------------------------------------------- derived
    @property
    def wall_duration_s(self) -> float:
        """Wall seconds between start and finish (0.0 while still open)."""
        if self.wall_end_s is None:
            return 0.0
        return self.wall_end_s - self.wall_start_s

    @property
    def sim_duration_s(self) -> float | None:
        """Simulated seconds between the marked sim bounds, when both exist."""
        if self.sim_start_s is None or self.sim_end_s is None:
            return None
        return self.sim_end_s - self.sim_start_s

    # ------------------------------------------------------- context manager
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info) -> None:
        self.finish()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, cat={self.category!r}, "
            f"children={len(self.children)})"
        )


class Tracer:
    """A live tracer: span tree plus a metric registry, one per run.

    ``clock`` is injectable for deterministic tests; production use reads
    :func:`wall_clock_s`.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = wall_clock_s):
        self._clock = clock
        self.roots: list[Span] = []
        self._local = threading.local()
        self.metrics = MetricRegistry(clock)

    @property
    def _stack(self) -> list[Span]:
        """The open-span stack of the *calling* thread.

        Spans nest per thread: the partition service's worker threads run
        instrumented measurement code concurrently, and a shared stack
        would interleave their trees (or pop another thread's spans).
        Single-threaded callers see exactly the old behaviour; ``roots``
        stays shared, so every thread's top-level spans land in one tree.
        """
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # ---------------------------------------------------------------- clocks
    def now(self) -> float:
        """Current wall-clock reading of the tracer's time base."""
        return self._clock()

    # ----------------------------------------------------------------- spans
    def span(self, name: str, category: str = "repro", **attrs) -> Span:
        """Open a nested span; use as a context manager or call ``finish``."""
        span = Span(name, category, self._clock(), tracer=self, attrs=attrs)
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def record(
        self,
        name: str,
        category: str = "repro",
        wall_duration_s: float = 0.0,
        sim_start_s: float | None = None,
        sim_end_s: float | None = None,
        **attrs,
    ) -> Span:
        """Add an already-completed child span (e.g. a worker's timing)."""
        end = self._clock()
        span = Span(name, category, end - wall_duration_s, tracer=None, attrs=attrs)
        span.wall_end_s = end
        span.mark_sim(sim_start_s, sim_end_s)
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        return span

    def _pop(self, span: Span) -> None:
        """Remove ``span`` (and any unclosed descendants) from the stack."""
        while self._stack:
            top = self._stack.pop()
            if top is span:
                return
            # a descendant left open: close it at the ancestor's end time
            if top.wall_end_s is None:
                top.wall_end_s = span.wall_end_s

    @property
    def active_span(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    # --------------------------------------------------------------- metrics
    def counter(self, name: str) -> Counter:
        """The tracer-owned counter called ``name``."""
        return self.metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        """The tracer-owned gauge called ``name``."""
        return self.metrics.gauge(name)

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        """The tracer-owned histogram called ``name``."""
        return self.metrics.histogram(name, bounds)


class _NullSpan:
    """The shared do-nothing span handed out while tracing is off."""

    __slots__ = ()

    def set_attr(self, key: str, value) -> None:
        """Discard the attribute."""

    def mark_sim(self, start: float | None = None, end: float | None = None) -> None:
        """Discard the sim bounds."""

    def finish(self) -> None:
        """Nothing to close."""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


class NullTracer:
    """The default, disabled tracer: every operation is a shared no-op.

    Instrumented code checks :attr:`enabled` before doing any per-event
    work (building attribute dicts, computing gauge values); the span and
    metric objects returned here are inert singletons, so even unguarded
    calls cost only a method dispatch.
    """

    enabled = False

    def now(self) -> float:
        """A constant: disabled tracing has no time base."""
        return 0.0

    def span(self, name: str, category: str = "repro", **attrs) -> _NullSpan:
        """The shared no-op span."""
        return NULL_SPAN

    def record(self, name: str, category: str = "repro", **kwargs) -> _NullSpan:
        """The shared no-op span."""
        return NULL_SPAN

    def counter(self, name: str) -> Counter:
        """The shared no-op counter."""
        return NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        """The shared no-op gauge."""
        return NULL_GAUGE

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        """The shared no-op histogram."""
        return NULL_HISTOGRAM


#: Shared singletons: the process starts with tracing disabled.
NULL_SPAN = _NullSpan()
NULL_TRACER = NullTracer()

_ACTIVE: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The process-local active tracer (the no-op tracer by default)."""
    return _ACTIVE


def set_tracer(tracer: Tracer | NullTracer) -> Tracer | NullTracer:
    """Install ``tracer`` as the active tracer; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` for the duration of a ``with`` block."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
