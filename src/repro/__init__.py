"""repro — FPM-based data partitioning on hybrid multicore/multi-GPU systems.

A faithful, fully self-contained reproduction of

    Z. Zhong, V. Rychkov, A. Lastovetsky,
    "Data Partitioning on Heterogeneous Multicore and Multi-GPU Systems
    Using Functional Performance Models of Data-Parallel Applications",
    IEEE Cluster 2012.

Layers (bottom to top):

* :mod:`repro.platform` — the simulated hybrid node (calibrated analytic
  device models standing in for the paper's real hardware);
* :mod:`repro.kernels` — CPU and GPU GEMM kernels, including the paper's
  three GPU versions with out-of-core tiling and DMA overlap;
* :mod:`repro.measurement` — binding, synchronisation, statistically
  reliable timing, and FPM construction;
* :mod:`repro.core` — functional performance models and the FPM / CPM /
  homogeneous partitioning algorithms plus the column-based 2D geometry;
* :mod:`repro.runtime` — the simulated message-passing runtime;
* :mod:`repro.app` — the heterogeneous parallel matrix multiplication;
* :mod:`repro.experiments` — one module per table/figure of the paper.

Quickstart::

    from repro import HybridMatMul, PartitioningStrategy, ig_icl_node

    app = HybridMatMul(ig_icl_node())
    app.build_models(max_blocks=3600.0)
    plan, result = app.run(60, PartitioningStrategy.FPM)
    print(plan.unit_allocations, result.total_time)
"""

from repro.app.matmul import (
    ComputeUnit,
    HybridMatMul,
    MatMulPlan,
    PartitioningStrategy,
)
from repro.core.cpm import ConstantPerformanceModel
from repro.core.fpm import FunctionalPerformanceModel
from repro.core.geometry import column_based_partition
from repro.core.partition import (
    partition_cpm,
    partition_fpm,
    partition_homogeneous,
)
from repro.core.solver import SolveResult, Solver, SolverOptions
from repro.core.speed_function import SpeedFunction, SpeedSample
from repro.measurement.benchmark import HybridBenchmark
from repro.measurement.fpm_builder import FpmBuilder, SizeGrid
from repro.platform.presets import cpu_only_node, ig_icl_node

__version__ = "1.7.0"

__all__ = [
    "ComputeUnit",
    "HybridMatMul",
    "MatMulPlan",
    "PartitioningStrategy",
    "ConstantPerformanceModel",
    "FunctionalPerformanceModel",
    "column_based_partition",
    "partition_cpm",
    "partition_fpm",
    "partition_homogeneous",
    "Solver",
    "SolverOptions",
    "SolveResult",
    "SpeedFunction",
    "SpeedSample",
    "HybridBenchmark",
    "FpmBuilder",
    "SizeGrid",
    "cpu_only_node",
    "ig_icl_node",
    "__version__",
]
