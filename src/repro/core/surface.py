"""Two-parameter speed functions (speed surfaces).

The paper defines problem size as "a set of parameters characterizing the
amount and layout of data" and notes the count is application-specific;
for the matrix application it then collapses to one parameter (area)
because "the speed of the kernel for a given matrix area x does not vary
with the nearly square shapes of submatrices".  This module supplies the
two-parameter machinery needed to *check* that collapse instead of
assuming it:

* :class:`SpeedSurface` — bilinear speed interpolation on a rectangular
  (rows x cols) grid of measurements;
* :func:`area_slice` — the 1D speed function obtained by walking the
  surface along a fixed aspect ratio, ready for the ordinary partitioner;
* :func:`aspect_sensitivity` — how much speed varies across aspect ratios
  at fixed area: small near 1:1 (validating the paper's assumption),
  growing for extreme shapes.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass


from repro.core.speed_function import SpeedFunction, SpeedSample
from repro.util.validation import check_positive


@dataclass(frozen=True)
class SpeedSurface:
    """Bilinear speed over a rectangular grid of (rows, cols) points.

    ``speeds[i][j]`` is the measured speed at ``(row_sizes[i],
    col_sizes[j])``.  Outside the grid the surface extends with its edge
    values, mirroring :class:`SpeedFunction`'s constant extension.
    """

    row_sizes: tuple[float, ...]
    col_sizes: tuple[float, ...]
    speeds: tuple[tuple[float, ...], ...]

    def __post_init__(self) -> None:
        for name, axis in (("row_sizes", self.row_sizes), ("col_sizes", self.col_sizes)):
            if len(axis) < 1:
                raise ValueError(f"{name} must not be empty")
            for a, b in zip(axis, axis[1:]):
                if not 0 < a < b:
                    raise ValueError(
                        f"{name} must be positive and strictly increasing"
                    )
        if len(self.speeds) != len(self.row_sizes):
            raise ValueError(
                f"speeds has {len(self.speeds)} rows, expected "
                f"{len(self.row_sizes)}"
            )
        for row in self.speeds:
            if len(row) != len(self.col_sizes):
                raise ValueError(
                    f"speed row of length {len(row)}, expected "
                    f"{len(self.col_sizes)}"
                )
            for s in row:
                if not s > 0:
                    raise ValueError(f"speeds must be positive, got {s}")

    def speed(self, rows: float, cols: float) -> float:
        """Bilinear interpolation with constant extension outside the grid."""
        check_positive("rows", rows)
        check_positive("cols", cols)
        i0, i1, u = _bracket(self.row_sizes, rows)
        j0, j1, v = _bracket(self.col_sizes, cols)
        s00 = self.speeds[i0][j0]
        s01 = self.speeds[i0][j1]
        s10 = self.speeds[i1][j0]
        s11 = self.speeds[i1][j1]
        return (
            s00 * (1 - u) * (1 - v)
            + s01 * (1 - u) * v
            + s10 * u * (1 - v)
            + s11 * u * v
        )

    def speed_at_area(self, area: float, aspect: float = 1.0) -> float:
        """Speed at a given area for a given rows/cols aspect ratio."""
        check_positive("area", area)
        check_positive("aspect", aspect)
        rows = math.sqrt(area * aspect)
        cols = area / rows
        return self.speed(rows, cols)

    @property
    def max_area(self) -> float:
        return self.row_sizes[-1] * self.col_sizes[-1]


def _bracket(axis: tuple[float, ...], x: float) -> tuple[int, int, float]:
    """Indices and weight for 1D linear interpolation with clamping."""
    if x <= axis[0]:
        return 0, 0, 0.0
    if x >= axis[-1]:
        last = len(axis) - 1
        return last, last, 0.0
    hi = bisect.bisect_right(axis, x)
    lo = hi - 1
    w = (x - axis[lo]) / (axis[hi] - axis[lo])
    return lo, hi, w


def build_surface(
    kernel_speed,
    row_sizes: list[float],
    col_sizes: list[float],
) -> SpeedSurface:
    """Sample ``kernel_speed(rows, cols) -> speed`` over the grid."""
    speeds = tuple(
        tuple(float(kernel_speed(r, c)) for c in col_sizes) for r in row_sizes
    )
    return SpeedSurface(
        row_sizes=tuple(float(r) for r in row_sizes),
        col_sizes=tuple(float(c) for c in col_sizes),
        speeds=speeds,
    )


def area_slice(
    surface: SpeedSurface,
    areas: list[float],
    aspect: float = 1.0,
) -> SpeedFunction:
    """The 1D speed function along a fixed aspect ratio.

    This is what the paper's collapse produces for ``aspect = 1``; the
    result plugs straight into :func:`repro.core.partition.partition_fpm`.
    """
    samples = [
        SpeedSample(size=a, speed=surface.speed_at_area(a, aspect))
        for a in sorted(set(areas))
    ]
    return SpeedFunction(samples)


def aspect_sensitivity(
    surface: SpeedSurface,
    area: float,
    aspects: list[float] | None = None,
) -> float:
    """Relative speed spread across aspect ratios at a fixed area.

    Returns ``(max - min) / max`` over the aspect set (default: 1:4 to
    4:1).  The paper's near-square assumption holds when this is small
    for aspects near 1.
    """
    check_positive("area", area)
    aspects = aspects or [0.25, 0.5, 1.0, 2.0, 4.0]
    speeds = [surface.speed_at_area(area, a) for a in aspects]
    top = max(speeds)
    return (top - min(speeds)) / top
