"""The unified partitioning entry point: :class:`Solver`.

The partitioning algorithms grew up as free functions with drifting
signatures — :func:`repro.core.partition.partition_fpm`,
:func:`~repro.core.partition.partition_cpm`,
:func:`~repro.core.partition.partition_homogeneous`,
:func:`repro.core.hierarchical.hierarchical_partition` — and every layer
above core picked one by hand.  :class:`Solver` is the single facade the
rest of the system (apps, runtime recovery, online measurement, the
partition service) goes through:

>>> from repro.core.solver import Solver, SolverOptions
>>> solver = Solver(SolverOptions(strategy="fpm"))
>>> solver.solve(models, 6000.0).allocations   # doctest: +SKIP

One options record carries every knob (keyword-only, validated at
construction), one ``solve`` call covers flat and hierarchical cluster
solves, and the result object keeps the strategy and per-node structure
next to the numbers.  ``repro lint`` rule REP006 flags direct
partitioner imports outside :mod:`repro.core` so new code arrives here.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Literal

from repro.core.cpm import cpms_from_even_split
from repro.core.fpm import FunctionalPerformanceModel, as_speed_function
from repro.core.hierarchical import HierarchicalPartition, hierarchical_partition
from repro.core.partition import (
    FPM_MAX_ITERS,
    FPM_TOLERANCE,
    FpmSolveState,
    geometric_partition,
    partition_cpm,
    partition_fpm_with_state,
    partition_homogeneous,
    resolve_fpm,
)
from repro.util.validation import check_positive, check_positive_int

#: Strategies ``SolverOptions`` accepts.  ``"even"`` is the canonical
#: name of the uniform split; ``"homogeneous"`` is normalised to it.
#: ``"geometric"`` keeps the paper's ray-rotation formulation reachable.
STRATEGIES = ("fpm", "cpm", "even", "geometric")

Strategy = Literal["fpm", "cpm", "even", "geometric"]


@dataclass(frozen=True, kw_only=True)
class SolverOptions:
    """Every solver knob, validated once at construction.

    Parameters
    ----------
    strategy:
        ``"fpm"`` (equal finish times), ``"cpm"`` (proportional to
        constant speeds; FPM inputs are calibrated at an even split
        first, the paper's CPM procedure), ``"even"`` (uniform split;
        ``"homogeneous"`` is accepted as an alias) or ``"geometric"``
        (the ray-rotation formulation of FPM).
    hierarchy:
        Two-level cluster mode: ``solve`` expects one list of unit
        models *per node* and an integer total, splits between nodes on
        per-node aggregate FPMs, then within each node.  FPM only.
    tolerance / max_iters:
        FPM convergence knobs, passed straight to the Illinois solver.
    aggregate_samples:
        Grid size of each node's aggregate speed function in
        hierarchical mode.
    """

    strategy: Strategy = "fpm"
    hierarchy: bool = False
    tolerance: float = FPM_TOLERANCE
    max_iters: int = FPM_MAX_ITERS
    aggregate_samples: int = 24

    def __post_init__(self) -> None:
        if self.strategy == "homogeneous":
            object.__setattr__(self, "strategy", "even")
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; expected one of "
                f"{', '.join(STRATEGIES)}"
            )
        check_positive("tolerance", self.tolerance)
        check_positive_int("max_iters", self.max_iters)
        check_positive_int("aggregate_samples", self.aggregate_samples)
        if self.hierarchy and self.strategy != "fpm":
            raise ValueError(
                f"hierarchical partitioning requires strategy='fpm', "
                f"got {self.strategy!r}"
            )


@dataclass(frozen=True)
class SolveResult:
    """A solve's allocations plus the structure that produced them.

    Flat FPM solves additionally carry an opaque ``warm`` state:
    handing the result back to :meth:`Solver.resolve` re-solves after
    model changes or device drops without re-stacking the whole batch
    representation.  ``warm`` never participates in equality or repr.
    """

    allocations: tuple[float, ...]
    strategy: str
    hierarchy: HierarchicalPartition | None = None
    warm: FpmSolveState | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def total(self) -> float:
        """The workload the allocations account for."""
        return sum(self.allocations)

    def as_dict(self, names) -> dict[str, float]:
        """Allocations keyed by caller-supplied unit names."""
        names = list(names)
        if len(names) != len(self.allocations):
            raise ValueError(
                f"{len(names)} names for {len(self.allocations)} allocations"
            )
        return dict(zip(names, self.allocations))


class Solver:
    """The one partitioning entry point; construction is free, reuse it.

    ``Solver(options)`` or ``Solver(strategy="cpm", ...)`` — keyword
    overrides are merged into the options record.  A solver is immutable
    and thread-safe; ``with_options`` derives a variant.
    """

    __slots__ = ("options",)

    def __init__(self, options: SolverOptions | None = None, **overrides):
        base = options if options is not None else SolverOptions()
        if overrides:
            base = replace(base, **overrides)
        object.__setattr__(self, "options", base)

    def __setattr__(self, name, value):  # pragma: no cover - guard rail
        raise AttributeError("Solver is immutable; use with_options()")

    def __repr__(self) -> str:
        return f"Solver({self.options!r})"

    def with_options(self, **overrides) -> "Solver":
        """A new solver with some options replaced."""
        return Solver(replace(self.options, **overrides))

    def solve(self, models, total) -> SolveResult:
        """Split ``total`` workload units across ``models``.

        Flat mode: ``models`` is one sequence of FPMs / speed functions /
        constants.  Hierarchical mode (``options.hierarchy``): one
        sequence of unit models per node, integer ``total``; the result
        carries the :class:`HierarchicalPartition` and its flat
        per-unit allocations.
        """
        opts = self.options
        if opts.hierarchy:
            tree = hierarchical_partition(
                [list(units) for units in models],
                int(total),
                aggregate_samples=opts.aggregate_samples,
                tolerance=opts.tolerance,
                max_iters=opts.max_iters,
            )
            return SolveResult(
                allocations=tuple(float(a) for a in tree.flat),
                strategy=opts.strategy,
                hierarchy=tree,
            )
        models = list(models)
        if opts.strategy == "fpm":
            allocs, warm = partition_fpm_with_state(
                models, total, tolerance=opts.tolerance, max_iters=opts.max_iters
            )
            return SolveResult(
                allocations=tuple(allocs), strategy=opts.strategy, warm=warm
            )
        if opts.strategy == "geometric":
            allocs = geometric_partition(models, total)
        elif opts.strategy == "cpm":
            constants = models
            if models and isinstance(models[0], FunctionalPerformanceModel):
                # calibrate FPMs at an even split of the problem — the
                # paper's CPM procedure — before the proportional split
                constants = cpms_from_even_split(models, total)
            allocs = partition_cpm(constants, total)
        else:  # "even"
            allocs = partition_homogeneous(len(models), total)
        return SolveResult(allocations=tuple(allocs), strategy=opts.strategy)

    def resolve(
        self,
        previous: SolveResult,
        *,
        changed_models=None,
        dropped=(),
        total: float | None = None,
        mode: str = "exact",
    ) -> SolveResult:
        """Warm-started incremental re-solve of a previous flat FPM solve.

        ``previous`` must carry warm state (any flat ``strategy="fpm"``
        :meth:`solve` result does).  ``changed_models`` maps model index
        to its refreshed model, ``dropped`` lists removed model indices,
        ``total`` overrides the previous workload.  Only the changed rows
        of the batched solver representation are rebuilt.

        In ``"exact"`` mode (default) the returned allocations are
        **bit-identical** to a cold :meth:`solve` over the updated model
        list; ``"bracket"`` mode additionally seeds the root search with
        the previous equal-time ray — fewer evaluations, equality only to
        solver tolerance.  The result carries fresh warm state, so
        resolves chain.
        """
        opts = self.options
        if opts.strategy != "fpm" or opts.hierarchy:
            raise ValueError(
                "resolve requires a flat strategy='fpm' solver, got "
                f"strategy={opts.strategy!r} hierarchy={opts.hierarchy}"
            )
        state = previous.warm
        if state is None:
            raise ValueError(
                "previous result carries no warm state; only flat FPM "
                "Solver.solve results can seed a resolve"
            )
        replacements = None
        if changed_models:
            replacements = {
                int(i): as_speed_function(m)
                for i, m in changed_models.items()
            }
        allocs, new_state = resolve_fpm(
            state,
            replacements=replacements,
            dropped=dropped,
            total=total,
            mode=mode,
            tolerance=opts.tolerance,
            max_iters=opts.max_iters,
        )
        return SolveResult(
            allocations=tuple(allocs), strategy="fpm", warm=new_state
        )


def solve(models, total, **options) -> SolveResult:
    """One-shot convenience: ``Solver(**options).solve(models, total)``."""
    return Solver(**options).solve(models, total)
