"""Dynamic (iterative) load balancing — the paper's Section II comparison.

Static FPM partitioning "predicts the future" from models built ahead of
time.  Dynamic algorithms (Clarke, Lastovetsky, Rychkov — the paper's
reference [14]) instead observe per-iteration execution times and migrate
work between iterations.  This module implements that family so the
reproduction can quantify the trade-off the paper argues qualitatively:
dynamic balancing converges to the balanced distribution *without* a model,
but pays data-migration costs and several unbalanced warm-up iterations,
while FPM-based static partitioning is balanced from iteration one.

Two policies are provided:

* :class:`SpeedBasedRebalancer` — after each iteration, recompute the
  distribution proportionally to the *observed speeds* ``d_i / t_i`` (the
  adaptive-CPM scheme of Yang et al., the paper's reference [2]).
* :class:`ThresholdRebalancer` — the same, but only when the observed
  imbalance ``max t / min t`` exceeds a threshold, avoiding migration
  churn near balance (as in [14]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol, Sequence

from repro.util.validation import check_nonnegative, check_positive


class RebalancePolicy(Protocol):
    """Decides the next distribution from observed iteration times."""

    def next_distribution(
        self, current: Sequence[int], times: Sequence[float], total: int
    ) -> list[int]:
        """Return the next iteration's integer distribution."""
        ...


def _proportional_integer(
    weights: Sequence[float], total: int
) -> list[int]:
    """Integer distribution proportional to weights (largest remainder)."""
    s = sum(weights)
    if s <= 0:
        raise ValueError("weights must have a positive sum")
    raw = [total * w / s for w in weights]
    floors = [int(f) for f in raw]
    remainder = total - sum(floors)
    order = sorted(
        range(len(raw)), key=lambda i: (-(raw[i] - floors[i]), i)
    )
    for k in range(remainder):
        floors[order[k % len(order)]] += 1
    return floors


@dataclass(frozen=True)
class SpeedBasedRebalancer:
    """Redistribute proportionally to observed speeds every iteration."""

    def next_distribution(
        self, current: Sequence[int], times: Sequence[float], total: int
    ) -> list[int]:
        speeds = []
        for d, t in zip(current, times):
            if d > 0 and t > 0:
                speeds.append(d / t)
            else:
                # idle processor: give it the mean observed speed so it can
                # re-enter the distribution
                speeds.append(0.0)
        if all(s == 0.0 for s in speeds):
            raise ValueError("no processor reported useful work")
        mean_speed = sum(speeds) / max(1, sum(1 for s in speeds if s > 0))
        speeds = [s if s > 0 else mean_speed for s in speeds]
        return _proportional_integer(speeds, total)


@dataclass(frozen=True)
class ThresholdRebalancer:
    """Rebalance only when observed imbalance exceeds ``threshold``."""

    threshold: float = 1.05
    inner: SpeedBasedRebalancer = field(default_factory=SpeedBasedRebalancer)

    def __post_init__(self) -> None:
        if self.threshold < 1.0:
            raise ValueError(
                f"threshold must be >= 1.0, got {self.threshold}"
            )

    def next_distribution(
        self, current: Sequence[int], times: Sequence[float], total: int
    ) -> list[int]:
        active = [t for d, t in zip(current, times) if d > 0]
        if active and max(active) / max(min(active), 1e-300) <= self.threshold:
            return list(current)
        return self.inner.next_distribution(current, times, total)


@dataclass(frozen=True)
class DynamicRunResult:
    """Timing breakdown of a dynamically balanced run."""

    compute_time: float
    migration_time: float
    blocks_migrated: int
    distributions: tuple[tuple[int, ...], ...]  # per iteration
    iteration_times: tuple[float, ...]

    @property
    def total_time(self) -> float:
        return self.compute_time + self.migration_time

    @property
    def final_distribution(self) -> tuple[int, ...]:
        return self.distributions[-1]

    @property
    def rebalance_count(self) -> int:
        return sum(
            1
            for a, b in zip(self.distributions, self.distributions[1:])
            if a != b
        )


def run_dynamic_balancing(
    time_of: Callable[[int, int], float],
    num_processors: int,
    total: int,
    iterations: int,
    policy: RebalancePolicy | None = None,
    migration_cost_per_block: float = 0.0,
    initial: Sequence[int] | None = None,
) -> DynamicRunResult:
    """Simulate an iterative application under dynamic load balancing.

    Parameters
    ----------
    time_of:
        ``time_of(processor_index, blocks)`` — seconds one processor needs
        for one iteration on ``blocks`` blocks (query the device models or
        an FPM here).
    num_processors, total, iterations:
        Shape of the run: ``total`` blocks redistributed over
        ``num_processors`` for ``iterations`` steps.
    policy:
        Rebalancing policy; defaults to :class:`ThresholdRebalancer`.
    migration_cost_per_block:
        Seconds per block moved between processors (data migration over the
        interconnect — the overhead static partitioning avoids).
    initial:
        Starting distribution; defaults to the homogeneous split, as
        dynamic balancers must start somewhere model-free.
    """
    check_positive("total", total)
    check_positive("iterations", iterations)
    check_nonnegative("migration_cost_per_block", migration_cost_per_block)
    if policy is None:
        policy = ThresholdRebalancer()
    if initial is None:
        base, extra = divmod(total, num_processors)
        current = [base + (1 if i < extra else 0) for i in range(num_processors)]
    else:
        current = list(initial)
        if len(current) != num_processors or sum(current) != total:
            raise ValueError(
                "initial distribution must cover all processors and sum to total"
            )

    compute = 0.0
    migration = 0.0
    moved = 0
    distributions = [tuple(current)]
    iteration_times = []
    for _ in range(iterations):
        times = [time_of(i, d) if d > 0 else 0.0 for i, d in enumerate(current)]
        step = max(times)
        compute += step
        iteration_times.append(step)
        nxt = policy.next_distribution(current, times, total)
        if nxt != current:
            delta = sum(abs(a - b) for a, b in zip(current, nxt)) // 2
            moved += delta
            migration += delta * migration_cost_per_block
            current = list(nxt)
            distributions.append(tuple(current))
    # freeze the distribution trace (the final entry is the steady state)
    return DynamicRunResult(
        compute_time=compute,
        migration_time=migration,
        blocks_migrated=moved,
        distributions=tuple(distributions),
        iteration_times=tuple(iteration_times),
    )
