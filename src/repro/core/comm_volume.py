"""Communication-volume accounting for the matrix arrangement.

At every iteration of the blocked multiplication each processor receives
the pieces of the pivot column overlapping its rows (``height`` blocks) and
the pieces of the pivot row overlapping its columns (``width`` blocks) —
unless it owns them.  Summed over processors the per-iteration volume is
(up to owned pieces) the sum of rectangle half-perimeters, the quantity the
column-based arrangement minimises and a 1D striped arrangement does not.
"""

from __future__ import annotations

from repro.core.geometry import ColumnPartition
from repro.util.units import blocks_to_bytes
from repro.util.validation import check_positive_int


def per_iteration_volume_blocks(partition: ColumnPartition) -> float:
    """Blocks received per iteration, summed over processors.

    Counts the half-perimeter of every non-empty rectangle; ownership of
    pivot pieces saves each owner a little, but the paper's metric (and
    the arrangement objective) is the plain half-perimeter sum.
    """
    return float(partition.total_half_perimeter())


def per_iteration_volume_bytes(
    partition: ColumnPartition, block_size: int
) -> float:
    """Per-iteration volume in single-precision bytes.

    A half-perimeter unit is one b x b block of pivot data.
    """
    check_positive_int("block_size", block_size)
    return blocks_to_bytes(per_iteration_volume_blocks(partition), block_size)


def total_volume_bytes(partition: ColumnPartition, block_size: int) -> float:
    """Volume of the whole application run: ``n`` iterations."""
    return partition.n * per_iteration_volume_bytes(partition, block_size)


def one_d_volume_blocks(allocations: list[int], n: int) -> float:
    """Half-perimeter sum of the naive 1D row-striped arrangement.

    Each processor owns a full-width strip: width ``n``, height
    ``alloc / n`` — the baseline the column-based arrangement beats.
    """
    check_positive_int("n", n)
    if sum(allocations) != n * n:
        raise ValueError(
            f"allocations sum to {sum(allocations)}, expected {n * n}"
        )
    return float(
        sum(n + a / n for a in allocations if a > 0)
    )


def volume_improvement(partition: ColumnPartition, allocations: list[int]) -> float:
    """1D-striped volume divided by the column-based volume (>= ~1)."""
    column = per_iteration_volume_blocks(partition)
    striped = one_d_volume_blocks(allocations, partition.n)
    if column == 0:
        raise ValueError("partition has no non-empty rectangles")
    return striped / column
