"""The paper's contribution: functional performance models and
FPM-based data partitioning.

Public surface:

* :class:`repro.core.speed_function.SpeedFunction` — piecewise-linear speed
  vs problem size, built empirically;
* :class:`repro.core.fpm.FunctionalPerformanceModel` — a named speed
  function with provenance metadata;
* :class:`repro.core.cpm.ConstantPerformanceModel` — the traditional
  constant-speed baseline;
* :class:`repro.core.solver.Solver` / :class:`repro.core.solver.SolverOptions`
  — the unified partitioning entry point every layer above core goes
  through;
* :func:`repro.core.partition.partition_fpm` /
  :func:`repro.core.partition.partition_cpm` /
  :func:`repro.core.partition.partition_homogeneous` — the three data
  partitioning algorithms compared in Section VI (``partition_fpm`` is
  the vectorized cluster-scale solver; ``partition_fpm_scalar`` is its
  bit-identical per-model reference oracle, ``partition_fpm_many`` the
  multi-target variant);
* :func:`repro.core.integer.round_partition` — integer block allocation;
* :func:`repro.core.geometry.column_based_partition` — the
  communication-minimising 2D matrix arrangement (Clarke et al. [17]);
* :mod:`repro.core.comm_volume` — communication-volume accounting;
* :mod:`repro.core.serialization` — JSON persistence of models.
"""

from repro.core.cpm import ConstantPerformanceModel
from repro.core.diagnostics import diagnose_partition
from repro.core.dynamic import run_dynamic_balancing
from repro.core.fitting import best_fit
from repro.core.fpm import FunctionalPerformanceModel
from repro.core.geometry import ColumnPartition, Rectangle, column_based_partition
from repro.core.hierarchical import (
    aggregate_speed_function,
    hierarchical_partition,
)
from repro.core.integer import refine_integer_partition, round_partition
from repro.core.partition import (
    balance_report,
    geometric_partition,
    partition_cpm,
    partition_fpm,
    partition_fpm_many,
    partition_fpm_scalar,
    partition_homogeneous,
)
from repro.core.scheduling import simulate_work_stealing
from repro.core.solver import SolveResult, Solver, SolverOptions
from repro.core.speed_function import SpeedFunction, SpeedSample
from repro.core.surface import SpeedSurface, area_slice, build_surface

__all__ = [
    "ConstantPerformanceModel",
    "diagnose_partition",
    "run_dynamic_balancing",
    "best_fit",
    "FunctionalPerformanceModel",
    "ColumnPartition",
    "Rectangle",
    "column_based_partition",
    "aggregate_speed_function",
    "hierarchical_partition",
    "refine_integer_partition",
    "round_partition",
    "balance_report",
    "geometric_partition",
    "partition_cpm",
    "partition_fpm",
    "partition_fpm_many",
    "partition_fpm_scalar",
    "partition_homogeneous",
    "simulate_work_stealing",
    "Solver",
    "SolverOptions",
    "SolveResult",
    "SpeedFunction",
    "SpeedSample",
    "SpeedSurface",
    "area_slice",
    "build_surface",
]
