"""Piecewise-linear speed functions — the representation behind FPMs.

The functional performance model represents processor speed as a continuous
function of problem size, "built empirically by measuring the execution
time" at a set of sizes (paper Section II).  Between samples we interpolate
linearly; before the first sample the speed is held at the first sample's
value; after the last sample it is held constant (the paper's extension of
out-of-core models "to infinity") unless the function is marked bounded, in
which case evaluation beyond the range is an error (plain in-core kernels).

The FPM partitioning algorithm of Lastovetsky & Reddy assumes that the
*time* function ``t(x) = x / s(x)`` is increasing.  Measured functions
usually satisfy this; :meth:`SpeedFunction.with_monotonic_time` repairs
those that do not by flattening speed spikes until the assumption holds
(the standard practical fix, applied by the authors' fupermod tool).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass

import numpy as np

from repro.util.validation import (
    check_nonnegative,
    check_positive,
)


@dataclass(frozen=True)
class SpeedSample:
    """One empirical point of a speed function.

    ``speed`` is in GFlops (or any consistent speed unit — the partitioner
    only uses ratios).  ``rel_precision`` records the measurement's
    confidence-interval half-width relative to the mean, when known.
    """

    size: float
    speed: float
    rel_precision: float = math.nan

    def __post_init__(self) -> None:
        check_positive("size", self.size)
        check_positive("speed", self.speed)


class SpeedFunction:
    """Continuous piecewise-linear speed ``s(x)`` built from samples.

    Parameters
    ----------
    samples:
        Empirical (size, speed) points; sizes must be strictly increasing.
    bounded:
        When True, evaluating beyond the last sample raises — the model is
        only defined for sizes that fit the device (in-core GPU kernels).
    """

    def __init__(self, samples: list[SpeedSample], bounded: bool = False):
        if not samples:
            raise ValueError("a speed function needs at least one sample")
        sizes = [s.size for s in samples]
        for a, b in zip(sizes, sizes[1:]):
            if not a < b:
                raise ValueError(
                    f"sample sizes must be strictly increasing, got {a} then {b}"
                )
        self._samples = tuple(samples)
        self._sizes = tuple(sizes)
        self._speeds = tuple(s.speed for s in samples)
        self.bounded = bool(bounded)

    # ------------------------------------------------------------------ api
    @property
    def samples(self) -> tuple[SpeedSample, ...]:
        return self._samples

    @property
    def min_size(self) -> float:
        return self._sizes[0]

    @property
    def max_size(self) -> float:
        return self._sizes[-1]

    def speed(self, size: float) -> float:
        """Interpolated speed at ``size`` (constant beyond the sampled ends)."""
        check_nonnegative("size", size)
        if size <= self._sizes[0]:
            return self._speeds[0]
        if size >= self._sizes[-1]:
            if self.bounded and size > self._sizes[-1] * (1 + 1e-12):
                raise ValueError(
                    f"size {size} beyond the bounded model range "
                    f"[0, {self._sizes[-1]}]"
                )
            return self._speeds[-1]
        i = bisect.bisect_right(self._sizes, size)
        x0, x1 = self._sizes[i - 1], self._sizes[i]
        s0, s1 = self._speeds[i - 1], self._speeds[i]
        w = (size - x0) / (x1 - x0)
        return s0 + w * (s1 - s0)

    def speed_batch(self, sizes) -> np.ndarray:
        """Vectorised :meth:`speed` over an array of sizes.

        ``np.interp`` clamps to the end samples, which matches the scalar
        extension semantics exactly; bounded models still reject sizes
        beyond their range.  Used by the hot sweep paths (monotonicity
        checks, curve fitting, figure grids) where a Python-level loop of
        bisect calls dominates the profile.
        """
        xs = np.asarray(sizes, dtype=float)
        if xs.size and float(xs.min()) < 0.0:
            raise ValueError("sizes must be non-negative")
        if (
            self.bounded
            and xs.size
            and float(xs.max()) > self._sizes[-1] * (1 + 1e-12)
        ):
            raise ValueError(
                f"size {float(xs.max())} beyond the bounded model range "
                f"[0, {self._sizes[-1]}]"
            )
        return np.interp(xs, self._sizes_array(), self._speeds_array())

    def time_batch(self, sizes) -> np.ndarray:
        """Vectorised :meth:`time`: ``x / s(x)`` elementwise, 0 at x=0."""
        xs = np.asarray(sizes, dtype=float)
        speeds = self.speed_batch(xs)
        out = np.zeros_like(xs, dtype=float)
        np.divide(xs, speeds, out=out, where=xs > 0.0)
        return out

    def _sizes_array(self) -> np.ndarray:
        cached = getattr(self, "_sizes_array_cache", None)
        if cached is None:
            cached = np.asarray(self._sizes, dtype=float)
            object.__setattr__(self, "_sizes_array_cache", cached)
        return cached

    def _speeds_array(self) -> np.ndarray:
        cached = getattr(self, "_speeds_array_cache", None)
        if cached is None:
            cached = np.asarray(self._speeds, dtype=float)
            object.__setattr__(self, "_speeds_array_cache", cached)
        return cached

    def time(self, size: float) -> float:
        """Execution time in *size units per speed unit*: ``t(x) = x / s(x)``.

        With speed in GFlops and size in b x b blocks this is proportional
        to wall-clock seconds (one kernel run does ``2 b^3`` flops per
        block); the partitioner equalises it across processors, and any
        common factor cancels.
        """
        check_nonnegative("size", size)
        if size == 0.0:
            return 0.0
        return size / self.speed(size)

    def max_size_within_time(self, budget: float) -> float:
        """Largest ``x`` with ``t(x) <= budget`` (inverse of the time function).

        Assumes a monotonically increasing time function (see
        :meth:`is_time_monotonic`); for bounded models the answer is capped
        at the model range.

        On monotone functions the inverse is computed *exactly*: time is
        piecewise rational on the piecewise-linear speed segments, so the
        segment is found by bisecting the knot times and the equation
        ``x / (s0 + m (x - x0)) = T`` solved in closed form.  Functions
        whose knot times are not non-decreasing fall back to numerical
        bisection.
        """
        check_nonnegative("budget", budget)
        if budget == 0.0:
            return 0.0
        knot_times = self._knot_times()
        if knot_times is not None:
            return self._invert_time_exact(budget, knot_times)
        return self._invert_time_bisect(budget)

    def _knot_times(self) -> tuple[float, ...] | None:
        """Times at the sample knots, or None if not non-decreasing."""
        cached = getattr(self, "_knot_times_cache", False)
        if cached is not False:
            return cached
        times = tuple(x / s for x, s in zip(self._sizes, self._speeds))
        result: tuple[float, ...] | None = times
        for a, b in zip(times, times[1:]):
            if b < a * (1.0 - 1e-12):
                result = None
                break
        object.__setattr__(self, "_knot_times_cache", result)
        return result

    def _invert_time_exact(
        self, budget: float, knot_times: tuple[float, ...]
    ) -> float:
        hi_cap = self._sizes[-1] if self.bounded else math.inf
        if budget <= knot_times[0]:
            # constant-speed head: t(x) = x / s0
            return min(budget * self._speeds[0], self._sizes[0])
        if budget >= knot_times[-1]:
            if self.bounded:
                return hi_cap
            # constant-speed tail
            return max(self._sizes[-1], budget * self._speeds[-1])
        seg = bisect.bisect_right(knot_times, budget) - 1
        seg = min(max(seg, 0), len(self._sizes) - 2)
        x0, x1 = self._sizes[seg], self._sizes[seg + 1]
        s0, s1 = self._speeds[seg], self._speeds[seg + 1]
        m = (s1 - s0) / (x1 - x0)
        # solve x = budget * (s0 + m (x - x0))
        denom = 1.0 - budget * m
        if abs(denom) < 1e-300:
            return x1
        x = budget * (s0 - m * x0) / denom
        return min(max(x, x0), x1)

    def _invert_time_bisect(self, budget: float) -> float:
        # memoised per instance: the partitioners re-query the same budgets
        # (the final bracket repeats the best midpoint), and a repeated
        # budget must return the identical allocation anyway
        cache = getattr(self, "_invert_cache", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_invert_cache", cache)
        hit = cache.get(budget)
        if hit is not None:
            return hit
        hi_cap = self._sizes[-1] if self.bounded else math.inf
        hi = max(1.0, self._sizes[0])
        while self.time(hi) <= budget:
            if hi >= hi_cap:
                return hi_cap
            hi = min(hi * 2.0, hi_cap)
        lo = 0.0
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self.time(mid) <= budget:
                lo = mid
            else:
                hi = mid
            if hi - lo <= 1e-12 * max(1.0, hi):
                break
        if len(cache) > 1024:
            cache.clear()
        cache[budget] = lo
        return lo

    def size_at_ray(self, slope: float, cap: float = math.inf) -> float:
        """Intersection of the speed curve with the ray ``s = slope * x``.

        This is the geometric partitioning primitive of [5]: the ray's
        inverse slope is an execution time, and the intersection is the
        workload finishing exactly in that time.  On monotone-time
        functions the root is computed *exactly* — the ratio
        ``s(x) / x = 1 / t(x)`` is non-increasing, so the crossing
        segment is found by bisecting the knot ratios and the linear
        equation solved in closed form.  Non-monotone functions fall back
        to numerical bisection.  ``cap`` bounds the answer (device
        capacity); bounded models never exceed their sampled range.
        """
        check_positive("slope", slope)
        if self._knot_times() is not None:
            return self._ray_exact(slope, cap)
        return self._ray_bisect(slope, cap)

    def _ray_exact(self, slope: float, cap: float) -> float:
        ratios = getattr(self, "_ray_ratios_cache", None)
        if ratios is None:
            # negated knot ratios are non-decreasing -> bisect-compatible
            ratios = tuple(-s / x for x, s in zip(self._sizes, self._speeds))
            object.__setattr__(self, "_ray_ratios_cache", ratios)
        if slope >= -ratios[0]:
            # constant-speed head: s(x) = s0, crossing at s0 / slope
            return min(self._speeds[0] / slope, self._sizes[0], cap)
        if slope <= -ratios[-1]:
            if self.bounded:
                return min(self._sizes[-1], cap)
            # constant-speed tail
            return min(self._speeds[-1] / slope, cap)
        seg = bisect.bisect_right(ratios, -slope) - 1
        seg = min(max(seg, 0), len(self._sizes) - 2)
        x0, x1 = self._sizes[seg], self._sizes[seg + 1]
        s0, s1 = self._speeds[seg], self._speeds[seg + 1]
        m = (s1 - s0) / (x1 - x0)
        # solve slope * x = s0 + m (x - x0)
        denom = slope - m
        if abs(denom) < 1e-300:
            return min(x1, cap)
        x = (s0 - m * x0) / denom
        return min(max(x, x0), x1, cap)

    def _ray_bisect(self, slope: float, cap: float) -> float:
        limit = cap if math.isfinite(cap) else 1e18
        if self.bounded:
            limit = min(limit, self._sizes[-1])
        hi = max(1.0, self._sizes[0])
        while slope * hi < self.speed(hi):
            if hi >= limit:
                return limit
            hi = min(hi * 2.0, limit)
        lo = 0.0
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if slope * mid < self.speed(mid):
                lo = mid
            else:
                hi = mid
            if hi - lo <= 1e-12 * max(1.0, hi):
                break
        return hi

    def is_time_monotonic(self, grid_points: int = 512) -> bool:
        """Check (numerically) that ``t(x)`` is non-decreasing on the range.

        Piecewise-linear speed makes time piecewise smooth; checking on the
        sample grid plus a refinement grid is exact enough in practice
        because the only way time decreases is a speed segment rising
        faster than linearly through the origin — visible at segment ends.
        """
        xs = list(self._sizes)
        lo, hi = self._sizes[0], self._sizes[-1]
        if grid_points > 0 and hi > lo:
            step = (hi - lo) / grid_points
            xs.extend(lo + i * step for i in range(1, grid_points))
        xs.sort()
        times = self.time_batch(xs)
        return not bool(np.any(times[1:] < times[:-1] * (1.0 - 1e-12)))

    def with_monotonic_time(self) -> "SpeedFunction":
        """A repaired copy whose time function is non-decreasing.

        Sweeping sizes upward, any sample whose speed rise would make
        ``t(x) = x / s(x)`` dip below the running maximum is clipped to the
        largest speed that keeps time non-decreasing: ``s_i <= x_i / t_max``.
        """
        repaired: list[SpeedSample] = []
        t_max = 0.0
        for sample in self._samples:
            cap = sample.size / t_max if t_max > 0 else math.inf
            speed = min(sample.speed, cap)
            t_max = max(t_max, sample.size / speed)
            repaired.append(
                SpeedSample(sample.size, speed, sample.rel_precision)
            )
        return SpeedFunction(repaired, bounded=self.bounded)

    def scaled(self, factor: float) -> "SpeedFunction":
        """A copy with every speed multiplied by ``factor`` (> 0)."""
        check_positive("factor", factor)
        return SpeedFunction(
            [
                SpeedSample(s.size, s.speed * factor, s.rel_precision)
                for s in self._samples
            ],
            bounded=self.bounded,
        )

    @classmethod
    def constant(cls, speed: float, size: float = 1.0) -> "SpeedFunction":
        """A degenerate single-sample function — a CPM seen as an FPM."""
        return cls([SpeedSample(size, speed)])

    @classmethod
    def from_points(
        cls,
        sizes: list[float],
        speeds: list[float],
        bounded: bool = False,
    ) -> "SpeedFunction":
        """Build from parallel size/speed lists."""
        if len(sizes) != len(speeds):
            raise ValueError(
                f"sizes and speeds must have equal length "
                f"({len(sizes)} != {len(speeds)})"
            )
        return cls(
            [SpeedSample(x, s) for x, s in zip(sizes, speeds)], bounded=bounded
        )

    # -------------------------------------------------------------- dunders
    def __len__(self) -> int:
        return len(self._samples)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SpeedFunction({len(self._samples)} samples, "
            f"range [{self.min_size}, {self.max_size}], "
            f"bounded={self.bounded})"
        )
