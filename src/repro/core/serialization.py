"""JSON persistence of performance models.

FPMs are expensive to build (many reliable measurements), so like the
authors' fupermod tool the library persists them; a model built once on a
platform can drive any number of partitioning runs.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.core.cpm import ConstantPerformanceModel
from repro.core.fpm import FunctionalPerformanceModel
from repro.core.speed_function import SpeedFunction, SpeedSample

_FORMAT_VERSION = 1


def fpm_to_dict(model: FunctionalPerformanceModel) -> dict:
    """JSON-ready representation of an FPM."""
    return {
        "format": _FORMAT_VERSION,
        "type": "fpm",
        "name": model.name,
        "kernel": model.kernel_name,
        "block_size": model.block_size,
        "repetitions_total": model.repetitions_total,
        "bounded": model.speed_function.bounded,
        "samples": [
            {
                "size": s.size,
                "speed": s.speed,
                **(
                    {"rel_precision": s.rel_precision}
                    if not math.isnan(s.rel_precision)
                    else {}
                ),
            }
            for s in model.speed_function.samples
        ],
    }


def fpm_from_dict(data: dict) -> FunctionalPerformanceModel:
    """Inverse of :func:`fpm_to_dict` (validates the payload)."""
    if data.get("type") != "fpm":
        raise ValueError(f"not an FPM payload: type={data.get('type')!r}")
    if data.get("format") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported model format {data.get('format')!r}; "
            f"this library reads version {_FORMAT_VERSION}"
        )
    samples = [
        SpeedSample(
            size=float(s["size"]),
            speed=float(s["speed"]),
            rel_precision=float(s.get("rel_precision", math.nan)),
        )
        for s in data["samples"]
    ]
    return FunctionalPerformanceModel(
        name=str(data["name"]),
        speed_function=SpeedFunction(samples, bounded=bool(data.get("bounded", False))),
        kernel_name=str(data.get("kernel", "")),
        block_size=int(data.get("block_size", 640)),
        repetitions_total=int(data.get("repetitions_total", 0)),
    )


def cpm_to_dict(model: ConstantPerformanceModel) -> dict:
    """JSON-ready representation of a CPM."""
    payload = {
        "format": _FORMAT_VERSION,
        "type": "cpm",
        "name": model.name,
        "kernel": model.kernel_name,
        "speed": model.speed,
    }
    if not math.isnan(model.calibration_size):
        payload["calibration_size"] = model.calibration_size
    return payload


def cpm_from_dict(data: dict) -> ConstantPerformanceModel:
    """Inverse of :func:`cpm_to_dict`."""
    if data.get("type") != "cpm":
        raise ValueError(f"not a CPM payload: type={data.get('type')!r}")
    return ConstantPerformanceModel(
        name=str(data["name"]),
        speed=float(data["speed"]),
        kernel_name=str(data.get("kernel", "")),
        calibration_size=float(data.get("calibration_size", math.nan)),
    )


def save_models(path: str | Path, models: list) -> None:
    """Write a list of FPMs/CPMs to a JSON file."""
    payload = []
    for m in models:
        if isinstance(m, FunctionalPerformanceModel):
            payload.append(fpm_to_dict(m))
        elif isinstance(m, ConstantPerformanceModel):
            payload.append(cpm_to_dict(m))
        else:
            raise TypeError(f"cannot serialise {type(m).__name__}")
    Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")


def load_models(path: str | Path) -> list:
    """Read a list of FPMs/CPMs from a JSON file."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, list):
        raise ValueError("model file must contain a JSON list")
    out = []
    for item in payload:
        kind = item.get("type")
        if kind == "fpm":
            out.append(fpm_from_dict(item))
        elif kind == "cpm":
            out.append(cpm_from_dict(item))
        else:
            raise ValueError(f"unknown model type {kind!r}")
    return out
