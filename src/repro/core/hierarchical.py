"""Hierarchical (cluster-level) FPM partitioning.

The paper treats one hybrid node as a distributed-memory system; its
companion work (reference [6]) partitions *between* nodes of a
heterogeneous cluster using each node's own FPM.  This module provides the
two building blocks:

* :func:`aggregate_speed_function` — a whole node's speed function derived
  from its compute units' models: at total size ``x`` the node, internally
  balanced by FPM partitioning, finishes in ``T(x)``, so its aggregate
  speed is ``x / T(x)``.  This is the model a cluster-level partitioner
  sees.
* :func:`hierarchical_partition` — two-level partitioning: split the
  global workload between nodes using the aggregate models, then split
  each node's share between its units.

A useful invariant (tested): because FPM partitioning equalises times at
both levels, the hierarchical solution coincides with flat partitioning
over the union of all units — hierarchy changes the *cost* of modelling
and partitioning (linear in nodes instead of units), not the answer.

Cluster scale.  A 1000-node × 10-device solve never runs 1000 × 24
aggregate partitionings: every aggregation solves its whole sample grid
in one masked multi-target search
(:func:`repro.core.partition.partition_fpm_many`), nodes with identical
unit models (the common case — clusters are built from a few SKUs) share
one aggregate via a structural signature, and the per-node fan-out
deduplicates by ``(signature, share)`` so identical nodes with identical
shares are solved once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.fpm import as_speed_function
from repro.core.integer import round_partition
from repro.core.partition import (
    FPM_MAX_ITERS,
    FPM_TOLERANCE,
    partition_fpm,
    partition_fpm_many,
)
from repro.core.batch import batch_models
from repro.core.speed_function import SpeedFunction, SpeedSample
from repro.obs import get_tracer
from repro.util.validation import check_positive, check_positive_int


def _signature(fns: list[SpeedFunction]) -> tuple:
    """A node's structural identity: its units' exact sample data.

    Nodes with equal signatures have equal aggregate models and receive
    equal solutions for equal shares, so both the aggregation and the
    fan-out deduplicate on this key.
    """
    return tuple((fn._sizes, fn._speeds, fn.bounded) for fn in fns)


def aggregate_speed_function(
    models: list,
    sizes: list[float],
    *,
    tolerance: float = FPM_TOLERANCE,
    max_iters: int = FPM_MAX_ITERS,
) -> SpeedFunction:
    """A node's aggregate speed function from its units' models.

    For each sampled total ``x`` the units are balanced by FPM
    partitioning — all sample sizes in **one** multi-target solve — and
    the node's speed is the total divided by the common finish time.
    Bounded unit models bound the aggregate only when *every* unit is
    bounded.
    """
    if not models:
        raise ValueError("need at least one unit model")
    if not sizes:
        raise ValueError("need at least one sample size")
    fns = [as_speed_function(m) for m in models]
    capacity = sum(
        fn.max_size if fn.bounded else float("inf") for fn in fns
    )
    tracer = get_tracer()
    with tracer.span(
        "partition.aggregate",
        category="partition",
        units=len(fns),
        grid_points=len(sizes),
    ) as span:
        grid = []
        for x in sorted(set(sizes)):
            check_positive("sample size", x)
            if x > capacity:
                break
            grid.append(float(x))
        if not grid:
            raise ValueError(
                "no sample size fits the node's combined capacity"
            )
        rows = partition_fpm_many(
            fns, grid, tolerance=tolerance, max_iters=max_iters
        )
        batch = batch_models(tuple(fns))
        samples = []
        for x, allocs in zip(grid, rows):
            times = batch.times_at(allocs)
            finish = float(max(t for t, a in zip(times, allocs) if a > 0))
            samples.append(SpeedSample(size=x, speed=x / finish))
        span.set_attr("samples", len(samples))
        return SpeedFunction(samples, bounded=capacity != float("inf"))


@dataclass(frozen=True)
class HierarchicalPartition:
    """The two-level result: blocks per node, and per unit within nodes."""

    node_allocations: tuple[int, ...]
    unit_allocations: tuple[tuple[int, ...], ...]

    @property
    def flat(self) -> list[int]:
        """All unit allocations, in node order."""
        return [a for node in self.unit_allocations for a in node]

    def __post_init__(self) -> None:
        for node_alloc, units in zip(self.node_allocations, self.unit_allocations):
            if sum(units) != node_alloc:
                raise ValueError(
                    f"unit allocations {units} do not sum to the node's "
                    f"{node_alloc}"
                )


def hierarchical_partition(
    node_unit_models: list[list],
    total: int,
    aggregate_samples: int = 24,
    *,
    tolerance: float = FPM_TOLERANCE,
    max_iters: int = FPM_MAX_ITERS,
) -> HierarchicalPartition:
    """Two-level FPM partitioning of ``total`` blocks across a cluster.

    Parameters
    ----------
    node_unit_models:
        One list of unit models (FPMs / speed functions / constants) per
        node.
    total:
        Global workload in blocks.
    aggregate_samples:
        Sample count for each node's aggregate speed function; sampled
        geometrically up to ``total``.
    tolerance / max_iters:
        Convergence knobs forwarded to every FPM solve.
    """
    check_positive_int("total", total)
    check_positive_int("aggregate_samples", aggregate_samples)
    if not node_unit_models:
        raise ValueError("need at least one node")

    tracer = get_tracer()
    with tracer.span(
        "partition.hierarchical",
        category="partition",
        nodes=len(node_unit_models),
        total=total,
    ) as span:
        # geometric sample grid up to the full workload
        lo, hi = max(1.0, total / 512.0), float(total)
        if aggregate_samples == 1 or lo >= hi:
            grid = [hi]
        else:
            ratio = (hi / lo) ** (1.0 / (aggregate_samples - 1))
            grid = [lo * ratio**i for i in range(aggregate_samples)]

        # one aggregate per distinct node build, shared across the fleet
        node_fns = [
            [as_speed_function(m) for m in units] for units in node_unit_models
        ]
        signatures = [_signature(fns) for fns in node_fns]
        aggregate_of: dict[tuple, SpeedFunction] = {}
        for fns, sig in zip(node_fns, signatures):
            if sig not in aggregate_of:
                aggregate_of[sig] = aggregate_speed_function(
                    fns, grid, tolerance=tolerance, max_iters=max_iters
                )
        span.set_attr("distinct_nodes", len(aggregate_of))

        node_models = [aggregate_of[sig] for sig in signatures]
        continuous = partition_fpm(
            node_models, float(total), tolerance=tolerance, max_iters=max_iters
        )
        node_allocs = round_partition(node_models, continuous, total)
        if tracer.enabled:
            for share in node_allocs:
                tracer.gauge("partition.hierarchical.node_blocks").set(share)

        # fan out each node's share to its units; identical nodes with
        # identical shares share one inner solve
        inner_of: dict[tuple, tuple[int, ...]] = {}
        unit_allocs = []
        for fns, sig, share in zip(node_fns, signatures, node_allocs):
            if share == 0:
                unit_allocs.append(tuple(0 for _ in fns))
                continue
            key = (sig, share)
            found = inner_of.get(key)
            if found is None:
                inner = partition_fpm(
                    fns, float(share), tolerance=tolerance, max_iters=max_iters
                )
                found = tuple(round_partition(fns, inner, share))
                inner_of[key] = found
            unit_allocs.append(found)
        span.set_attr("fanout_solves", len(inner_of))
        return HierarchicalPartition(
            node_allocations=tuple(node_allocs),
            unit_allocations=tuple(unit_allocs),
        )
