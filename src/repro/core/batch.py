"""Batched speed-model evaluation — the cluster-scale solver's engine room.

The FPM partitioner's inner loop asks one question of every model: *how
much work finishes within time T?*  Answered per model in Python (the
pre-vectorisation :func:`repro.core.partition.partition_fpm`), a
10 000-device solve spends its whole budget on interpreter overhead.
This module answers it for **all models at once**: one NumPy
ray-intersection per solver iteration, following the cluster extension of
the FPM method (Lastovetsky/Reddy/Rychkov/Clarke, arXiv:1109.3074).

The piecewise-linear speed function makes the *time* function piecewise
rational, so each model's inverse time is closed-form once the crossing
segment is known.  :class:`BatchSpeedModels` precomputes, per model, an
**augmented segment table** — head, interior and tail segments in a
uniform ``x(T) = clip(T * a / (1 - T * b), lo, hi)`` shape — and stacks
the tables into padded matrices.  Evaluating all models at a finish time
``T`` is then: count crossed knots (one comparison over the knot-time
matrix), gather each model's active row of the table (one fancy index),
and apply the closed form elementwise.

Bit-identity contract
---------------------
Every kernel here has a scalar twin (:func:`allocation_row_at`,
:func:`time_row_at`) that performs the *same* floating-point operations
in the *same* order on one model.  The scalar partitioner
(:func:`repro.core.partition.partition_fpm_scalar`, the reference
oracle) walks models with the twins; the vectorised partitioner uses the
matrix kernels — and the two are **bit-identical** on every input, which
the property suite enforces.  When touching a formula here, change both
twins or the identity tests will fail.

Models whose knot times are not non-decreasing (no monotone time
function, so no well-defined closed-form inverse) fall back to
:meth:`SpeedFunction.max_size_within_time` in *both* paths — identical
by construction, merely not vectorised; measured models are repaired
monotone before partitioning, so this path is cold.
"""

from __future__ import annotations

import math
from collections import OrderedDict

import numpy as np

from repro.core.speed_function import SpeedFunction

#: Denominators below this are treated as the segment's vertical asymptote
#: (allocation pinned to the segment's upper end) in both twins.
_TINY_DENOM = 1e-300

#: Retained batch representations; keyed by model-tuple identity so the
#: repeated solves of benchmarks, services and hierarchical fan-outs skip
#: the stacking step.  Bounded, so long-lived processes cannot leak.
_BATCH_CACHE_CAPACITY = 64
_batch_cache: OrderedDict[tuple, "BatchSpeedModels"] = OrderedDict()


def asum(values) -> float:
    """The solver's canonical summation: NumPy pairwise reduction.

    Both the scalar oracle and the vectorised solver total allocations
    through this one helper, so their convergence decisions compare the
    *same* float regardless of which path produced the addends.
    """
    return float(np.add.reduce(np.asarray(values, dtype=float)))


# --------------------------------------------------------------- model rows
def _row_params(fn: SpeedFunction):
    """Per-model solver row, cached on the speed function.

    Returns ``(sizes, speeds, knot_times, table, monotone)`` where
    ``table`` is the augmented segment table of shape ``(m + 1, 4)`` with
    columns ``a, b, lo, hi``; row ``k`` is the active segment when
    exactly ``k`` knot times lie strictly below the queried finish time:

    * ``k == 0`` — constant-speed head: ``x = T * s0`` capped at the
      first sample;
    * ``1 <= k <= m - 1`` — interior segment ``k - 1`` solved in closed
      form (``b`` is the speed slope, ``a`` the intercept);
    * ``k == m`` — tail: the bounded model's full range, or the
      constant-speed extension to infinity.
    """
    cached = getattr(fn, "_solver_row_cache", None)
    if cached is not None:
        return cached
    sizes = fn._sizes_array()
    speeds = fn._speeds_array()
    knot_times = sizes / speeds
    m = sizes.size
    table = np.empty((m + 1, 4), dtype=float)
    # head
    table[0] = (speeds[0], 0.0, 0.0, sizes[0])
    if m > 1:
        slope = (speeds[1:] - speeds[:-1]) / (sizes[1:] - sizes[:-1])
        intercept = speeds[:-1] - slope * sizes[:-1]
        table[1:m, 0] = intercept
        table[1:m, 1] = slope
        table[1:m, 2] = sizes[:-1]
        table[1:m, 3] = sizes[1:]
    # tail
    if fn.bounded:
        table[m] = (0.0, 0.0, sizes[-1], sizes[-1])
    else:
        table[m] = (speeds[-1], 0.0, sizes[-1], math.inf)
    monotone = bool(np.all(knot_times[1:] >= knot_times[:-1] * (1.0 - 1e-12)))
    row = (sizes, speeds, knot_times, table, monotone)
    object.__setattr__(fn, "_solver_row_cache", row)
    return row


def allocation_row_at(fn: SpeedFunction, finish_time: float) -> float:
    """Scalar twin of the batched allocation kernel (one model, one T).

    Must mirror :meth:`BatchSpeedModels.allocations_at` operation for
    operation — the bit-identity tests compare the two directly.
    """
    sizes, _, knot_times, table, monotone = _row_params(fn)
    if not monotone:
        cap = sizes[-1] if fn.bounded else math.inf
        return min(fn.max_size_within_time(finish_time), cap)
    k = int((knot_times < finish_time).sum())
    a, b, lo, hi = table[k]
    denom = 1.0 - finish_time * b
    if abs(denom) < _TINY_DENOM:
        x = hi
    else:
        x = finish_time * a / denom
    return min(max(x, lo), hi)


def time_row_at(fn: SpeedFunction, size: float) -> float:
    """Scalar twin of the batched time kernel: ``t(x) = x / s(x)``."""
    if size <= 0.0:
        return 0.0
    sizes, speeds, _, _, _ = _row_params(fn)
    k = int((sizes < size).sum())
    if k == 0:
        s = speeds[0]
    elif k == sizes.size:
        s = speeds[-1]
    else:
        x0, x1 = sizes[k - 1], sizes[k]
        s0, s1 = speeds[k - 1], speeds[k]
        s = s0 + ((size - x0) / (x1 - x0)) * (s1 - s0)
    return size / s


class BatchSpeedModels:
    """Stacked solver rows of a model set; one matrix query per iteration.

    Build through :func:`batch_models`, which memoises by model identity
    — services and benchmarks re-partitioning one model set pay the
    stacking cost once.
    """

    __slots__ = (
        "fns",
        "count",
        "_kt",
        "_sizes",
        "_speeds",
        "_table",
        "_rows",
        "_caps",
        "_nseg",
        "_irregular",
        "_s_first",
        "_s_last",
    )

    def __init__(self, fns: tuple[SpeedFunction, ...]):
        if not fns:
            raise ValueError("need at least one speed function")
        self.fns = fns
        p = len(fns)
        self.count = p
        rows = [_row_params(fn) for fn in fns]
        m_max = max(r[0].size for r in rows)
        # Padding never participates: +inf knots are never "crossed", and
        # table rows past a model's own tail are never selected.  A second
        # column keeps the time kernel's interior gather in bounds for
        # single-sample models (its result is overridden anyway).
        m_pad = max(m_max, 2)
        self._kt = np.full((p, m_pad), np.inf)
        self._sizes = np.full((p, m_pad), np.inf)
        self._speeds = np.zeros((p, m_pad))
        self._table = np.zeros((p, m_max + 1, 4))
        self._nseg = np.empty(p, dtype=np.intp)
        caps = np.empty(p, dtype=float)
        irregular = []
        for i, (fn, (sizes, speeds, knot_times, table, monotone)) in enumerate(
            zip(fns, rows)
        ):
            m = sizes.size
            self._kt[i, :m] = knot_times
            self._sizes[i, :m] = sizes
            self._speeds[i, :m] = speeds
            self._table[i, : m + 1] = table
            self._nseg[i] = m
            caps[i] = sizes[-1] if fn.bounded else np.inf
            if not monotone:
                irregular.append(i)
        self._caps = caps
        self._rows = np.arange(p)
        self._irregular = tuple(irregular)
        self._s_first = self._speeds[:, 0].copy()
        self._s_last = np.array([r[1][-1] for r in rows])

    @property
    def caps(self) -> np.ndarray:
        """Per-model capacity (max size for bounded models, else +inf)."""
        return self._caps

    # ----------------------------------------------------- incremental clone
    def with_updates(
        self, replacements=None, dropped=()
    ) -> "BatchSpeedModels":
        """A derived batch with some rows replaced and/or removed.

        ``replacements`` maps model index to its new
        :class:`SpeedFunction`; ``dropped`` lists indices to remove (a
        failed device, say).  Only the affected rows are rebuilt — the
        rest of the stacked matrices are copied wholesale — so a
        10 000-device re-solve after a handful of model refreshes skips
        the per-model Python stacking loop entirely.  Every kernel of the
        result is **bit-identical** to a fresh
        ``BatchSpeedModels(new_fns)``: row padding beyond a model's own
        samples never participates in any kernel (+inf knots are never
        crossed, rows past the tail are never gathered), so inheriting
        the parent's padding width is harmless.  A replacement with more
        samples than the parent's padding can hold falls back to the full
        rebuild — identical by construction, merely not incremental.

        Returns ``self`` unchanged when there is nothing to do.
        """
        reps: dict[int, SpeedFunction] = {}
        for i, fn in (replacements or {}).items():
            idx = int(i)
            if not 0 <= idx < self.count:
                raise ValueError(
                    f"replacement index {idx} out of range for "
                    f"{self.count} models"
                )
            reps[idx] = fn
        drop = sorted({int(i) for i in dropped})
        for i in drop:
            if not 0 <= i < self.count:
                raise ValueError(
                    f"dropped index {i} out of range for {self.count} models"
                )
            if i in reps:
                raise ValueError(f"index {i} is both replaced and dropped")
        if len(drop) >= self.count:
            raise ValueError("cannot drop every model")
        if not reps and not drop:
            return self

        fns = list(self.fns)
        new_rows = {i: _row_params(fn) for i, fn in reps.items()}
        m_max = self._table.shape[1] - 1
        if any(r[0].size > m_max for r in new_rows.values()):
            for i, fn in reps.items():
                fns[i] = fn
            for i in reversed(drop):
                del fns[i]
            return BatchSpeedModels(tuple(fns))

        kt = self._kt.copy()
        sizes_ = self._sizes.copy()
        speeds = self._speeds.copy()
        table = self._table.copy()
        nseg = self._nseg.copy()
        caps = self._caps.copy()
        s_first = self._s_first.copy()
        s_last = self._s_last.copy()
        irregular = set(self._irregular)
        for i, fn in reps.items():
            sizes, spd, knot_times, row_table, monotone = new_rows[i]
            m = sizes.size
            kt[i] = np.inf
            kt[i, :m] = knot_times
            sizes_[i] = np.inf
            sizes_[i, :m] = sizes
            speeds[i] = 0.0
            speeds[i, :m] = spd
            table[i] = 0.0
            table[i, : m + 1] = row_table
            nseg[i] = m
            caps[i] = sizes[-1] if fn.bounded else np.inf
            s_first[i] = spd[0]
            s_last[i] = spd[-1]
            fns[i] = fn
            irregular.discard(i)
            if not monotone:
                irregular.add(i)
        if drop:
            keep = np.ones(self.count, dtype=bool)
            keep[drop] = False
            kt = kt[keep]
            sizes_ = sizes_[keep]
            speeds = speeds[keep]
            table = table[keep]
            nseg = nseg[keep]
            caps = caps[keep]
            s_first = s_first[keep]
            s_last = s_last[keep]
            gone = set(drop)
            remap = {}
            j = 0
            for i in range(self.count):
                if i not in gone:
                    remap[i] = j
                    j += 1
            irregular = {remap[i] for i in irregular if i not in gone}
            fns = [fn for i, fn in enumerate(fns) if i not in gone]

        clone = object.__new__(BatchSpeedModels)
        clone.fns = tuple(fns)
        clone.count = len(fns)
        clone._kt = kt
        clone._sizes = sizes_
        clone._speeds = speeds
        clone._table = table
        clone._nseg = nseg
        clone._caps = caps
        clone._rows = np.arange(len(fns))
        clone._irregular = tuple(sorted(irregular))
        clone._s_first = s_first
        clone._s_last = s_last
        return clone

    # ------------------------------------------------------------ kernels
    def allocations_at(self, finish_time: float) -> np.ndarray:
        """Every model's largest workload finishing within ``finish_time``.

        The vectorised twin of :func:`allocation_row_at`: one knot-count,
        one gather, one closed-form evaluation — regardless of model
        count.
        """
        counts = (self._kt < finish_time).sum(axis=1)
        sel = self._table[self._rows, counts]
        b = sel[:, 1]
        lo = sel[:, 2]
        hi = sel[:, 3]
        denom = 1.0 - finish_time * b
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            x = finish_time * sel[:, 0] / denom
        x = np.where(np.abs(denom) < _TINY_DENOM, hi, x)
        x = np.minimum(np.maximum(x, lo), hi)
        for i in self._irregular:
            fn = self.fns[i]
            x[i] = min(fn.max_size_within_time(finish_time), self._caps[i])
        return x

    def allocations_at_many(self, finish_times: np.ndarray) -> np.ndarray:
        """:meth:`allocations_at` for a vector of finish times.

        Returns the ``(len(finish_times), count)`` allocation matrix;
        row ``g`` is bit-identical to ``allocations_at(finish_times[g])``
        (broadcast elementwise arithmetic — same operations per element).
        """
        ts = np.asarray(finish_times, dtype=float)
        counts = (self._kt[None, :, :] < ts[:, None, None]).sum(axis=2)
        sel = self._table[self._rows[None, :], counts]
        b = sel[:, :, 1]
        lo = sel[:, :, 2]
        hi = sel[:, :, 3]
        t_col = ts[:, None]
        denom = 1.0 - t_col * b
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            x = t_col * sel[:, :, 0] / denom
        x = np.where(np.abs(denom) < _TINY_DENOM, hi, x)
        x = np.minimum(np.maximum(x, lo), hi)
        for i in self._irregular:
            fn = self.fns[i]
            cap = self._caps[i]
            for g, t in enumerate(ts):
                x[g, i] = min(fn.max_size_within_time(float(t)), cap)
        return x

    def total_allocation(self, finish_time: float) -> float:
        """Summed :meth:`allocations_at` via the canonical reduction."""
        return asum(self.allocations_at(finish_time))

    def times_at(self, sizes) -> np.ndarray:
        """Per-model execution time at per-model sizes (the bracket seed).

        Vectorised twin of :func:`time_row_at` — element ``i`` is that
        scalar call on model ``i``.
        """
        xs = np.asarray(sizes, dtype=float)
        counts = (self._sizes < xs[:, None]).sum(axis=1)
        ki = np.clip(counts, 1, np.maximum(self._nseg - 1, 1))
        x0 = self._sizes[self._rows, ki - 1]
        x1 = self._sizes[self._rows, ki]
        s0 = self._speeds[self._rows, ki - 1]
        s1 = self._speeds[self._rows, ki]
        with np.errstate(divide="ignore", invalid="ignore"):
            s = s0 + ((xs - x0) / (x1 - x0)) * (s1 - s0)
        s = np.where(counts == 0, self._s_first, s)
        s = np.where(counts >= self._nseg, self._s_last, s)
        with np.errstate(divide="ignore", invalid="ignore"):
            t = xs / s
        return np.where(xs > 0.0, t, 0.0)


def batch_models(fns) -> BatchSpeedModels:
    """The (memoised) batch representation of a model sequence.

    The cache is keyed by *identity* of the model tuple's members —
    callers that hold a model set and solve repeatedly (the partition
    service, hierarchical fan-out, benchmarks) hit; freshly constructed
    equal models miss harmlessly.
    """
    key = tuple(fns)
    hit = _batch_cache.get(key)
    if hit is not None:
        _batch_cache.move_to_end(key)
        return hit
    built = BatchSpeedModels(key)
    _batch_cache[key] = built
    while len(_batch_cache) > _BATCH_CACHE_CAPACITY:
        _batch_cache.popitem(last=False)
    return built
