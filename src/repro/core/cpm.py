"""Constant performance models — the traditional baseline (paper Section VI).

A CPM describes a processor by one positive number.  The paper obtains the
constants "from the speed measurements when some workload is distributed
evenly between the processors": each device is benchmarked at ``n_cal / p``
blocks, and the resulting speeds become the constants.  Because the GPU's
calibration share usually fits its memory, the constants overestimate GPUs
at large problem sizes — the failure mode Table III demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.fpm import FunctionalPerformanceModel
from repro.core.speed_function import SpeedFunction
from repro.util.validation import check_positive


@dataclass(frozen=True)
class ConstantPerformanceModel:
    """One processor's constant speed (GFlops, or any consistent unit)."""

    name: str
    speed: float
    kernel_name: str = ""
    calibration_size: float = float("nan")

    def __post_init__(self) -> None:
        check_positive("speed", self.speed)

    def time(self, size: float) -> float:
        """Relative execution time ``x / s`` under the constant model."""
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        return size / self.speed

    def as_speed_function(self) -> SpeedFunction:
        """The CPM viewed as a (degenerate) speed function."""
        return SpeedFunction.constant(self.speed)


def cpm_from_fpm(
    model: FunctionalPerformanceModel, calibration_size: float
) -> ConstantPerformanceModel:
    """Derive the constant a traditional partitioner would use.

    ``calibration_size`` is the per-processor share of the calibration
    problem (even split), mirroring the paper's CPM procedure.
    """
    check_positive("calibration_size", calibration_size)
    return ConstantPerformanceModel(
        name=model.name,
        speed=model.to_constant(calibration_size),
        kernel_name=model.kernel_name,
        calibration_size=calibration_size,
    )


def cpms_from_even_split(
    models: list[FunctionalPerformanceModel], calibration_total: float
) -> list[ConstantPerformanceModel]:
    """Constants for a device set from one even-split calibration run."""
    if not models:
        raise ValueError("need at least one model")
    share = calibration_total / len(models)
    return [cpm_from_fpm(m, share) for m in models]
