"""Integer block allocation on top of the continuous partitioners.

The application distributes whole b x b blocks (Table III reports integer
block counts), so the continuous solution must be rounded without ruining
the balance.  :func:`round_partition` floors the continuous allocation and
hands the leftover blocks, one at a time, to the processor whose finish
time grows the least — the standard incremental refinement, optimal for
monotone time functions.  :func:`refine_integer_partition` then hill-climbs
single-block moves from the straggler, which also repairs allocations that
did not come from a balanced continuous solution.
"""

from __future__ import annotations

import heapq
import math

from repro.core.fpm import as_speed_function
from repro.core.speed_function import SpeedFunction
from repro.util.validation import check_nonnegative_int


def _caps(fns: list[SpeedFunction]) -> list[float]:
    return [fn.max_size if fn.bounded else math.inf for fn in fns]


def round_partition(models, continuous: list[float], total: int) -> list[int]:
    """Round a continuous allocation to whole blocks summing to ``total``.

    Parameters
    ----------
    models:
        Per-processor models (FPMs / speed functions / constants) used to
        judge which processor absorbs each leftover block most cheaply.
    continuous:
        The continuous allocation (need not sum exactly to ``total``).
    total:
        The exact number of blocks to distribute.
    """
    check_nonnegative_int("total", total)
    fns = [as_speed_function(m) for m in models]
    if len(fns) != len(continuous):
        raise ValueError(
            f"{len(fns)} models but {len(continuous)} allocations"
        )
    caps = _caps(fns)
    alloc = [min(int(math.floor(max(0.0, x))), int(min(c, 1e18))) for x, c in zip(continuous, caps)]
    if sum(alloc) > total:
        # floor overshoot can only happen if `continuous` oversummed; trim
        # from the largest-time processors first
        while sum(alloc) > total:
            i = max(
                (j for j in range(len(alloc)) if alloc[j] > 0),
                key=lambda j: fns[j].time(alloc[j]),
            )
            alloc[i] -= 1
    # Hand out the leftover blocks cheapest-next-block first.  A heap of
    # (time of the next block, index) makes this O(L log p) instead of a
    # full scan per block; each processor has exactly one live entry (its
    # own is replaced right after it receives a block, and nothing else
    # changes its next-block time), and the index tie-break reproduces
    # the linear scan's lowest-index-wins choice.
    remaining = total - sum(alloc)
    heap = [
        (fn.time(alloc[i] + 1), i)
        for i, fn in enumerate(fns)
        if alloc[i] + 1 <= caps[i]
    ]
    heapq.heapify(heap)
    while remaining > 0:
        if not heap:
            raise ValueError(
                f"combined capacity cannot hold {total} blocks"
            )
        _, i = heapq.heappop(heap)
        alloc[i] += 1
        remaining -= 1
        if alloc[i] + 1 <= caps[i]:
            heapq.heappush(heap, (fns[i].time(alloc[i] + 1), i))
    return alloc


def makespan(models, allocation: list[int]) -> float:
    """Relative finish time of an integer allocation."""
    fns = [as_speed_function(m) for m in models]
    if len(fns) != len(allocation):
        raise ValueError(
            f"{len(fns)} models but {len(allocation)} allocations"
        )
    return max(
        (fn.time(a) for fn, a in zip(fns, allocation) if a > 0), default=0.0
    )


def refine_integer_partition(
    models, allocation: list[int], max_moves: int = 10_000
) -> list[int]:
    """Hill-climb single-block moves until the makespan stops improving.

    Each step moves one block away from (one of) the slowest-finishing
    processors to the processor whose time after the gift stays smallest,
    accepting the move only when the makespan strictly decreases.
    """
    fns = [as_speed_function(m) for m in models]
    if len(fns) != len(allocation):
        raise ValueError(
            f"{len(fns)} models but {len(allocation)} allocations"
        )
    caps = _caps(fns)
    alloc = [int(a) for a in allocation]
    for a in alloc:
        check_nonnegative_int("allocation entry", a)

    def span(current: list[int]) -> float:
        return max(
            (fn.time(a) for fn, a in zip(fns, current) if a > 0), default=0.0
        )

    current_span = span(alloc)
    for _ in range(max_moves):
        donor = max(
            (i for i in range(len(alloc)) if alloc[i] > 0),
            key=lambda i: fns[i].time(alloc[i]),
            default=None,
        )
        if donor is None:
            break
        candidates = [
            i
            for i in range(len(alloc))
            if i != donor and alloc[i] + 1 <= caps[i]
        ]
        if not candidates:
            break
        receiver = min(candidates, key=lambda i: fns[i].time(alloc[i] + 1))
        trial = list(alloc)
        trial[donor] -= 1
        trial[receiver] += 1
        trial_span = span(trial)
        if trial_span < current_span * (1.0 - 1e-12):
            alloc, current_span = trial, trial_span
        else:
            break
    return alloc
