"""Fine-grained dynamic task scheduling — Section II's other family.

Besides iterative rebalancing (:mod:`repro.core.dynamic`), the paper's
related work covers task-queue runtimes (StarPU, Merge, work stealing):
the workload is cut into fine-grained tasks that idle devices pull.  This
module simulates a central-queue scheduler on the library's kernels so the
trade-off the paper states qualitatively — "dynamic algorithms do not
require a priori information but may incur significant overhead" — can be
measured:

* small chunks balance the finish times tightly, but pay per-task
  scheduling overhead *and* starve devices whose efficiency grows with
  problem size (a GPU fed 16-block crumbs never reaches its rate);
* large chunks feed the devices well but quantise the distribution and
  leave stragglers.

Somewhere in between sits a sweet spot — which FPM static partitioning
meets or beats without searching, because the model already knows each
device's size-dependent speed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.util.validation import (
    check_nonnegative,
    check_positive_int,
)


@dataclass(frozen=True)
class WorkStealingResult:
    """Outcome of one simulated task-queue run."""

    makespan: float
    blocks_per_device: tuple[int, ...]
    tasks_per_device: tuple[int, ...]
    scheduling_overhead: float  # total seconds spent on task dispatch

    @property
    def total_tasks(self) -> int:
        return sum(self.tasks_per_device)


def simulate_work_stealing(
    kernels: list,
    total_blocks: int,
    chunk_blocks: int,
    per_task_overhead: float = 5.0e-4,
) -> WorkStealingResult:
    """Simulate a central task queue over one kernel run's workload.

    The workload (``total_blocks`` of ``C`` area) is cut into chunks of
    ``chunk_blocks``; whenever a device finishes its chunk it pulls the
    next one, paying ``per_task_overhead`` seconds per pull (queue lock,
    kernel launch, data staging bookkeeping).  Device chunk execution time
    comes from each kernel's ``run_time`` — so size-dependent efficiency
    (GPU ramp-up, out-of-core cliffs) is fully in effect, evaluated at the
    *chunk* size, which is the crucial difference from static FPM
    partitioning where each device runs one large, efficient piece.
    """
    if not kernels:
        raise ValueError("need at least one kernel")
    check_positive_int("total_blocks", total_blocks)
    check_positive_int("chunk_blocks", chunk_blocks)
    check_nonnegative("per_task_overhead", per_task_overhead)

    remaining = total_blocks
    blocks = [0] * len(kernels)
    tasks = [0] * len(kernels)
    overhead_total = 0.0
    # priority queue of (time device becomes free, device index)
    free_at = [(0.0, i) for i in range(len(kernels))]
    heapq.heapify(free_at)
    finish = [0.0] * len(kernels)
    while remaining > 0:
        now, dev = heapq.heappop(free_at)
        chunk = min(chunk_blocks, remaining)
        remaining -= chunk
        duration = per_task_overhead + kernels[dev].run_time(float(chunk))
        overhead_total += per_task_overhead
        blocks[dev] += chunk
        tasks[dev] += 1
        finish[dev] = now + duration
        heapq.heappush(free_at, (finish[dev], dev))
    return WorkStealingResult(
        makespan=max(finish),
        blocks_per_device=tuple(blocks),
        tasks_per_device=tuple(tasks),
        scheduling_overhead=overhead_total,
    )


def static_reference_makespan(kernels: list, allocations: list[int]) -> float:
    """Makespan of a static distribution on the same kernels (one big run
    each) — the FPM comparison point."""
    if len(kernels) != len(allocations):
        raise ValueError(
            f"{len(kernels)} kernels but {len(allocations)} allocations"
        )
    return max(
        (k.run_time(float(a)) for k, a in zip(kernels, allocations) if a > 0),
        default=0.0,
    )
