"""Approximation schemes for speed functions, with cross-validation.

The authors' fupermod tool supports several ways to turn (size, speed)
observations into a usable model; this module reproduces that flexibility:

* :func:`fit_piecewise_linear` — the FPM default (interpolate the points);
* :func:`fit_constant` — the CPM: one number (the speed-weighted mean);
* :func:`fit_rational_saturation` — the parametric form
  ``s(x) = peak * x / (x + half)`` fitted by least squares, a good match
  for GPU-style ramp-up curves;
* :func:`fit_log_polynomial` — least-squares polynomial in ``log x``, a
  smooth general-purpose approximant that damps measurement noise.

:func:`cross_validate` scores any fitter by leave-one-out prediction error,
and :func:`best_fit` picks the scheme a given sample actually supports —
useful when deciding whether a device needs a full FPM or a constant will
do (small, flat samples pick the constant).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.speed_function import SpeedFunction, SpeedSample

#: A fitter maps observations to a SpeedFunction.
Fitter = Callable[[Sequence[SpeedSample]], SpeedFunction]


def _check_samples(samples: Sequence[SpeedSample], minimum: int = 1) -> None:
    if len(samples) < minimum:
        raise ValueError(
            f"fitting needs at least {minimum} samples, got {len(samples)}"
        )
    sizes = [s.size for s in samples]
    if sorted(set(sizes)) != sizes:
        raise ValueError("sample sizes must be strictly increasing")


def fit_piecewise_linear(samples: Sequence[SpeedSample]) -> SpeedFunction:
    """The FPM default: exact interpolation of the observations."""
    _check_samples(samples)
    return SpeedFunction(list(samples))


def fit_constant(samples: Sequence[SpeedSample]) -> SpeedFunction:
    """The CPM view: one constant, the size-weighted harmonic-mean speed.

    Weighting by size makes the constant reproduce the *total* time of the
    observed workloads: ``sum x_i / sum t_i``.
    """
    _check_samples(samples)
    total_size = sum(s.size for s in samples)
    total_time = sum(s.size / s.speed for s in samples)
    return SpeedFunction.constant(total_size / total_time)


def fit_rational_saturation(samples: Sequence[SpeedSample]) -> SpeedFunction:
    """Least-squares fit of ``s(x) = peak * x / (x + half)``.

    Linearised: ``1/s = 1/peak + (half/peak) * (1/x)`` — ordinary least
    squares on the reciprocals, the classic Lineweaver–Burk trick.  The
    result is sampled back onto the observation grid (extended 4x beyond)
    so downstream code sees an ordinary piecewise-linear function.
    """
    _check_samples(samples, minimum=2)
    inv_x = np.array([1.0 / s.size for s in samples])
    inv_s = np.array([1.0 / s.speed for s in samples])
    slope, intercept = np.polyfit(inv_x, inv_s, 1)
    if intercept <= 0:
        # degenerate (speed grows without bound); fall back to the sample max
        peak = max(s.speed for s in samples) * 1.05
        half = max(1e-9, slope * peak)
    else:
        peak = 1.0 / intercept
        half = max(0.0, slope * peak)

    def model(x: float) -> float:
        return peak * x / (x + half) if half > 0 else peak

    grid = _dense_grid(
        [s.size for s in samples] + [samples[-1].size * 4.0], per_interval=6
    )
    return SpeedFunction.from_points(grid, [max(1e-12, model(x)) for x in grid])


def fit_log_polynomial(
    samples: Sequence[SpeedSample], degree: int = 2
) -> SpeedFunction:
    """Least-squares polynomial in ``log x``, clipped positive.

    Smooths measurement noise at the cost of bias near sharp features
    (the GPU memory cliff defeats any global polynomial — which is itself
    an argument for the piecewise FPM, and visible in cross-validation).
    """
    _check_samples(samples, minimum=degree + 1)
    if degree < 0:
        raise ValueError(f"degree must be >= 0, got {degree}")
    logs = np.log([s.size for s in samples])
    speeds = np.array([s.speed for s in samples])
    coeffs = np.polyfit(logs, speeds, degree)
    floor = min(speeds) * 1e-3

    def model(x: float) -> float:
        return float(max(floor, np.polyval(coeffs, math.log(x))))

    grid = _dense_grid([s.size for s in samples], per_interval=6)
    return SpeedFunction.from_points(grid, [model(x) for x in grid])


def _dense_grid(anchors: list[float], per_interval: int) -> list[float]:
    """Geometric refinement of an increasing grid (parametric resampling)."""
    out: list[float] = []
    for lo, hi in zip(anchors, anchors[1:]):
        ratio = (hi / lo) ** (1.0 / per_interval)
        out.extend(lo * ratio**k for k in range(per_interval))
    out.append(anchors[-1])
    return out


@dataclass(frozen=True)
class FitScore:
    """Leave-one-out cross-validation result of one fitter."""

    name: str
    mean_relative_error: float
    worst_relative_error: float


def cross_validate(
    fitter: Fitter, samples: Sequence[SpeedSample], name: str = ""
) -> FitScore:
    """Leave-one-out: fit without each interior point, predict it.

    End points are kept (extrapolation is a different question); a sample
    needs at least 4 points to have an interior to validate on.
    """
    _check_samples(samples, minimum=4)
    errors = []
    for i in range(1, len(samples) - 1):
        reduced = [s for j, s in enumerate(samples) if j != i]
        try:  # noqa: PERF203 - a failed fold must score inf, not abort
            model = fitter(reduced)
            predicted = model.speed(samples[i].size)
        except ValueError:
            errors.append(math.inf)
            continue
        errors.append(abs(predicted - samples[i].speed) / samples[i].speed)
    return FitScore(
        name=name or getattr(fitter, "__name__", "fitter"),
        mean_relative_error=float(sum(errors) / len(errors)),
        worst_relative_error=float(max(errors)),
    )


#: The candidate schemes best_fit() considers, in preference order.
STANDARD_FITTERS: dict[str, Fitter] = {
    "piecewise-linear": fit_piecewise_linear,
    "rational-saturation": fit_rational_saturation,
    "log-polynomial": fit_log_polynomial,
    "constant": fit_constant,
}


def best_fit(
    samples: Sequence[SpeedSample],
    fitters: dict[str, Fitter] | None = None,
) -> tuple[str, SpeedFunction, FitScore]:
    """Cross-validate the candidate schemes and fit with the winner."""
    fitters = fitters or STANDARD_FITTERS
    if not fitters:
        raise ValueError("need at least one candidate fitter")
    scores = [
        cross_validate(fitter, samples, name)
        for name, fitter in fitters.items()
    ]
    winner = min(scores, key=lambda s: s.mean_relative_error)
    return winner.name, fitters[winner.name](samples), winner
