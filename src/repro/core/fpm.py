"""The functional performance model: a speed function with provenance.

An FPM couples a :class:`repro.core.speed_function.SpeedFunction` with the
identity of the processing element and kernel it was built for, the
blocking factor, and the measurement protocol's statistics.  Partitioning
algorithms accept FPMs (or bare speed functions); experiments and the JSON
serializer use the metadata.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.speed_function import SpeedFunction
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class FunctionalPerformanceModel:
    """A named, reproducible functional performance model.

    Attributes
    ----------
    name:
        The processing element the model describes (e.g. ``"socket2:c6"``
        or ``"GeForce GTX680"``).
    kernel_name:
        The benchmark kernel the samples were produced with.
    speed_function:
        The piecewise-linear empirical speed function (GFlops vs blocks).
    block_size:
        Blocking factor b of the workload units.
    repetitions_total:
        Total benchmark repetitions spent building the model (bookkeeping
        for the measurement-cost ablations).
    """

    name: str
    speed_function: SpeedFunction
    kernel_name: str = ""
    block_size: int = 640
    repetitions_total: int = 0

    def __post_init__(self) -> None:
        check_positive_int("block_size", self.block_size)
        if self.repetitions_total < 0:
            raise ValueError("repetitions_total must be >= 0")

    # Convenience pass-throughs so partitioners can take FPMs directly.
    def speed(self, size: float) -> float:
        """Speed (GFlops) at a problem size (blocks)."""
        return self.speed_function.speed(size)

    def time(self, size: float) -> float:
        """Relative execution time ``x / s(x)`` at a problem size."""
        return self.speed_function.time(size)

    def speed_batch(self, sizes):
        """Vectorised :meth:`speed` over an array of sizes (numpy)."""
        return self.speed_function.speed_batch(sizes)

    def time_batch(self, sizes):
        """Vectorised :meth:`time` over an array of sizes (numpy)."""
        return self.speed_function.time_batch(sizes)

    def max_size_within_time(self, budget: float) -> float:
        """Inverse time function (see SpeedFunction)."""
        return self.speed_function.max_size_within_time(budget)

    @property
    def bounded(self) -> bool:
        return self.speed_function.bounded

    @property
    def max_size(self) -> float:
        return self.speed_function.max_size

    def to_constant(self, calibration_size: float) -> float:
        """The CPM constant this model would yield at one calibration size.

        Traditional partitioning derives its constants from a measurement
        at a single (usually comfortable, in-memory) size; evaluating the
        FPM there reproduces that procedure exactly (paper Section VI).
        """
        return self.speed_function.speed(calibration_size)

    def repaired(self) -> "FunctionalPerformanceModel":
        """Copy with a monotonic-time speed function (partitioner-safe)."""
        return FunctionalPerformanceModel(
            name=self.name,
            speed_function=self.speed_function.with_monotonic_time(),
            kernel_name=self.kernel_name,
            block_size=self.block_size,
            repetitions_total=self.repetitions_total,
        )


def as_speed_function(model) -> SpeedFunction:
    """Accept an FPM, a SpeedFunction, or a positive constant; normalise."""
    if isinstance(model, FunctionalPerformanceModel):
        return model.speed_function
    if isinstance(model, SpeedFunction):
        return model
    if isinstance(model, (int, float)) and not isinstance(model, bool):
        if model <= 0 or not math.isfinite(model):
            raise ValueError(f"constant speed must be positive, got {model}")
        return SpeedFunction.constant(float(model))
    raise TypeError(
        f"expected FunctionalPerformanceModel, SpeedFunction or a positive "
        f"number, got {type(model).__name__}"
    )
