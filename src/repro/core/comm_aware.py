"""Communication-aware refinement of FPM partitions.

The paper partitions "with respect to computational performance" and
relies on the column-based geometry to keep communication small (Section
IV).  That leaves a second-order effect on the table: the per-iteration
broadcast time grows with the *largest* rectangle's half-perimeter
(``~ 2 sqrt(x)`` for near-square shapes), so shaving blocks off the
biggest allocation can buy more in communication than it costs in
computation.

:func:`comm_aware_refinement` hill-climbs single-block moves on the
predicted total iteration time

    ``T(alloc) = max_i t_i(x_i) + beta * max_i 2 sqrt(x_i)``

where ``beta`` converts pivot blocks into seconds (from the communication
model).  With ``beta = 0`` it reduces to the plain computation balance, so
the function is a strict generalisation of
:func:`repro.core.integer.refine_integer_partition`.
"""

from __future__ import annotations

import math

from repro.core.fpm import as_speed_function
from repro.util.validation import check_nonnegative


def predicted_iteration_time(models, allocation, beta: float) -> float:
    """The comm-aware objective: compute makespan + broadcast term."""
    fns = [as_speed_function(m) for m in models]
    if len(fns) != len(allocation):
        raise ValueError(
            f"{len(fns)} models but {len(allocation)} allocations"
        )
    check_nonnegative("beta", beta)
    compute = max(
        (fn.time(a) for fn, a in zip(fns, allocation) if a > 0), default=0.0
    )
    comm = max((2.0 * math.sqrt(a) for a in allocation if a > 0), default=0.0)
    return compute + beta * comm


def comm_aware_refinement(
    models,
    allocation: list[int],
    beta: float,
    max_moves: int = 10_000,
) -> list[int]:
    """Hill-climb single-block moves on the comm-aware objective.

    Parameters
    ----------
    models:
        Per-unit performance models (time in the same relative units the
        partitioner used).
    allocation:
        Starting integer allocation (typically the FPM solution).
    beta:
        Seconds of per-iteration broadcast time per pivot block, in the
        same time units as ``models``; derive it as
        ``block_bytes / bandwidth / unit_time_scale``.
    """
    fns = [as_speed_function(m) for m in models]
    if len(fns) != len(allocation):
        raise ValueError(
            f"{len(fns)} models but {len(allocation)} allocations"
        )
    check_nonnegative("beta", beta)
    caps = [fn.max_size if fn.bounded else math.inf for fn in fns]
    alloc = [int(a) for a in allocation]
    current = predicted_iteration_time(fns, alloc, beta)
    for _ in range(max_moves):
        best_trial = None
        best_value = current
        # donors: the compute straggler and the comm leader(s)
        compute_times = [
            fn.time(a) if a > 0 else 0.0 for fn, a in zip(fns, alloc)
        ]
        donors = set()
        donors.add(max(range(len(alloc)), key=lambda i: compute_times[i]))
        donors.add(max(range(len(alloc)), key=lambda i: alloc[i]))
        for donor in donors:
            if alloc[donor] == 0:
                continue
            for receiver in range(len(alloc)):
                if receiver == donor or alloc[receiver] + 1 > caps[receiver]:
                    continue
                trial = list(alloc)
                trial[donor] -= 1
                trial[receiver] += 1
                value = predicted_iteration_time(fns, trial, beta)
                if value < best_value * (1.0 - 1e-12):
                    best_trial, best_value = trial, value
        if best_trial is None:
            break
        alloc, current = best_trial, best_value
    return alloc
