"""Communication-aware refinement of FPM partitions.

The paper partitions "with respect to computational performance" and
relies on the column-based geometry to keep communication small (Section
IV).  That leaves a second-order effect on the table: the per-iteration
broadcast time grows with the *largest* rectangle's half-perimeter
(``~ 2 sqrt(x)`` for near-square shapes), so shaving blocks off the
biggest allocation can buy more in communication than it costs in
computation.

:func:`comm_aware_refinement` hill-climbs single-block moves on the
predicted total iteration time

    ``T(alloc) = max_i t_i(x_i) + beta * max_i 2 sqrt(x_i)``

where ``beta`` converts pivot blocks into seconds (from the communication
model).  With ``beta = 0`` it reduces to the plain computation balance, so
the function is a strict generalisation of
:func:`repro.core.integer.refine_integer_partition`.

The production hill-climb is vectorised: per-device times are cached and
refreshed only at the two entries a move touches, and each candidate
move's objective comes from exclusive running maxima
(prefix/suffix) over the device array instead of an O(p) rescan — one
move costs O(p) NumPy work rather than O(p^2) Python time evaluations.
:func:`comm_aware_refinement_scalar` keeps the original quadratic walk
as the reference oracle; the two are **bit-identical** on every input
(same ``fn.time`` evaluations, same max selections, same sequential
accept scan), which the equivalence test enforces.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.fpm import as_speed_function
from repro.util.validation import check_nonnegative


def predicted_iteration_time(models, allocation, beta: float) -> float:
    """The comm-aware objective: compute makespan + broadcast term."""
    fns = [as_speed_function(m) for m in models]
    if len(fns) != len(allocation):
        raise ValueError(
            f"{len(fns)} models but {len(allocation)} allocations"
        )
    check_nonnegative("beta", beta)
    compute = max(
        (fn.time(a) for fn, a in zip(fns, allocation) if a > 0), default=0.0
    )
    comm = max((2.0 * math.sqrt(a) for a in allocation if a > 0), default=0.0)
    return compute + beta * comm


def _exclusive_max(values: np.ndarray) -> np.ndarray:
    """Per-index maximum of every *other* entry (``-inf`` when alone).

    Prefix/suffix running maxima make all ``p`` leave-one-out maxima one
    O(p) pass; since float ``max`` selection is order-independent, each
    entry is bit-identical to ``max(values[i] for i != r)``.
    """
    p = values.size
    out = np.empty(p)
    if p == 1:
        out[0] = -math.inf
        return out
    prefix = np.maximum.accumulate(values)
    suffix = np.maximum.accumulate(values[::-1])[::-1]
    out[0] = suffix[1]
    out[-1] = prefix[-2]
    if p > 2:
        out[1:-1] = np.maximum(prefix[:-2], suffix[2:])
    return out


def comm_aware_refinement(
    models,
    allocation: list[int],
    beta: float,
    max_moves: int = 10_000,
) -> list[int]:
    """Hill-climb single-block moves on the comm-aware objective.

    Vectorised: per-device time and perimeter terms are cached arrays
    refreshed only at the entries a move touches, and every candidate
    receiver's objective is evaluated at once through exclusive running
    maxima — bit-identical to :func:`comm_aware_refinement_scalar`, the
    original quadratic walk kept as the reference oracle.

    Parameters
    ----------
    models:
        Per-unit performance models (time in the same relative units the
        partitioner used).
    allocation:
        Starting integer allocation (typically the FPM solution).
    beta:
        Seconds of per-iteration broadcast time per pivot block, in the
        same time units as ``models``; derive it as
        ``block_bytes / bandwidth / unit_time_scale``.
    """
    fns = [as_speed_function(m) for m in models]
    if len(fns) != len(allocation):
        raise ValueError(
            f"{len(fns)} models but {len(allocation)} allocations"
        )
    check_nonnegative("beta", beta)
    p = len(fns)
    caps = np.array([fn.max_size if fn.bounded else math.inf for fn in fns])
    alloc = [int(a) for a in allocation]
    alloc_np = np.array(alloc, dtype=float)

    def time_of(i: int, a: int) -> float:
        return fns[i].time(a) if a > 0 else 0.0

    def perim_of(a: int) -> float:
        return 2.0 * math.sqrt(a) if a > 0 else 0.0

    def inc_time(i: int) -> float:
        # bounded models raise past their cap; a capped device is never a
        # valid receiver, so inf keeps the cache total without changing
        # any selected value
        if alloc[i] + 1.0 > caps[i]:
            return math.inf
        return fns[i].time(alloc[i] + 1)

    # t/c: objective terms at the current allocation; the *_inc twins are
    # the terms if that device received one more block.  A move touches
    # two devices, so refreshes are O(1) model evaluations per move.
    t_cur = np.array([time_of(i, a) for i, a in enumerate(alloc)])
    c_cur = np.array([perim_of(a) for a in alloc])
    t_inc = np.array([inc_time(i) for i in range(p)])
    c_inc = np.array([2.0 * math.sqrt(a + 1) for a in alloc])
    current = float(np.max(t_cur)) + beta * float(np.max(c_cur))
    indices = np.arange(p)
    for _ in range(max_moves):
        best_move = None
        best_value = current
        # donors: the compute straggler and the comm leader(s)
        donors = set()
        donors.add(int(np.argmax(t_cur)))
        donors.add(int(np.argmax(alloc_np)))
        for donor in donors:
            if alloc[donor] == 0:
                continue
            # base vectors with the donor decremented; restored after the
            # exclusive maxima are taken
            t_donor, c_donor = t_cur[donor], c_cur[donor]
            t_cur[donor] = time_of(donor, alloc[donor] - 1)
            c_cur[donor] = perim_of(alloc[donor] - 1)
            excl_t = _exclusive_max(t_cur)
            excl_c = _exclusive_max(c_cur)
            t_cur[donor], c_cur[donor] = t_donor, c_donor
            value = np.maximum(excl_t, t_inc) + beta * np.maximum(
                excl_c, c_inc
            )
            valid = (indices != donor) & (alloc_np + 1.0 <= caps)
            value = np.where(valid, value, math.inf)
            # sequential accept scan, replicating the scalar walk's
            # progressive threshold (a later candidate inside the 1e-12
            # band of an accepted one is rejected, exactly as there)
            start = 0
            while True:
                threshold = best_value * (1.0 - 1e-12)
                better = np.nonzero(value[start:] < threshold)[0]
                if better.size == 0:
                    break
                receiver = start + int(better[0])
                best_move = (donor, receiver)
                best_value = float(value[receiver])
                start = receiver + 1
        if best_move is None:
            break
        donor, receiver = best_move
        alloc[donor] -= 1
        alloc[receiver] += 1
        alloc_np[donor] -= 1.0
        alloc_np[receiver] += 1.0
        for i in (donor, receiver):
            t_cur[i] = time_of(i, alloc[i])
            c_cur[i] = perim_of(alloc[i])
            t_inc[i] = inc_time(i)
            c_inc[i] = 2.0 * math.sqrt(alloc[i] + 1)
        current = best_value
    return alloc


def comm_aware_refinement_scalar(
    models,
    allocation: list[int],
    beta: float,
    max_moves: int = 10_000,
) -> list[int]:
    """Reference oracle for :func:`comm_aware_refinement`: the original
    quadratic hill-climb, one full objective evaluation per candidate
    move.  Deliberately untouched by the vectorisation — the equivalence
    test holds the two bit-identical on every input.
    """
    fns = [as_speed_function(m) for m in models]
    if len(fns) != len(allocation):
        raise ValueError(
            f"{len(fns)} models but {len(allocation)} allocations"
        )
    check_nonnegative("beta", beta)
    caps = [fn.max_size if fn.bounded else math.inf for fn in fns]
    alloc = [int(a) for a in allocation]
    current = predicted_iteration_time(fns, alloc, beta)
    for _ in range(max_moves):
        best_trial = None
        best_value = current
        # donors: the compute straggler and the comm leader(s)
        compute_times = [
            fn.time(a) if a > 0 else 0.0 for fn, a in zip(fns, alloc)
        ]
        donors = set()
        donors.add(max(range(len(alloc)), key=lambda i: compute_times[i]))
        donors.add(max(range(len(alloc)), key=lambda i: alloc[i]))
        for donor in donors:
            if alloc[donor] == 0:
                continue
            for receiver in range(len(alloc)):
                if receiver == donor or alloc[receiver] + 1 > caps[receiver]:
                    continue
                trial = list(alloc)
                trial[donor] -= 1
                trial[receiver] += 1
                value = predicted_iteration_time(fns, trial, beta)
                if value < best_value * (1.0 - 1e-12):
                    best_trial, best_value = trial, value
        if best_trial is None:
            break
        alloc, current = best_trial, best_value
    return alloc
