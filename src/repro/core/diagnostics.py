"""Model-quality diagnostics for partitioning decisions.

A partition is only as good as the models behind it; this module inspects
a (models, allocations) pair and reports the risks an operator should
know about before trusting the distribution:

* allocations **outside the sampled range** of their model (the model
  extrapolates with a constant — fine for flat tails, blind to cliffs);
* allocations sitting on **steep model segments**, where a small
  mis-measurement moves the balanced point a lot;
* **measurement imprecision** around the operating points, propagated to
  an estimated imbalance band.

Used by tests and available to library users; the partitioners themselves
stay pure (they never refuse to answer, they just answer with the model
they were given).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.fpm import FunctionalPerformanceModel, as_speed_function
from repro.core.speed_function import SpeedFunction


@dataclass(frozen=True)
class AllocationDiagnostic:
    """Risk assessment of one processor's operating point."""

    index: int
    allocation: float
    extrapolated: bool
    local_slope: float  # |d log s / d log x| around the operating point
    rel_precision: float  # measurement CI at the nearest sample (nan unknown)

    @property
    def steep(self) -> bool:
        """Speed changes faster than ~1.5x per doubling of size."""
        return self.local_slope > 0.6


@dataclass(frozen=True)
class PartitionDiagnostics:
    """All per-processor diagnostics plus aggregate judgements."""

    entries: tuple[AllocationDiagnostic, ...]
    estimated_imbalance_band: float

    @property
    def extrapolating(self) -> list[int]:
        return [e.index for e in self.entries if e.extrapolated]

    @property
    def steep_operating_points(self) -> list[int]:
        return [e.index for e in self.entries if e.steep]

    @property
    def trustworthy(self) -> bool:
        """No extrapolation and a tight predicted imbalance band."""
        return not self.extrapolating and self.estimated_imbalance_band < 0.1


def _local_log_slope(fn: SpeedFunction, x: float) -> float:
    """|d log s / d log x| by symmetric finite differences."""
    lo = max(fn.min_size * 0.5, x / 1.2)
    hi = x * 1.2
    if fn.bounded:
        hi = min(hi, fn.max_size)
    if hi <= lo:
        return 0.0
    s_lo, s_hi = fn.speed(lo), fn.speed(hi)
    if s_lo <= 0 or s_hi <= 0:
        return math.inf
    return abs(math.log(s_hi / s_lo) / math.log(hi / lo))


def _nearest_precision(model, x: float) -> float:
    if not isinstance(model, FunctionalPerformanceModel):
        return math.nan
    best, dist = math.nan, math.inf
    for sample in model.speed_function.samples:
        d = abs(sample.size - x)
        if d < dist:
            best, dist = sample.rel_precision, d
    return best


def diagnose_partition(models, allocations) -> PartitionDiagnostics:
    """Assess the risk profile of an allocation under its models."""
    if len(models) != len(allocations):
        raise ValueError(
            f"{len(models)} models but {len(allocations)} allocations"
        )
    entries = []
    worst_precision = 0.0
    for i, (model, x) in enumerate(zip(models, allocations)):
        fn = as_speed_function(model)
        if x <= 0:
            entries.append(
                AllocationDiagnostic(
                    index=i,
                    allocation=float(x),
                    extrapolated=False,
                    local_slope=0.0,
                    rel_precision=math.nan,
                )
            )
            continue
        extrapolated = x > fn.max_size * (1 + 1e-12) or x < fn.min_size * (
            1 - 1e-12
        )
        precision = _nearest_precision(model, float(x))
        if not math.isnan(precision):
            worst_precision = max(worst_precision, precision)
        entries.append(
            AllocationDiagnostic(
                index=i,
                allocation=float(x),
                extrapolated=bool(extrapolated),
                local_slope=_local_log_slope(fn, float(x)),
                rel_precision=precision,
            )
        )
    # Measurement error of epsilon in speed shifts each finish time by
    # ~epsilon; the worst pairwise divergence is ~2 epsilon.
    return PartitionDiagnostics(
        entries=tuple(entries),
        estimated_imbalance_band=2.0 * worst_precision,
    )
