"""Column-based 2D matrix partitioning (Clarke, Lastovetsky, Rychkov [17]).

The application arranges the processors' submatrices over a 2D grid so that
(i) every processor's rectangle area matches its workload allocation and
(ii) the total communication volume — proportional to the sum of rectangle
half-perimeters — is minimised, making the rectangles "as square as
possible" (paper Section IV).

The algorithm, following the column-based scheme of Beaumont et al. used by
[17]:

1. sort processors by allocated area, descending;
2. group the sorted sequence into contiguous *columns*; for a column with
   relative areas ``a_i`` the column width is ``sum a_i`` and each
   processor's height is ``a_i / width`` — areas are exact by construction;
3. choose the grouping minimising the half-perimeter sum
   ``sum_cols (count_c * w_c) + num_cols`` by dynamic programming over
   contiguous splits (optimal for the column-based family);
4. snap to the integer block grid with largest-remainder rounding, columns
   first, then heights within each column — the rectangles tile the
   ``n x n`` block matrix exactly, with realized areas as close to the
   requested allocation as the grid allows.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass

from repro.util.validation import check_positive_int

#: Largest processor count arranged by the exact O(p^3) grouping DP;
#: beyond it the sqrt-shaped greedy takes over (see `_column_groups`).
_EXACT_DP_LIMIT = 128


@dataclass(frozen=True)
class Rectangle:
    """One processor's submatrix in block coordinates (column-major layout)."""

    owner: int
    col: int
    row: int
    width: int
    height: int

    def __post_init__(self) -> None:
        if min(self.col, self.row, self.width, self.height) < 0:
            raise ValueError("rectangle coordinates must be non-negative")

    @property
    def area(self) -> int:
        return self.width * self.height

    @property
    def half_perimeter(self) -> int:
        return self.width + self.height

    def intersects(self, other: "Rectangle") -> bool:
        """True when the two rectangles overlap in a nonzero area."""
        return (
            self.col < other.col + other.width
            and other.col < self.col + self.width
            and self.row < other.row + other.height
            and other.row < self.row + self.height
        )


@dataclass(frozen=True)
class ColumnPartition:
    """The complete arrangement: rectangles indexed by processor."""

    n: int
    rectangles: tuple[Rectangle, ...]
    column_widths: tuple[int, ...]

    def rectangle_of(self, owner: int) -> Rectangle:
        # lazily indexed: repeated lookups (the runtime asks per panel)
        # must not rescan 10k rectangles; first match wins, matching the
        # historical linear scan on duplicate-owner partitions
        by_owner = getattr(self, "_by_owner", None)
        if by_owner is None:
            by_owner = {}
            for r in self.rectangles:
                by_owner.setdefault(r.owner, r)
            object.__setattr__(self, "_by_owner", by_owner)
        found = by_owner.get(owner)
        if found is None:
            raise KeyError(f"no rectangle for processor {owner}")
        return found

    def realized_allocations(self, num_processors: int) -> list[int]:
        """Block areas actually granted by the grid, per processor."""
        out = [0] * num_processors
        for r in self.rectangles:
            out[r.owner] += r.area
        return out

    def total_half_perimeter(self) -> int:
        """The communication-volume proxy the arrangement minimises."""
        return sum(r.half_perimeter for r in self.rectangles if r.area > 0)

    def validate_tiling(self) -> None:
        """Raise ValueError unless rectangles tile the n x n grid exactly.

        Exact area + in-bounds + pairwise disjoint imply an exact cover.
        Disjointness is checked by a column sweep — close/open events in
        x, active rectangles kept as sorted row intervals, each opening
        rectangle compared with its two row neighbours — O(m log m)
        comparisons instead of the all-pairs scan, which matters at
        10k+ rectangles.
        """
        area = sum(r.area for r in self.rectangles)
        if area != self.n * self.n:
            raise ValueError(
                f"rectangles cover {area} blocks, expected {self.n * self.n}"
            )
        live = [r for r in self.rectangles if r.area > 0]
        events = []
        for r in live:
            if r.col + r.width > self.n or r.row + r.height > self.n:
                raise ValueError(f"rectangle {r} exceeds the matrix bounds")
            events.append((r.col, 1, r))
            events.append((r.col + r.width, 0, r))
        # closes sort before opens at equal x: sharing an edge is not an
        # overlap (Rectangle.intersects is strict, and so is the sweep)
        events.sort(key=lambda e: (e[0], e[1]))
        rows: list[int] = []  # active rectangles' start rows, sorted
        active: list[Rectangle] = []  # parallel to `rows`
        for _, kind, r in events:
            i = bisect.bisect_left(rows, r.row)
            if kind == 0:  # close
                while active[i] is not r:
                    i += 1
                rows.pop(i)
                active.pop(i)
                continue
            # while disjoint, active row intervals are totally ordered, so
            # only the immediate neighbours can collide with the newcomer
            if i > 0 and active[i - 1].row + active[i - 1].height > r.row:
                raise ValueError(f"rectangles overlap: {active[i - 1]} and {r}")
            if i < len(rows) and rows[i] < r.row + r.height:
                raise ValueError(f"rectangles overlap: {active[i]} and {r}")
            rows.insert(i, r.row)
            active.insert(i, r)


def _largest_remainder(targets: list[float], total: int, minimum: list[int]) -> list[int]:
    """Round non-negative targets to integers summing to ``total``.

    Every entry receives at least its ``minimum``; leftovers go to the
    largest fractional remainders (ties resolved by index for determinism).
    """
    if sum(minimum) > total:
        raise ValueError(
            f"cannot round: minimums sum to {sum(minimum)} > total {total}"
        )
    floors = [max(m, int(math.floor(t))) for t, m in zip(targets, minimum)]
    while sum(floors) > total:
        # shrink the entry that most over-rounded its target, respecting
        # minimums; feasibility is guaranteed by the check above
        candidates = [i for i in range(len(floors)) if floors[i] > minimum[i]]
        i = min(candidates, key=lambda j: targets[j] - floors[j])
        floors[i] -= 1
    remainders = sorted(
        range(len(targets)),
        key=lambda i: (-(targets[i] - floors[i]), i),
    )
    deficit = total - sum(floors)
    out = list(floors)
    for k in range(deficit):
        out[remainders[k % len(remainders)]] += 1
    return out


def ascii_layout(partition: ColumnPartition, cell_width: int = 2) -> str:
    """Render the arrangement as a character grid (one cell per block).

    Owners are labelled 0-9 then a-z then A-Z then '#'; useful in examples
    and docs to *see* the column-based structure.
    """
    if cell_width < 1:
        raise ValueError(f"cell_width must be >= 1, got {cell_width}")
    labels = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
    n = partition.n
    grid = [["?"] * n for _ in range(n)]
    for rect in partition.rectangles:
        if rect.area == 0:
            continue
        mark = labels[rect.owner] if rect.owner < len(labels) else "#"
        for r in range(rect.row, rect.row + rect.height):
            for c in range(rect.col, rect.col + rect.width):
                grid[r][c] = mark
    return "\n".join(
        "".join(cell * cell_width for cell in row) for row in grid
    )


def _column_groups_heuristic(
    areas_sorted: list[float], max_group: int, k_limit: int
) -> list[int]:
    """Greedy sqrt-shaped grouping for processor counts beyond the DP.

    For near-uniform relative areas the half-perimeter objective
    ``sum(count_c * width_c) + c`` is minimised by ~sqrt(p) columns of
    equal area, so aim for that shape: pick ``k ≈ sqrt(p)`` (clamped to
    feasibility), then cut the area-sorted sequence greedily so every
    column carries ~1/k of the remaining area.  O(p) after the prefix
    walk, exact-feasible by construction.
    """
    p = len(areas_sorted)
    k_min = math.ceil(p / max_group)
    if k_min > k_limit:
        raise ValueError(
            f"cannot arrange {p} processors with at most {max_group} per "
            f"column and {k_limit} columns"
        )
    k = min(max(round(math.sqrt(p)), k_min, 1), k_limit)
    remaining_area = sum(areas_sorted)
    groups: list[int] = []
    idx = 0
    for c in range(k):
        remaining_cols = k - c
        remaining_items = p - idx
        # bounds keeping every later column feasible: at least one item
        # each, at most max_group each
        lo = max(1, remaining_items - (remaining_cols - 1) * max_group)
        hi = min(max_group, remaining_items - (remaining_cols - 1))
        target = remaining_area / remaining_cols
        size = 0
        acc = 0.0
        while size < lo or (size < hi and acc < target):
            acc += areas_sorted[idx + size]
            size += 1
        groups.append(size)
        idx += size
        remaining_area -= acc
    return groups


def _column_groups(
    areas_sorted: list[float], max_group: int, max_columns: int | None = None
) -> list[int]:
    """DP over contiguous groups minimising sum(count_c * width_c) + c.

    ``max_group`` caps the processors per column (a column of the n x n
    grid cannot stack more than n rectangles).  Returns the group sizes in
    order.  The exact DP is cubic in the processor count, so past
    ``_EXACT_DP_LIMIT`` processors the sqrt-shaped greedy grouping takes
    over — same contiguity and feasibility contract, near-optimal
    half-perimeter at cluster scale.
    """
    p = len(areas_sorted)
    if max_group < 1:
        raise ValueError(f"max_group must be >= 1, got {max_group}")
    k_limit = p if max_columns is None else min(p, max_columns)
    if p > _EXACT_DP_LIMIT:
        return _column_groups_heuristic(areas_sorted, max_group, k_limit)
    prefix = [0.0]
    for a in areas_sorted:
        prefix.append(prefix[-1] + a)
    # cost[j][k]: best cost of first j processors in k columns
    inf = math.inf
    cost = [[inf] * (p + 1) for _ in range(p + 1)]
    back = [[-1] * (p + 1) for _ in range(p + 1)]
    cost[0][0] = 0.0
    for j in range(1, p + 1):
        for k in range(1, j + 1):
            for m in range(max(k - 1, j - max_group), j):
                if cost[m][k - 1] is inf:
                    continue
                width = prefix[j] - prefix[m]
                c = cost[m][k - 1] + (j - m) * width
                if c < cost[j][k]:
                    cost[j][k] = c
                    back[j][k] = m
    feasible = [k for k in range(1, k_limit + 1) if cost[p][k] < inf]
    if not feasible:
        raise ValueError(
            f"cannot arrange {p} processors with at most {max_group} per "
            f"column and {k_limit} columns"
        )
    best_k = min(feasible, key=lambda k: cost[p][k] + k)
    groups: list[int] = []
    j, k = p, best_k
    while k > 0:
        m = back[j][k]
        groups.append(j - m)
        j, k = m, k - 1
    groups.reverse()
    return groups


def column_based_partition(allocations: list[int], n: int) -> ColumnPartition:
    """Arrange integer block allocations into a column-based 2D partition.

    Parameters
    ----------
    allocations:
        Blocks per processor, summing to ``n * n``.  Zero allocations yield
        empty (zero-area) rectangles.
    n:
        Matrix size in blocks (the matrix is ``n x n`` blocks).
    """
    check_positive_int("n", n)
    if any(a < 0 for a in allocations):
        raise ValueError("allocations must be non-negative")
    if sum(allocations) != n * n:
        raise ValueError(
            f"allocations sum to {sum(allocations)}, expected {n * n}"
        )

    active = [(i, a) for i, a in enumerate(allocations) if a > 0]
    if not active:
        raise ValueError("at least one allocation must be positive")
    if len(active) > n * n:
        raise ValueError(
            f"{len(active)} non-empty allocations cannot tile an "
            f"{n} x {n} grid"
        )
    order = sorted(active, key=lambda t: (-t[1], t[0]))
    rel = [a / (n * n) for _, a in order]
    groups = _column_groups(rel, max_group=n, max_columns=n)

    # --- integer column widths -----------------------------------------
    col_rel_widths = []
    idx = 0
    col_members: list[list[tuple[int, int]]] = []
    for g in groups:
        members = order[idx : idx + g]
        idx += g
        col_members.append(members)
        col_rel_widths.append(sum(a for _, a in members) / (n * n))
    widths = _largest_remainder(
        [w * n for w in col_rel_widths], n, minimum=[1] * len(groups)
    )

    # --- integer heights within each column ----------------------------
    rects: list[Rectangle] = []
    col_start = 0
    for members, width in zip(col_members, widths):
        targets = [a / width for _, a in members]
        heights = _largest_remainder(targets, n, minimum=[1] * len(members))
        row = 0
        for (owner, _), h in zip(members, heights):
            rects.append(
                Rectangle(owner=owner, col=col_start, row=row, width=width, height=h)
            )
            row += h
        col_start += width

    # zero-allocation processors get empty rectangles for index stability
    present = {r.owner for r in rects}
    for i, a in enumerate(allocations):
        if i not in present:
            rects.append(Rectangle(owner=i, col=0, row=0, width=0, height=0))

    rects.sort(key=lambda r: r.owner)
    part = ColumnPartition(n=n, rectangles=tuple(rects), column_widths=tuple(widths))
    part.validate_tiling()
    return part


