"""Data partitioning algorithms (paper Sections II and VI).

Three algorithms are compared in the paper:

* **FPM-based** (:func:`partition_fpm`) — the Lastovetsky–Reddy algorithm:
  find allocations ``x_i`` with ``sum x_i = n`` such that all processors
  finish simultaneously, ``x_1 / s_1(x_1) = ... = x_p / s_p(x_p)``.  With
  increasing time functions the common finish time ``T`` is found by
  bisection; each processor's allocation is the inverse of its time
  function at ``T``.
* **Geometric formulation** (:func:`geometric_partition`) — the same
  solution derived as in [5]: a line through the origin of the (size,
  speed) plane intersects each speed curve at the points of equal execution
  time (the ray's inverse slope *is* that time); the ray is rotated until
  the intersection sizes sum to ``n``.  Kept as an independent code path
  and tested to agree with :func:`partition_fpm`.
* **CPM-based** (:func:`partition_cpm`) — workload proportional to constant
  speeds.
* **Homogeneous** (:func:`partition_homogeneous`) — the even split.

All partitioners work in continuous block units; integer allocation is the
job of :mod:`repro.core.integer`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.batch import (
    BatchSpeedModels,
    allocation_row_at,
    asum,
    batch_models,
    time_row_at,
)
from repro.core.cpm import ConstantPerformanceModel
from repro.core.fpm import as_speed_function
from repro.core.speed_function import SpeedFunction
from repro.obs import get_tracer
from repro.util.validation import check_positive, check_positive_int

#: Relative tolerance on the total allocation reached by bisection.
_SUM_TOL = 1e-9

#: Default convergence knobs of the FPM solver: relative width of the
#: finish-time bracket at which the search stops, and the hard iteration
#: cap.  Exposed as keyword arguments (and through ``SolverOptions``) so
#: callers can trade accuracy for latency.
FPM_TOLERANCE = 1e-12
FPM_MAX_ITERS = 200

#: Iteration-count buckets for the ``partition.solver.iterations``
#: histogram — the Illinois search lands in the 8–32 range on real FPMs.
_ITER_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


def _normalise_models(models) -> list[SpeedFunction]:
    if not models:
        raise ValueError("need at least one performance model")
    return [as_speed_function(m) for m in models]


def _capacity(fn: SpeedFunction) -> float:
    return fn.max_size if fn.bounded else math.inf


def _allocations_at(fns: list[SpeedFunction], finish_time: float) -> list[float]:
    """Each processor's largest workload finishing within ``finish_time``."""
    allocs = []
    for fn in fns:
        cap = _capacity(fn)
        x = fn.max_size_within_time(finish_time)
        allocs.append(min(x, cap))
    return allocs


def _check_capacity(caps, total: float) -> None:
    """Shared infeasibility check; ``asum`` so both twins compare alike."""
    cap_sum = asum(caps)
    if cap_sum < total:
        raise ValueError(
            f"total workload {total} exceeds the combined model capacity "
            f"{cap_sum} (all models bounded)"
        )


def _solve_equal_time(
    evaluate,
    total: float,
    t_hi: float,
    *,
    tolerance: float,
    max_iters: int,
    trace=None,
):
    """Illinois search for the equal-finish-time ``T*`` of one workload.

    ``evaluate(T)`` returns the per-processor allocation vector at finish
    time ``T`` (any sequence; totalled through :func:`asum`).  Both
    :func:`partition_fpm` (batched evaluator) and
    :func:`partition_fpm_scalar` (per-model twin) run through this one
    driver, so every branch decision — bracketing, the false-position /
    bisection choice, the Illinois halving, convergence — is taken on
    bit-identical floats in both.  The residual test is a single
    comparison of the *summed* allocation, so tolerance semantics do not
    depend on the processor count.

    Returns ``(allocs, iterations, evals, t_hi)`` where ``allocs`` is
    the evaluation at the bracket's upper end (the smallest examined
    ``T`` with enough work), matching the pre-vectorisation bisection
    contract, and ``t_hi`` is that finish time — the equal-time ray a
    warm re-solve can seed its bracket with.
    """
    t_lo = 0.0
    g_lo = 0.0 - total
    allocs = evaluate(t_hi)
    s_hi = asum(allocs)
    evals = 1
    while s_hi < total:
        t_hi *= 2.0
        if t_hi > 1e30:  # pragma: no cover - capacity check prevents this
            raise RuntimeError("failed to bracket the balanced finish time")
        allocs = evaluate(t_hi)
        s_hi = asum(allocs)
        evals += 1
    g_hi = s_hi - total

    iterations = 0
    side = 0
    for iteration in range(max_iters):
        if g_hi == 0.0 or t_hi - t_lo <= tolerance * max(1.0, t_hi):
            break
        gap = g_hi - g_lo
        if gap != 0.0:
            t_mid = t_hi - g_hi * (t_hi - t_lo) / gap
        else:  # pragma: no cover - g_lo < 0 <= g_hi keeps gap positive
            t_mid = 0.5 * (t_lo + t_hi)
        if not (t_lo < t_mid < t_hi):
            t_mid = 0.5 * (t_lo + t_hi)
        mid_allocs = evaluate(t_mid)
        g_mid = asum(mid_allocs) - total
        evals += 1
        iterations = iteration + 1
        if trace is not None:
            trace(iteration, mid_allocs)
        if g_mid >= 0.0:
            t_hi = t_mid
            g_hi = g_mid
            allocs = mid_allocs
            if side == 1:
                g_lo *= 0.5
            side = 1
        else:
            t_lo = t_mid
            g_lo = g_mid
            if side == -1:
                g_hi *= 0.5
            side = -1
    return allocs, iterations, evals, t_hi


def _record_solver_metrics(
    tracer, mode: str, processors: int, iterations: int, evals: int
) -> None:
    """Feed the ``partition.solver.*`` instruments (tracing enabled only)."""
    tracer.counter("partition.solver.solves").add(1)
    tracer.counter(f"partition.solver.solves.{mode}").add(1)
    tracer.counter("partition.solver.evaluations").add(evals)
    tracer.histogram("partition.solver.iterations", _ITER_BUCKETS).observe(iterations)
    tracer.gauge("partition.solver.processors").set(processors)


@dataclass(frozen=True)
class FpmSolveState:
    """Warm-start carrier of one flat FPM solve.

    Produced by :func:`partition_fpm_with_state` (and threaded through
    :class:`repro.core.solver.SolveResult`); consumed by
    :func:`resolve_fpm`, which reuses the stacked batch representation —
    rebuilding only the rows of changed models — and can seed the
    Illinois bracket with the previous equal-time ray.  Opaque to
    callers: hold it, hand it back, never reach inside.
    """

    batch: BatchSpeedModels
    total: float
    finish_time: float

    @property
    def processors(self) -> int:
        """Number of models the state covers."""
        return self.batch.count


#: Re-solve modes accepted by :func:`resolve_fpm`.  ``"exact"`` replays
#: the cold solve on the incrementally-updated batch (bit-identical to a
#: fresh :func:`partition_fpm`); ``"bracket"`` additionally seeds the
#: Illinois bracket with the previous equal-time ray — fewer
#: evaluations, allocations equal only to solver tolerance.
RESOLVE_MODES = ("exact", "bracket")


def partition_fpm(
    models,
    total: float,
    *,
    tolerance: float = FPM_TOLERANCE,
    max_iters: int = FPM_MAX_ITERS,
) -> list[float]:
    """FPM-based data partitioning: equal-finish-time allocations.

    The solver operates on **all models at once**: each Illinois
    iteration evaluates one batched ray-intersection
    (:meth:`BatchSpeedModels.allocations_at`) and one vectorized residual
    test, so a 10 000-device solve costs the same number of NumPy kernels
    as a 2-device solve.  Allocations are bit-identical to
    :func:`partition_fpm_scalar`, the per-model reference oracle.

    Parameters
    ----------
    models:
        Per-processor FPMs / speed functions / constants.
    total:
        Total workload in problem-size units (b x b blocks).
    tolerance:
        Relative finish-time bracket width at which the search stops.
    max_iters:
        Hard cap on solver iterations.

    Returns
    -------
    Continuous allocations summing to ``total`` (to numerical tolerance),
    each within its model's valid range.

    Raises
    ------
    ValueError
        If every model is bounded and the combined capacity cannot hold
        ``total``.
    """
    allocs, _ = partition_fpm_with_state(
        models, total, tolerance=tolerance, max_iters=max_iters
    )
    return allocs


def partition_fpm_with_state(
    models,
    total: float,
    *,
    tolerance: float = FPM_TOLERANCE,
    max_iters: int = FPM_MAX_ITERS,
) -> tuple[list[float], FpmSolveState]:
    """:func:`partition_fpm` plus the warm state for incremental re-solves."""
    check_positive("total", total)
    check_positive("tolerance", tolerance)
    check_positive_int("max_iters", max_iters)
    fns = _normalise_models(models)
    batch = batch_models(tuple(fns))
    caps = batch.caps
    _check_capacity(caps, total)

    tracer = get_tracer()
    with tracer.span(
        "partition.fpm", category="partition", processors=len(fns), total=total
    ) as span:
        t_hi = float(np.max(batch.times_at(np.minimum(total, caps)))) + 1e-12
        trace = None
        if tracer.enabled:

            def trace(iteration, mid_allocs):
                _trace_iteration(
                    tracer, "partition.fpm", iteration, fns, mid_allocs, total
                )

        allocs, iterations, evals, t_star = _solve_equal_time(
            batch.allocations_at,
            total,
            t_hi,
            tolerance=tolerance,
            max_iters=max_iters,
            trace=trace,
        )
        span.set_attr("iterations", iterations)
        if tracer.enabled:
            _record_solver_metrics(tracer, "vector", len(fns), iterations, evals)
        scaled = _rescale(allocs, total, caps)
        state = FpmSolveState(
            batch=batch, total=float(total), finish_time=t_star
        )
        return scaled, state


def resolve_fpm(
    state: FpmSolveState,
    *,
    replacements=None,
    dropped=(),
    total: float | None = None,
    mode: str = "exact",
    tolerance: float = FPM_TOLERANCE,
    max_iters: int = FPM_MAX_ITERS,
) -> tuple[list[float], FpmSolveState]:
    """Warm-started incremental re-solve of a previous flat FPM solve.

    ``replacements`` maps model index to its new speed function (a
    refreshed online measurement, say); ``dropped`` lists failed model
    indices; ``total`` overrides the previous workload.  The previous
    batch representation is updated in place of rebuilt
    (:meth:`BatchSpeedModels.with_updates`), so only changed rows pay the
    stacking cost.

    In ``"exact"`` mode (default) the solve replays the cold seed and
    driver on the updated batch — allocations are **bit-identical** to
    :func:`partition_fpm` on the updated model list, which the property
    suite enforces.  ``"bracket"`` mode seeds the Illinois bracket with
    the previous equal-time ray instead: typically ~2 evaluations when
    the change is small, allocations equal to the cold solve only within
    solver tolerance.
    """
    if mode not in RESOLVE_MODES:
        raise ValueError(
            f"unknown resolve mode {mode!r}; expected one of {RESOLVE_MODES}"
        )
    check_positive("tolerance", tolerance)
    check_positive_int("max_iters", max_iters)
    new_total = state.total if total is None else float(total)
    check_positive("total", new_total)
    reps = None
    if replacements:
        reps = {
            int(i): as_speed_function(m) for i, m in replacements.items()
        }
    batch = state.batch.with_updates(reps, dropped)
    caps = batch.caps
    _check_capacity(caps, new_total)
    noop = batch is state.batch and new_total == state.total

    tracer = get_tracer()
    with tracer.span(
        "partition.resolve",
        category="partition",
        processors=batch.count,
        total=new_total,
        mode=mode,
    ) as span:
        if mode == "bracket":
            t_hi = state.finish_time
        else:
            t_hi = (
                float(np.max(batch.times_at(np.minimum(new_total, caps))))
                + 1e-12
            )
        allocs, iterations, evals, t_star = _solve_equal_time(
            batch.allocations_at,
            new_total,
            t_hi,
            tolerance=tolerance,
            max_iters=max_iters,
        )
        span.set_attr("iterations", iterations)
        if tracer.enabled:
            tracer.counter("partition.resolve.solves").add(1)
            tracer.counter(f"partition.resolve.{mode}").add(1)
            if noop:
                tracer.counter("partition.resolve.noop").add(1)
            if reps or dropped:
                tracer.counter("partition.resolve.rows_rebuilt").add(
                    len(reps or ()) + len(tuple(dropped))
                )
            tracer.histogram(
                "partition.resolve.evaluations", _ITER_BUCKETS
            ).observe(evals)
        scaled = _rescale(allocs, new_total, caps)
        new_state = FpmSolveState(
            batch=batch, total=new_total, finish_time=t_star
        )
        return scaled, new_state


def partition_fpm_scalar(
    models,
    total: float,
    *,
    tolerance: float = FPM_TOLERANCE,
    max_iters: int = FPM_MAX_ITERS,
) -> list[float]:
    """Reference oracle for :func:`partition_fpm`: one model at a time.

    Runs the *same* Illinois driver with the scalar twin kernels
    (:func:`repro.core.batch.allocation_row_at` /
    :func:`repro.core.batch.time_row_at`), so its result is bit-identical
    to the vectorized solver on every input — the property suite holds
    the two against each other.  It is deliberately trace-free: a plain
    readable statement of the algorithm, not a production path.
    """
    check_positive("total", total)
    check_positive("tolerance", tolerance)
    check_positive_int("max_iters", max_iters)
    fns = _normalise_models(models)
    caps = [_capacity(fn) for fn in fns]
    _check_capacity(caps, total)

    def evaluate(finish_time):
        return [allocation_row_at(fn, finish_time) for fn in fns]

    t_hi = max(
        time_row_at(fn, min(total, cap)) for fn, cap in zip(fns, caps)
    ) + 1e-12
    allocs, _, _, _ = _solve_equal_time(
        evaluate, total, t_hi, tolerance=tolerance, max_iters=max_iters
    )
    return _rescale(allocs, total, caps)


def _row_sums(matrix: np.ndarray) -> np.ndarray:
    """Per-row :func:`asum`.  A loop on purpose: each row must total via

    the same pairwise reduction as the single-solve path, and
    ``np.add.reduce(matrix, axis=1)`` does not promise that order.
    """
    return np.array([np.add.reduce(matrix[g]) for g in range(matrix.shape[0])])


def partition_fpm_many(
    models,
    totals,
    *,
    tolerance: float = FPM_TOLERANCE,
    max_iters: int = FPM_MAX_ITERS,
) -> list[list[float]]:
    """:func:`partition_fpm` for several workload totals over one model set.

    One masked Illinois search advances every target at once — the
    hierarchical aggregator uses this to build a node's whole aggregate
    speed function in a handful of matrix kernels.  Row ``g`` of the
    result is **bit-identical** to ``partition_fpm(models, totals[g])``:
    each target's bracket evolves by exactly the decisions the single
    solve would take, on exactly the same floats.
    """
    check_positive("tolerance", tolerance)
    check_positive_int("max_iters", max_iters)
    fns = _normalise_models(models)
    targets = [float(t) for t in totals]
    if not targets:
        return []
    batch = batch_models(tuple(fns))
    caps = batch.caps
    for t in targets:
        check_positive("total", t)
        _check_capacity(caps, t)

    tracer = get_tracer()
    with tracer.span(
        "partition.fpm.many",
        category="partition",
        processors=len(fns),
        targets=len(targets),
    ) as span:
        tot = np.asarray(targets, dtype=float)
        n = tot.size
        t_hi = np.empty(n)
        for g in range(n):
            t_hi[g] = float(np.max(batch.times_at(np.minimum(tot[g], caps)))) + 1e-12
        sums = _row_sums(batch.allocations_at_many(t_hi))
        evals = n
        while True:
            need = sums < tot
            if not bool(need.any()):
                break
            if bool(np.any(t_hi[need] > 1e30)):  # pragma: no cover
                raise RuntimeError("failed to bracket the balanced finish time")
            t_hi[need] *= 2.0
            sums[need] = _row_sums(batch.allocations_at_many(t_hi[need]))
            evals += int(need.sum())

        g_hi = sums - tot
        t_lo = np.zeros(n)
        g_lo = 0.0 - tot
        side = np.zeros(n, dtype=np.int8)
        iterations = 0
        for iteration in range(max_iters):
            width_done = (t_hi - t_lo) <= tolerance * np.maximum(1.0, t_hi)
            active = ~((g_hi == 0.0) | width_done)
            if not bool(active.any()):
                break
            idx = np.nonzero(active)[0]
            gap = g_hi[idx] - g_lo[idx]
            with np.errstate(divide="ignore", invalid="ignore"):
                t_mid = t_hi[idx] - g_hi[idx] * (t_hi[idx] - t_lo[idx]) / gap
            inside = (t_lo[idx] < t_mid) & (t_mid < t_hi[idx])
            t_mid = np.where(inside, t_mid, 0.5 * (t_lo[idx] + t_hi[idx]))
            g_mid = _row_sums(batch.allocations_at_many(t_mid)) - tot[idx]
            evals += idx.size
            iterations = iteration + 1

            ge = g_mid >= 0.0
            hi_idx = idx[ge]
            g_lo[hi_idx] = np.where(
                side[hi_idx] == 1, g_lo[hi_idx] * 0.5, g_lo[hi_idx]
            )
            t_hi[hi_idx] = t_mid[ge]
            g_hi[hi_idx] = g_mid[ge]
            side[hi_idx] = 1
            lo_idx = idx[~ge]
            g_hi[lo_idx] = np.where(
                side[lo_idx] == -1, g_hi[lo_idx] * 0.5, g_hi[lo_idx]
            )
            t_lo[lo_idx] = t_mid[~ge]
            g_lo[lo_idx] = g_mid[~ge]
            side[lo_idx] = -1

        final = batch.allocations_at_many(t_hi)
        span.set_attr("iterations", iterations)
        if tracer.enabled:
            _record_solver_metrics(tracer, "many", len(fns), iterations, evals)
        return [
            _rescale(final[g], targets[g], caps) for g in range(n)
        ]


def _trace_iteration(
    tracer, algorithm: str, iteration: int, fns, allocs, total: float
) -> None:
    """Record one partitioner iteration: a span plus convergence gauges.

    Only called when tracing is enabled, so the extra balance evaluation
    never runs on the production path.
    """
    allocated = sum(allocs)
    times = [fn.time(x) for fn, x in zip(fns, allocs) if x > 0]
    imbalance = max(times) / min(times) if times else 1.0
    tracer.record(
        f"{algorithm}.iteration",
        category="partition",
        iteration=iteration,
        allocated=allocated,
        residual=abs(allocated - total) / total,
    )
    tracer.gauge(f"{algorithm}.residual").set(abs(allocated - total) / total)
    tracer.gauge(f"{algorithm}.load_imbalance").set(imbalance)


def geometric_partition(models, total: float) -> list[float]:
    """The line-rotation formulation of FPM partitioning (see module doc).

    A ray ``s = k x`` intersects speed curve ``s_i`` where
    ``s_i(x) = k x``; that intersection is the allocation with execution
    time ``1 / k``.  The slope ``k`` is rotated (bisected) until the
    intersections sum to ``total``.  Each intersection is delegated to
    :meth:`SpeedFunction.size_at_ray`, which solves the crossing segment
    in closed form on monotone-time models — the inner inversion is
    O(log samples) instead of a 200-step numerical bisection.
    """
    check_positive("total", total)
    fns = _normalise_models(models)
    caps = [_capacity(fn) for fn in fns]
    if sum(caps) < total:
        raise ValueError(
            f"total workload {total} exceeds the combined model capacity "
            f"{sum(caps)} (all models bounded)"
        )

    def intersection(fn: SpeedFunction, slope: float, cap: float) -> float:
        return fn.size_at_ray(slope, cap)

    tracer = get_tracer()
    with tracer.span(
        "partition.geometric", category="partition", processors=len(fns), total=total
    ) as span:
        # Steeper ray (larger k) => smaller time 1/k => smaller allocations.
        k_hi = max(
            fn.speed(min(total, cap)) / min(total, cap) for fn, cap in zip(fns, caps)
        )
        while sum(intersection(fn, k_hi, cap) for fn, cap in zip(fns, caps)) < total:
            k_hi /= 2.0
            if k_hi < 1e-30:  # pragma: no cover
                raise RuntimeError("failed to bracket the partitioning ray")
        k_lo = k_hi
        while sum(intersection(fn, k_lo, cap) for fn, cap in zip(fns, caps)) < total:
            k_lo /= 2.0  # pragma: no cover - k_hi loop already reached the bracket
        k_steep = k_hi * 2.0
        # bisect slope between k_lo (enough work) and k_steep (too little)
        while sum(intersection(fn, k_steep, cap) for fn, cap in zip(fns, caps)) >= total:
            k_steep *= 2.0
            if k_steep > 1e30:
                break
        lo, hi = k_lo, k_steep
        iterations = 0
        for iteration in range(200):
            mid = 0.5 * (lo + hi)
            mid_allocs = [intersection(fn, mid, cap) for fn, cap in zip(fns, caps)]
            if sum(mid_allocs) >= total:
                lo = mid
            else:
                hi = mid
            iterations = iteration + 1
            if tracer.enabled:
                _trace_iteration(
                    tracer, "partition.geometric", iteration, fns, mid_allocs, total
                )
            if hi - lo <= 1e-12 * max(1e-30, hi):
                break
        allocs = [intersection(fn, lo, cap) for fn, cap in zip(fns, caps)]
        span.set_attr("iterations", iterations)
        return _rescale(allocs, total, [_capacity(fn) for fn in fns])


def partition_cpm(models, total: float) -> list[float]:
    """Traditional partitioning: workload proportional to constant speeds.

    ``models`` may be :class:`ConstantPerformanceModel` instances or bare
    positive numbers.
    """
    check_positive("total", total)
    if not models:
        raise ValueError("need at least one performance model")
    speeds = []
    for m in models:
        if isinstance(m, ConstantPerformanceModel):
            speeds.append(m.speed)
        elif isinstance(m, (int, float)) and not isinstance(m, bool):
            check_positive("constant speed", float(m))
            speeds.append(float(m))
        else:
            raise TypeError(
                f"partition_cpm expects constants, got {type(m).__name__}"
            )
    s = sum(speeds)
    with get_tracer().span(
        "partition.cpm", category="partition", processors=len(speeds), total=total
    ):
        return [total * v / s for v in speeds]


def partition_homogeneous(num_processors: int, total: float) -> list[float]:
    """The even split used by homogeneous partitioning."""
    check_positive_int("num_processors", num_processors)
    check_positive("total", total)
    with get_tracer().span(
        "partition.homogeneous",
        category="partition",
        processors=num_processors,
        total=total,
    ):
        return [total / num_processors] * num_processors


@dataclass(frozen=True)
class BalanceReport:
    """Per-processor times and imbalance statistics of an allocation."""

    times: tuple[float, ...]
    makespan: float
    imbalance: float  # max time / min positive time (1.0 == perfect)

    @property
    def balanced(self) -> bool:
        """Within 1% of perfect balance."""
        return self.imbalance <= 1.01


def balance_report(models, allocations) -> BalanceReport:
    """Evaluate how balanced an allocation is under the given models."""
    fns = _normalise_models(models)
    if len(fns) != len(allocations):
        raise ValueError(
            f"{len(fns)} models but {len(allocations)} allocations"
        )
    times = tuple(
        fn.time(x) if x > 0 else 0.0 for fn, x in zip(fns, allocations)
    )
    positive = [t for t in times if t > 0]
    makespan = max(times) if times else 0.0
    imbalance = (makespan / min(positive)) if positive else 1.0
    return BalanceReport(times=times, makespan=makespan, imbalance=imbalance)


def _rescale(allocs, total: float, caps) -> list[float]:
    """Scale allocations to sum exactly to ``total`` without breaching caps.

    The happy path is vectorised but bit-identical to the scalar loop it
    replaced: sums go through ``np.add.accumulate`` (a strict left fold,
    the same additions in the same order as ``sum``), the clip is the
    same elementwise ``min``.  Both the batched and the scalar-oracle
    partitioners finish through this one function, so the identity
    contract between them is unaffected.
    """
    arr = np.asarray(allocs, dtype=float)
    caps_arr = np.asarray(caps, dtype=float)
    s = float(np.add.accumulate(arr)[-1])
    if s <= 0:
        raise RuntimeError("partitioner produced an empty allocation")
    if abs(s - total) <= _SUM_TOL * total:
        factor = total / s
        scaled = np.minimum(arr * factor, caps_arr)
        deficit = total - float(np.add.accumulate(scaled)[-1])
        if abs(deficit) > _SUM_TOL * total:
            # push any residual into uncapped processors
            free = np.nonzero(scaled < caps_arr)[0]
            if free.size == 0:
                raise ValueError("capacity exhausted while rescaling")
            scaled[free[0]] += deficit
        return scaled.tolist()
    # Bisection stopped short (pathological models, e.g. time plateaus);
    # distribute the gap evenly among the processors that can absorb it —
    # below-cap ones when adding work, positive ones when taking it away.
    # Clamping may strand a remainder, so repeat until the sum converges
    # (each round retires at least one clamped processor).
    out = arr.tolist()
    caps = caps_arr.tolist()
    for _ in range(len(out) + 1):
        gap = total - sum(out)
        if abs(gap) <= _SUM_TOL * total:
            break
        if gap > 0:
            adjustable = [i for i in range(len(out)) if out[i] < caps[i]]
        else:
            adjustable = [i for i in range(len(out)) if out[i] > 0.0]
        if not adjustable:
            raise ValueError("capacity exhausted while balancing")
        share = gap / len(adjustable)
        for i in adjustable:
            out[i] = min(max(0.0, out[i] + share), caps[i])
    # final exact fix on any allocation with room for the residual
    gap = total - sum(out)
    if gap != 0.0:
        for i in range(len(out)):
            if 0.0 <= out[i] + gap <= caps[i]:
                out[i] += gap
                break
    return out
