"""Data partitioning algorithms (paper Sections II and VI).

Three algorithms are compared in the paper:

* **FPM-based** (:func:`partition_fpm`) — the Lastovetsky–Reddy algorithm:
  find allocations ``x_i`` with ``sum x_i = n`` such that all processors
  finish simultaneously, ``x_1 / s_1(x_1) = ... = x_p / s_p(x_p)``.  With
  increasing time functions the common finish time ``T`` is found by
  bisection; each processor's allocation is the inverse of its time
  function at ``T``.
* **Geometric formulation** (:func:`geometric_partition`) — the same
  solution derived as in [5]: a line through the origin of the (size,
  speed) plane intersects each speed curve at the points of equal execution
  time (the ray's inverse slope *is* that time); the ray is rotated until
  the intersection sizes sum to ``n``.  Kept as an independent code path
  and tested to agree with :func:`partition_fpm`.
* **CPM-based** (:func:`partition_cpm`) — workload proportional to constant
  speeds.
* **Homogeneous** (:func:`partition_homogeneous`) — the even split.

All partitioners work in continuous block units; integer allocation is the
job of :mod:`repro.core.integer`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.cpm import ConstantPerformanceModel
from repro.core.fpm import as_speed_function
from repro.core.speed_function import SpeedFunction
from repro.obs import get_tracer
from repro.util.validation import check_positive, check_positive_int

#: Relative tolerance on the total allocation reached by bisection.
_SUM_TOL = 1e-9


def _normalise_models(models) -> list[SpeedFunction]:
    if not models:
        raise ValueError("need at least one performance model")
    return [as_speed_function(m) for m in models]


def _capacity(fn: SpeedFunction) -> float:
    return fn.max_size if fn.bounded else math.inf


def _allocations_at(fns: list[SpeedFunction], finish_time: float) -> list[float]:
    """Each processor's largest workload finishing within ``finish_time``."""
    allocs = []
    for fn in fns:
        cap = _capacity(fn)
        x = fn.max_size_within_time(finish_time)
        allocs.append(min(x, cap))
    return allocs


def partition_fpm(models, total: float) -> list[float]:
    """FPM-based data partitioning: equal-finish-time allocations.

    Parameters
    ----------
    models:
        Per-processor FPMs / speed functions / constants.
    total:
        Total workload in problem-size units (b x b blocks).

    Returns
    -------
    Continuous allocations summing to ``total`` (to numerical tolerance),
    each within its model's valid range.

    Raises
    ------
    ValueError
        If every model is bounded and the combined capacity cannot hold
        ``total``.
    """
    check_positive("total", total)
    fns = _normalise_models(models)
    caps = [_capacity(fn) for fn in fns]
    if sum(caps) < total:
        raise ValueError(
            f"total workload {total} exceeds the combined model capacity "
            f"{sum(caps)} (all models bounded)"
        )

    tracer = get_tracer()
    with tracer.span(
        "partition.fpm", category="partition", processors=len(fns), total=total
    ) as span:
        # Bracket the finish time: t_lo gives too little work, t_hi enough.
        t_lo = 0.0
        t_hi = max(fn.time(min(total, cap)) for fn, cap in zip(fns, caps)) + 1e-12
        while sum(_allocations_at(fns, t_hi)) < total:
            t_hi *= 2.0
            if t_hi > 1e30:  # pragma: no cover - capacity check prevents this
                raise RuntimeError("failed to bracket the balanced finish time")

        iterations = 0
        for iteration in range(200):
            t_mid = 0.5 * (t_lo + t_hi)
            mid_allocs = _allocations_at(fns, t_mid)
            if sum(mid_allocs) >= total:
                t_hi = t_mid
            else:
                t_lo = t_mid
            iterations = iteration + 1
            if tracer.enabled:
                _trace_iteration(
                    tracer, "partition.fpm", iteration, fns, mid_allocs, total
                )
            if t_hi - t_lo <= 1e-12 * max(1.0, t_hi):
                break

        allocs = _allocations_at(fns, t_hi)
        span.set_attr("iterations", iterations)
        return _rescale(allocs, total, caps)


def _trace_iteration(
    tracer, algorithm: str, iteration: int, fns, allocs, total: float
) -> None:
    """Record one partitioner iteration: a span plus convergence gauges.

    Only called when tracing is enabled, so the extra balance evaluation
    never runs on the production path.
    """
    allocated = sum(allocs)
    times = [fn.time(x) for fn, x in zip(fns, allocs) if x > 0]
    imbalance = max(times) / min(times) if times else 1.0
    tracer.record(
        f"{algorithm}.iteration",
        category="partition",
        iteration=iteration,
        allocated=allocated,
        residual=abs(allocated - total) / total,
    )
    tracer.gauge(f"{algorithm}.residual").set(abs(allocated - total) / total)
    tracer.gauge(f"{algorithm}.load_imbalance").set(imbalance)


def geometric_partition(models, total: float) -> list[float]:
    """The line-rotation formulation of FPM partitioning (see module doc).

    A ray ``s = k x`` intersects speed curve ``s_i`` where
    ``s_i(x) = k x``; that intersection is the allocation with execution
    time ``1 / k``.  The slope ``k`` is rotated (bisected) until the
    intersections sum to ``total``.  Each intersection is delegated to
    :meth:`SpeedFunction.size_at_ray`, which solves the crossing segment
    in closed form on monotone-time models — the inner inversion is
    O(log samples) instead of a 200-step numerical bisection.
    """
    check_positive("total", total)
    fns = _normalise_models(models)
    caps = [_capacity(fn) for fn in fns]
    if sum(caps) < total:
        raise ValueError(
            f"total workload {total} exceeds the combined model capacity "
            f"{sum(caps)} (all models bounded)"
        )

    def intersection(fn: SpeedFunction, slope: float, cap: float) -> float:
        return fn.size_at_ray(slope, cap)

    tracer = get_tracer()
    with tracer.span(
        "partition.geometric", category="partition", processors=len(fns), total=total
    ) as span:
        # Steeper ray (larger k) => smaller time 1/k => smaller allocations.
        k_hi = max(
            fn.speed(min(total, cap)) / min(total, cap) for fn, cap in zip(fns, caps)
        )
        while sum(intersection(fn, k_hi, cap) for fn, cap in zip(fns, caps)) < total:
            k_hi /= 2.0
            if k_hi < 1e-30:  # pragma: no cover
                raise RuntimeError("failed to bracket the partitioning ray")
        k_lo = k_hi
        while sum(intersection(fn, k_lo, cap) for fn, cap in zip(fns, caps)) < total:
            k_lo /= 2.0  # pragma: no cover - k_hi loop already reached the bracket
        k_steep = k_hi * 2.0
        # bisect slope between k_lo (enough work) and k_steep (too little)
        while sum(intersection(fn, k_steep, cap) for fn, cap in zip(fns, caps)) >= total:
            k_steep *= 2.0
            if k_steep > 1e30:
                break
        lo, hi = k_lo, k_steep
        iterations = 0
        for iteration in range(200):
            mid = 0.5 * (lo + hi)
            mid_allocs = [intersection(fn, mid, cap) for fn, cap in zip(fns, caps)]
            if sum(mid_allocs) >= total:
                lo = mid
            else:
                hi = mid
            iterations = iteration + 1
            if tracer.enabled:
                _trace_iteration(
                    tracer, "partition.geometric", iteration, fns, mid_allocs, total
                )
            if hi - lo <= 1e-12 * max(1e-30, hi):
                break
        allocs = [intersection(fn, lo, cap) for fn, cap in zip(fns, caps)]
        span.set_attr("iterations", iterations)
        return _rescale(allocs, total, [_capacity(fn) for fn in fns])


def partition_cpm(models, total: float) -> list[float]:
    """Traditional partitioning: workload proportional to constant speeds.

    ``models`` may be :class:`ConstantPerformanceModel` instances or bare
    positive numbers.
    """
    check_positive("total", total)
    if not models:
        raise ValueError("need at least one performance model")
    speeds = []
    for m in models:
        if isinstance(m, ConstantPerformanceModel):
            speeds.append(m.speed)
        elif isinstance(m, (int, float)) and not isinstance(m, bool):
            check_positive("constant speed", float(m))
            speeds.append(float(m))
        else:
            raise TypeError(
                f"partition_cpm expects constants, got {type(m).__name__}"
            )
    s = sum(speeds)
    with get_tracer().span(
        "partition.cpm", category="partition", processors=len(speeds), total=total
    ):
        return [total * v / s for v in speeds]


def partition_homogeneous(num_processors: int, total: float) -> list[float]:
    """The even split used by homogeneous partitioning."""
    check_positive_int("num_processors", num_processors)
    check_positive("total", total)
    with get_tracer().span(
        "partition.homogeneous",
        category="partition",
        processors=num_processors,
        total=total,
    ):
        return [total / num_processors] * num_processors


@dataclass(frozen=True)
class BalanceReport:
    """Per-processor times and imbalance statistics of an allocation."""

    times: tuple[float, ...]
    makespan: float
    imbalance: float  # max time / min positive time (1.0 == perfect)

    @property
    def balanced(self) -> bool:
        """Within 1% of perfect balance."""
        return self.imbalance <= 1.01


def balance_report(models, allocations) -> BalanceReport:
    """Evaluate how balanced an allocation is under the given models."""
    fns = _normalise_models(models)
    if len(fns) != len(allocations):
        raise ValueError(
            f"{len(fns)} models but {len(allocations)} allocations"
        )
    times = tuple(
        fn.time(x) if x > 0 else 0.0 for fn, x in zip(fns, allocations)
    )
    positive = [t for t in times if t > 0]
    makespan = max(times) if times else 0.0
    imbalance = (makespan / min(positive)) if positive else 1.0
    return BalanceReport(times=times, makespan=makespan, imbalance=imbalance)


def _rescale(allocs: list[float], total: float, caps: list[float]) -> list[float]:
    """Scale allocations to sum exactly to ``total`` without breaching caps."""
    s = sum(allocs)
    if s <= 0:
        raise RuntimeError("partitioner produced an empty allocation")
    if abs(s - total) <= _SUM_TOL * total:
        factor = total / s
        scaled = [min(a * factor, cap) for a, cap in zip(allocs, caps)]
        deficit = total - sum(scaled)
        if abs(deficit) > _SUM_TOL * total:
            # push any residual into uncapped processors
            free = [i for i, cap in enumerate(caps) if scaled[i] < cap]
            if not free:
                raise ValueError("capacity exhausted while rescaling")
            scaled[free[0]] += deficit
        return scaled
    # Bisection stopped short (pathological models, e.g. time plateaus);
    # distribute the gap evenly among the processors that can absorb it —
    # below-cap ones when adding work, positive ones when taking it away.
    # Clamping may strand a remainder, so repeat until the sum converges
    # (each round retires at least one clamped processor).
    out = list(allocs)
    for _ in range(len(out) + 1):
        gap = total - sum(out)
        if abs(gap) <= _SUM_TOL * total:
            break
        if gap > 0:
            adjustable = [i for i in range(len(out)) if out[i] < caps[i]]
        else:
            adjustable = [i for i in range(len(out)) if out[i] > 0.0]
        if not adjustable:
            raise ValueError("capacity exhausted while balancing")
        share = gap / len(adjustable)
        for i in adjustable:
            out[i] = min(max(0.0, out[i] + share), caps[i])
    # final exact fix on any allocation with room for the residual
    gap = total - sum(out)
    if gap != 0.0:
        for i in range(len(out)):
            if 0.0 <= out[i] + gap <= caps[i]:
                out[i] += gap
                break
    return out
