"""The CPU GEMM kernel (the paper's ACML SGEMM stand-in).

Following Section III, CPU performance is measured for a *group* of cores
executing the kernel simultaneously: a :class:`CpuGemmKernel` is bound to a
socket and a core count ``c``; its problem area ``x`` is split evenly so
each core updates an area of ``x / c`` blocks, and the group finishes when
the (synchronised, identically loaded) cores finish.

The module also provides :func:`numpy_gemm_update`, a *real* numerical
rank-``b`` update used by the application's verification path — the
simulator predicts time, numpy produces the actual numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels.interface import KernelRange, as_area_array
from repro.platform.device import SimulatedSocket
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class CpuGemmKernel:
    """ACML-like GEMM kernel on ``active_cores`` cores of one socket.

    ``gpu_active`` marks whether a GPU host process is busy on the same
    socket (the paper's Fig. 5a contention scenario); it costs the cores a
    small slowdown configured on the node spec.
    """

    socket: SimulatedSocket
    active_cores: int
    gpu_active: bool = False

    def __post_init__(self) -> None:
        check_positive_int("active_cores", self.active_cores)
        if self.active_cores > self.socket.spec.cores:
            raise ValueError(
                f"active_cores={self.active_cores} exceeds the "
                f"{self.socket.spec.cores} cores of {self.socket.name}"
            )

    @property
    def name(self) -> str:
        suffix = "+gpu" if self.gpu_active else ""
        return f"cpu-gemm[{self.socket.name}:c{self.active_cores}{suffix}]"

    @property
    def block_size(self) -> int:
        return self.socket.block_size

    @property
    def valid_range(self) -> KernelRange:
        return KernelRange()  # host memory is ample for all studied sizes

    def run_time(self, area_blocks: float, busy_cpu_cores: int = 0) -> float:
        """Seconds for one kernel run over the socket's area ``x`` blocks.

        ``busy_cpu_cores`` is accepted for protocol compatibility but
        ignored — CPU-side contention is captured by ``active_cores`` and
        ``gpu_active``.
        """
        if area_blocks < 0:
            raise ValueError(f"area_blocks must be >= 0, got {area_blocks}")
        return float(self.run_time_batch((area_blocks,), busy_cpu_cores)[0])

    def run_time_batch(self, area_blocks, busy_cpu_cores: int = 0) -> np.ndarray:
        """Ideal seconds at each area of a batch (the sweep fast path)."""
        del busy_cpu_cores
        areas = as_area_array(area_blocks)
        return self.socket.kernel_time_batch(
            areas, self.active_cores, self.gpu_active
        )


@dataclass(frozen=True)
class CpuCoreGemmKernel:
    """The per-process view: ONE core's kernel time for its own area.

    The socket-level model ``s_c(x)`` and this per-core kernel are two
    views of the same measurement: a socket run of area ``x`` on ``c``
    cores is ``c`` simultaneous per-core runs of ``x / c`` each, so
    ``core_time(a) == socket_time(c * a)``.  The application simulator
    charges each CPU rank this per-core time for its rectangle.
    """

    socket: SimulatedSocket
    active_cores: int
    gpu_active: bool = False

    def __post_init__(self) -> None:
        check_positive_int("active_cores", self.active_cores)
        if self.active_cores > self.socket.spec.cores:
            raise ValueError(
                f"active_cores={self.active_cores} exceeds the "
                f"{self.socket.spec.cores} cores of {self.socket.name}"
            )

    @property
    def name(self) -> str:
        suffix = "+gpu" if self.gpu_active else ""
        return f"cpu-core-gemm[{self.socket.name}:c{self.active_cores}{suffix}]"

    @property
    def block_size(self) -> int:
        return self.socket.block_size

    @property
    def valid_range(self) -> KernelRange:
        return KernelRange()

    def run_time(self, area_blocks: float, busy_cpu_cores: int = 0) -> float:
        """Seconds for one kernel run of THIS core's area ``x`` blocks."""
        if area_blocks < 0:
            raise ValueError(f"area_blocks must be >= 0, got {area_blocks}")
        return float(self.run_time_batch((area_blocks,), busy_cpu_cores)[0])

    def run_time_batch(self, area_blocks, busy_cpu_cores: int = 0) -> np.ndarray:
        """Ideal seconds at each per-core area of a batch."""
        del busy_cpu_cores
        areas = as_area_array(area_blocks)
        return self.socket.core(0).kernel_time_batch(
            areas, self.active_cores, self.gpu_active
        )


def numpy_gemm_update(
    c_block: np.ndarray, a_panel: np.ndarray, b_panel: np.ndarray
) -> None:
    """In-place rank-k update ``C += A x B`` (the kernel's real arithmetic).

    Shapes: ``C (m, n)``, ``A (m, k)``, ``B (k, n)``.  Used by the numeric
    verification path of the application (small block sizes), while the
    simulated platform provides timings at the paper's b = 640.
    """
    if c_block.ndim != 2 or a_panel.ndim != 2 or b_panel.ndim != 2:
        raise ValueError("numpy_gemm_update expects 2-D arrays")
    m, n = c_block.shape
    if a_panel.shape[0] != m or b_panel.shape[1] != n:
        raise ValueError(
            f"shape mismatch: C {c_block.shape}, A {a_panel.shape}, "
            f"B {b_panel.shape}"
        )
    if a_panel.shape[1] != b_panel.shape[0]:
        raise ValueError(
            f"inner dimensions differ: A {a_panel.shape} vs B {b_panel.shape}"
        )
    # BLAS-backed; accumulate in place without allocating a temporary for C.
    c_block += a_panel @ b_panel
