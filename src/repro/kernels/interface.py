"""The kernel abstraction shared by CPU and GPU implementations.

A *kernel* (paper Section II) is a short code whose speed equals the full
application's speed at the same problem size: here, one rank-``b`` update of
the processor's ``C`` submatrix.  The measurement layer times kernels; the
FPM layer turns (size, time) samples into speed functions; the application
simulator charges one kernel run per iteration of the main loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.util.units import gemm_kernel_flops
from repro.util.validation import check_nonnegative


def as_area_array(area_blocks: "Sequence[float] | np.ndarray") -> np.ndarray:
    """Normalise a batch of problem areas to a validated 1-D float64 array.

    Shared by every kernel's ``run_time_batch``: rejects negative areas with
    the scalar methods' semantics, so batched and scalar validation agree.
    """
    areas = np.asarray(area_blocks, dtype=np.float64)
    if areas.ndim != 1:
        raise ValueError(f"area_blocks batch must be 1-D, got shape {areas.shape}")
    if areas.size and float(areas.min()) < 0:
        raise ValueError(f"area_blocks must be >= 0, got {float(areas.min())}")
    return areas


@dataclass(frozen=True)
class KernelRange:
    """Valid problem-size range of a kernel, in b x b blocks.

    Plain in-core GPU kernels are only defined while the data fits device
    memory (``max_blocks`` finite); out-of-core kernels extend the range
    "to infinity" (paper Section I).
    """

    min_blocks: float = 0.0
    max_blocks: float = math.inf

    def __post_init__(self) -> None:
        check_nonnegative("min_blocks", self.min_blocks)
        if not self.max_blocks > self.min_blocks:
            raise ValueError(
                f"max_blocks ({self.max_blocks}) must exceed min_blocks "
                f"({self.min_blocks})"
            )

    def contains(self, area_blocks: float) -> bool:
        """True when the kernel is defined for this problem area."""
        return self.min_blocks <= area_blocks <= self.max_blocks

    def require(self, area_blocks: float, kernel_name: str) -> None:
        """Raise ValueError when the area is outside the kernel's range."""
        if not self.contains(area_blocks):
            raise ValueError(
                f"problem area {area_blocks} blocks is outside the valid "
                f"range [{self.min_blocks}, {self.max_blocks}] of kernel "
                f"{kernel_name!r}"
            )


@runtime_checkable
class Kernel(Protocol):
    """One timeable kernel bound to a processing element."""

    @property
    def name(self) -> str:
        """Stable identifier (used for RNG-noise keying and reports)."""
        ...

    @property
    def block_size(self) -> int:
        """Blocking factor b of the kernel's workload units."""
        ...

    @property
    def valid_range(self) -> KernelRange:
        """Problem sizes for which the kernel is defined."""
        ...

    def run_time(self, area_blocks: float, busy_cpu_cores: int = 0) -> float:
        """Ideal seconds of ONE kernel run on a problem area of ``x`` blocks.

        ``busy_cpu_cores`` conveys the contention state: how many CPU
        kernels run concurrently on the same socket (GPU kernels slow down
        under it; for CPU kernels the argument signals a busy GPU when
        negative conventions are avoided by the dedicated parameter of
        :class:`repro.kernels.gemm_cpu.CpuGemmKernel`).
        """
        ...

    def run_time_batch(
        self, area_blocks: "Sequence[float] | np.ndarray", busy_cpu_cores: int = 0
    ) -> np.ndarray:
        """Ideal seconds of one kernel run at EACH area of a batch.

        The vectorised twin of :meth:`run_time` — element ``i`` equals
        ``run_time(area_blocks[i], busy_cpu_cores)`` bitwise.  Measurement
        sweeps call this once per grid instead of once per point.
        """
        ...


def kernel_speed_gflops(kernel: Kernel, area_blocks: float, busy_cpu_cores: int = 0) -> float:
    """Speed (GFlops) of a kernel at a problem area, from its ideal time."""
    if area_blocks <= 0:
        raise ValueError(f"area_blocks must be > 0, got {area_blocks}")
    t = kernel.run_time(area_blocks, busy_cpu_cores)
    return gemm_kernel_flops(area_blocks, kernel.block_size) / t / 1e9
