"""Out-of-core tiling of the GPU kernel (paper Fig. 4a).

When a processor's ``C_i`` submatrix exceeds device memory, the kernel
splits the pivot column ``A_(b)``, the pivot row ``B_(b)`` and ``C_i`` into
rectangles that fit the device, and updates the rectangles one by one.  The
paper adds two refinements that this planner reproduces:

* the *last two rectangles* stay resident on the device between kernel runs
  and the update order is reversed every other run, saving two transfers in
  each direction per run;
* rectangle dimensions are kept multiples of 32 elements, because CUBLAS
  GEMM pays a significant penalty on misaligned shapes (Barrachina et al.).

The planner works in element space on the near-square block rectangle that
the partitioner assigned to the processor, and splits along the longer side
into near-equal strips.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.util.validation import check_nonnegative, check_positive, check_positive_int


@dataclass(frozen=True)
class Tile:
    """One rectangle of ``C_i`` in the out-of-core schedule.

    ``upload_needed`` / ``download_needed`` are False for the rectangles
    that stay resident across kernel runs.
    """

    rows: int
    cols: int
    alignment: int
    upload_needed: bool = True
    download_needed: bool = True

    def __post_init__(self) -> None:
        check_positive_int("rows", self.rows)
        check_positive_int("cols", self.cols)
        check_positive_int("alignment", self.alignment)

    @property
    def elements(self) -> int:
        return self.rows * self.cols

    @property
    def aligned(self) -> bool:
        """True when both dimensions are multiples of the alignment unit."""
        return self.rows % self.alignment == 0 and self.cols % self.alignment == 0

    def area_blocks(self, block_size: int) -> float:
        """Tile area expressed in b x b blocks."""
        return self.elements / (block_size * block_size)


@dataclass(frozen=True)
class TilingPlan:
    """The complete per-run tiling of one processor's ``C_i``."""

    rows: int
    cols: int
    block_size: int
    tiles: tuple[Tile, ...]
    kept_resident: int

    @property
    def num_tiles(self) -> int:
        return len(self.tiles)

    @property
    def area_blocks(self) -> float:
        return self.rows * self.cols / (self.block_size * self.block_size)

    @property
    def uploads(self) -> tuple[Tile, ...]:
        """Tiles whose rectangle must be sent to the device each run."""
        return tuple(t for t in self.tiles if t.upload_needed)

    @property
    def downloads(self) -> tuple[Tile, ...]:
        """Tiles whose rectangle must be fetched back each run."""
        return tuple(t for t in self.tiles if t.download_needed)

    @property
    def transferred_blocks_each_way(self) -> float:
        """Blocks of C crossing PCIe per run, one way (paper's saving applied)."""
        return sum(t.area_blocks(self.block_size) for t in self.uploads)

    def validate_coverage(self) -> None:
        """Raise ValueError unless the tiles exactly cover the rectangle."""
        covered = sum(t.elements for t in self.tiles)
        if covered != self.rows * self.cols:
            raise ValueError(
                f"tiles cover {covered} elements but the rectangle has "
                f"{self.rows * self.cols}"
            )


def _split_lengths(total: int, parts: int, alignment: int) -> list[int]:
    """Split ``total`` into ``parts`` positive lengths, alignment-friendly.

    All lengths except possibly the last are multiples of ``alignment``; the
    lengths sum exactly to ``total`` and differ as little as the alignment
    constraint allows.
    """
    if parts > total:
        raise ValueError(f"cannot split length {total} into {parts} parts")
    base = total // parts
    aligned_base = (base // alignment) * alignment
    if aligned_base == 0:
        # Too small for aligned strips; fall back to an even integer split.
        lengths = [base] * parts
        for i in range(total - base * parts):
            lengths[i] += 1
        return lengths
    lengths = [aligned_base] * parts
    remainder = total - aligned_base * parts
    # Hand the remainder out in alignment-sized increments, then give any
    # final sliver to the last strip (the only possibly-misaligned one).
    i = 0
    while remainder >= alignment:
        lengths[i % parts] += alignment
        remainder -= alignment
        i += 1
    lengths[-1] += remainder
    return lengths


@lru_cache(maxsize=1024)
def plan_tiling(
    rows: int,
    cols: int,
    tile_capacity_blocks: float,
    block_size: int,
    alignment: int = 32,
    keep_resident: int = 2,
) -> TilingPlan:
    """Plan the out-of-core tiling of a ``rows x cols``-element rectangle.

    ``tile_capacity_blocks`` is the largest per-tile C area the device
    buffers allow (see
    :meth:`repro.platform.memory.GpuMemoryModel.out_of_core_tile_blocks`).
    ``keep_resident`` rectangles are marked as needing no transfers, but
    only when more tiles than that exist — otherwise everything is resident
    and the plan degenerates to the in-core case.

    Plans are deterministic and immutable, so results are memoised — the
    execution simulator and the measurement sweeps re-plan the same
    geometry for every repetition/iteration.
    """
    check_positive_int("rows", rows)
    check_positive_int("cols", cols)
    check_positive("tile_capacity_blocks", tile_capacity_blocks)
    check_positive_int("block_size", block_size)
    check_positive_int("alignment", alignment)
    check_nonnegative("keep_resident", keep_resident)

    area_blocks = rows * cols / (block_size * block_size)
    num_tiles = max(1, math.ceil(area_blocks / tile_capacity_blocks))
    long_dim = max(rows, cols)

    while True:
        if num_tiles > long_dim:
            raise ValueError(
                f"rectangle {rows}x{cols} cannot be split into {num_tiles} "
                f"strips of capacity {tile_capacity_blocks} blocks"
            )
        lengths = _split_lengths(long_dim, num_tiles, alignment)
        split_rows = rows >= cols
        tiles = []
        for j, length in enumerate(lengths):
            t_rows, t_cols = (length, cols) if split_rows else (rows, length)
            # With keep_resident = 0 (version 1 semantics) every tile is
            # transferred, even a single one.  Otherwise the first
            # min(keep_resident, k - 1) tiles stay on device — and a lone
            # tile that fits entirely is simply resident.
            if keep_resident == 0:
                resident = False
            elif num_tiles == 1:
                resident = True
            else:
                resident = j < min(keep_resident, num_tiles - 1)
            tiles.append(
                Tile(
                    rows=t_rows,
                    cols=t_cols,
                    alignment=alignment,
                    upload_needed=not resident,
                    download_needed=not resident,
                )
            )
        worst = max(t.area_blocks(block_size) for t in tiles)
        if worst <= tile_capacity_blocks * (1.0 + 1e-9) or num_tiles == long_dim:
            plan = TilingPlan(
                rows=rows,
                cols=cols,
                block_size=block_size,
                tiles=tuple(tiles),
                kept_resident=sum(1 for t in tiles if not t.upload_needed),
            )
            plan.validate_coverage()
            return plan
        num_tiles += 1


@dataclass(frozen=True)
class RunTransferLog:
    """Transfers of one kernel run in the cross-run residency simulation."""

    uploads: tuple[int, ...]  # tile indices sent to the device this run
    downloads: tuple[int, ...]  # tile indices evicted back to the host
    resident_after: tuple[int, ...]  # tiles on the device at run end


def simulate_consecutive_runs(plan: TilingPlan, runs: int) -> list[RunTransferLog]:
    """Replay the paper's residency policy across application iterations.

    Version 2/3 keep the last ``kept_resident`` rectangles on the device
    between kernel runs and reverse the update order every other run, so
    the tiles processed *first* in a run are exactly the ones left behind
    by the previous run — they need no upload, and (being re-updated
    before anything reads them on the host) their eviction is skipped too.

    Returns one :class:`RunTransferLog` per run.  Steady-state runs must
    transfer exactly ``plan.uploads`` worth of tiles — the quantity the
    timing model charges — which the tests assert.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    keep = plan.kept_resident
    order = list(range(plan.num_tiles))
    device: list[int] = []  # tiles resident at the run boundary
    logs: list[RunTransferLog] = []
    if keep == 0:
        capacity = 0  # version-1 semantics: nothing ever stays resident
    elif plan.num_tiles == 1:
        capacity = 1  # the single tile is simply resident
    else:
        capacity = keep
    for run in range(runs):
        # reverse the order every other run so the run starts with the
        # tiles the previous run left resident
        current = order if run % 2 == 0 else list(reversed(order))
        if capacity == 0:
            # version-1 semantics: nothing stays resident
            logs.append(
                RunTransferLog(
                    uploads=tuple(current),
                    downloads=tuple(current),
                    resident_after=(),
                )
            )
            continue
        uploads: list[int] = []
        downloads: list[int] = []
        resident = list(device)
        for tile in current:
            if tile not in resident:
                # make room: evict the resident tile updated longest ago
                while len(resident) >= capacity:
                    evicted = resident.pop(0)
                    downloads.append(evicted)
                uploads.append(tile)
                resident.append(tile)
            else:
                # freshen its position: it was just updated
                resident.remove(tile)
                resident.append(tile)
        device = resident[-capacity:]
        logs.append(
            RunTransferLog(
                uploads=tuple(uploads),
                downloads=tuple(downloads),
                resident_after=tuple(device),
            )
        )
    return logs


def near_square_shape(area_blocks: float, block_size: int) -> tuple[int, int]:
    """Element dimensions of a near-square rectangle with the given block area.

    The partitioning arranges submatrices "as square as possible" (paper
    Section IV); kernels modelling a processor's area therefore assume a
    square-ish shape.  Rows are the rounded square-root side; columns make
    the area exact to the nearest element.
    """
    check_positive("area_blocks", area_blocks)
    elements = area_blocks * block_size * block_size
    side = max(1, round(math.sqrt(elements)))
    other = max(1, round(elements / side))
    return side, other
