"""Stream/DMA pipeline scheduling for GPU kernel version 3 (paper Fig. 4b).

Version 3 overlaps three operation classes across double-buffered tiles:

(i)   download of the previously updated ``C`` rectangle,
(ii)  GEMM on the current rectangle,
(iii) upload of the next rectangles of the pivot column and ``C``.

Devices with two DMA engines (GeForce GTX680) run (i) and (iii)
concurrently; devices with one engine (Tesla C870) serialise them — the
paper notes operation (iii) then waits for (i), which is exactly what the
single shared "dma" resource produces here.

The scheduler is a deterministic list scheduler over explicit dependencies;
its output :class:`OverlapSchedule` carries the full
:class:`repro.util.timeline.Timeline`, so tests can assert the structural
properties (no double-booked engine, downloads after their compute, buffer
slots respected) rather than just a final number.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.util.timeline import Timeline
from repro.util.validation import check_nonnegative


@dataclass(frozen=True)
class TileWork:
    """Durations of one tile's three pipeline operations (seconds).

    ``upload`` includes the tile's pivot-piece share; it is > 0 even for
    resident tiles (their ``C`` rectangle stays on device but fresh pivot
    data still crosses PCIe each run).  ``download`` is 0 for resident
    tiles.
    """

    upload: float
    compute: float
    download: float

    def __post_init__(self) -> None:
        check_nonnegative("upload", self.upload)
        check_nonnegative("compute", self.compute)
        check_nonnegative("download", self.download)


@dataclass
class _Op:
    op_id: str
    resource: str
    duration: float
    deps: list[str]
    priority: int
    start: float = math.nan
    end: float = math.nan


@dataclass(frozen=True)
class OverlapSchedule:
    """The scheduled pipeline of one kernel run."""

    timeline: Timeline
    makespan: float
    serial_time: float

    @property
    def overlap_gain(self) -> float:
        """serial_time / makespan — 1.0 means no overlap was achieved."""
        if self.makespan == 0.0:
            return 1.0
        return self.serial_time / self.makespan


def schedule_overlap(
    tiles: list[TileWork],
    dma_engines: int,
    c_buffers: int = 2,
) -> OverlapSchedule:
    """Schedule one kernel run's tile pipeline and return its timing.

    ``c_buffers`` transferred tiles may be in flight at once (the paper's
    C0/C1 double buffer): the upload of transferred tile *j* must wait until
    the download of transferred tile *j - c_buffers* has freed its slot.
    """
    if dma_engines not in (1, 2):
        raise ValueError(f"dma_engines must be 1 or 2, got {dma_engines}")
    if c_buffers < 1:
        raise ValueError(f"c_buffers must be >= 1, got {c_buffers}")

    h2d = "h2d" if dma_engines == 2 else "dma"
    d2h = "d2h" if dma_engines == 2 else "dma"

    ops: dict[str, _Op] = {}
    transferred_order: list[int] = [
        i for i, t in enumerate(tiles) if t.download > 0.0
    ]
    slot_of = {tile_idx: j for j, tile_idx in enumerate(transferred_order)}

    for i, tile in enumerate(tiles):
        up_deps: list[str] = []
        if i in slot_of:
            j = slot_of[i]
            if j >= c_buffers:
                predecessor = transferred_order[j - c_buffers]
                up_deps.append(f"down{predecessor}")
        comp_deps = [f"up{i}"]
        if i > 0:
            comp_deps.append(f"comp{i - 1}")  # one GEMM at a time, in order
        ops[f"up{i}"] = _Op(f"up{i}", h2d, tile.upload, up_deps, priority=2 * i + 1)
        ops[f"comp{i}"] = _Op(f"comp{i}", "kernel", tile.compute, comp_deps, priority=i)
        ops[f"down{i}"] = _Op(
            f"down{i}", d2h, tile.download, [f"comp{i}"], priority=2 * i
        )

    _list_schedule(ops)

    timeline = Timeline()
    for op in ops.values():
        if op.duration > 0.0:
            timeline.add(op.resource, op.start, op.end, op.op_id)
    timeline.validate()
    makespan = max((op.end for op in ops.values()), default=0.0)
    serial = sum(t.upload + t.compute + t.download for t in tiles)
    return OverlapSchedule(timeline=timeline, makespan=makespan, serial_time=serial)


def _list_schedule(ops: dict[str, _Op]) -> None:
    """Greedy earliest-feasible-start list scheduling (deterministic).

    Among schedulable ops the one with the earliest feasible start runs
    first; ties break by priority (downloads get even priorities and beat
    the following uploads, matching the paper's ordering on 1-DMA devices).
    """
    resource_free: dict[str, float] = {}
    pending = set(ops)
    while pending:
        best: _Op | None = None
        best_start = math.inf
        for op_id in pending:
            op = ops[op_id]
            if any(dep in pending for dep in op.deps):
                continue
            deps_end = max((ops[d].end for d in op.deps), default=0.0)
            start = max(deps_end, resource_free.get(op.resource, 0.0))
            if start < best_start or (
                start == best_start and best is not None and op.priority < best.priority
            ):
                best = op
                best_start = start
        if best is None:  # pragma: no cover - dependency cycles are impossible here
            raise RuntimeError("scheduling deadlock: cyclic dependencies")
        best.start = best_start
        best.end = best_start + best.duration
        resource_free[best.resource] = best.end
        pending.remove(best.op_id)


@lru_cache(maxsize=1024)
def overlap_makespan(
    tiles: "tuple[TileWork, ...]", dma_engines: int, c_buffers: int = 2
) -> float:
    """Memoised makespan of :func:`schedule_overlap` (timeline discarded).

    :class:`TileWork` is frozen and hashable, so identical kernel
    invocations (same tiling, same contention state) reuse the scheduled
    makespan — the hot quantity in ``GpuGemmKernelV3.run_time``.  Callers
    that need the full timeline still call :func:`schedule_overlap`.
    """
    return schedule_overlap(list(tiles), dma_engines, c_buffers).makespan
