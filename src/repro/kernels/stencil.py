"""A second application kernel: the 5-point Jacobi stencil.

The paper's introduction motivates FPMs with data-parallel scientific
codes beyond linear algebra — digital signal processing, computational
fluid dynamics.  This module provides such a workload: one Jacobi sweep
over a strip of grid rows, the kernel of an iterative 2D heat/CFD solver.

Its performance profile is the *opposite* of GEMM, which is exactly why
the FPM approach (model each application empirically) matters:

* the CPU kernel is **memory-bandwidth bound** — a socket saturates its
  DDR bus with two or three active cores, so socket speed barely grows
  with the core count (contrast Fig. 2's compute-bound scaling);
* the GPU kernel is superb while the strip is device-resident (the GPU's
  memory bandwidth dwarfs the socket's) but *catastrophic* out-of-core —
  every sweep must stream the whole strip over PCIe, so past device
  memory the GPU is slower than one socket.

Problem-size unit: **grid rows** of a fixed-width (``width`` cells) strip,
single precision.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels.interface import KernelRange, as_area_array
from repro.platform.device import SimulatedGpu, SimulatedSocket
from repro.util.validation import check_nonnegative, check_positive_int

#: Flops per cell of one 5-point Jacobi update (4 adds + 1 multiply).
FLOPS_PER_CELL = 5.0
#: Effective DRAM traffic per cell (streamed read + write; vertical
#: neighbours hit in cache).
TRAFFIC_BYTES_PER_CELL = 8.0
#: Single-precision bytes per cell.
CELL_BYTES = 4.0
#: Fraction of a core's GEMM peak a scalar stencil loop sustains.
CPU_STENCIL_FLOP_FRACTION = 0.15
#: Per-kernel-launch / per-row loop overhead on the CPU (seconds).
CPU_SWEEP_OVERHEAD_S = 2.0e-5
#: GPU sweep launch overhead (seconds).
GPU_SWEEP_OVERHEAD_S = 1.0e-4


@dataclass(frozen=True)
class CpuStencilKernel:
    """One Jacobi sweep on ``active_cores`` cores of a socket.

    ``run_time(rows)`` is the time for the socket group to sweep ``rows``
    grid rows split evenly across its cores: the maximum of the cores'
    aggregate flop time and the socket's memory-bandwidth time — the
    roofline of a streaming kernel.
    """

    socket: SimulatedSocket
    active_cores: int
    width: int
    gpu_active: bool = False

    def __post_init__(self) -> None:
        check_positive_int("active_cores", self.active_cores)
        check_positive_int("width", self.width)
        if self.active_cores > self.socket.spec.cores:
            raise ValueError(
                f"active_cores={self.active_cores} exceeds the "
                f"{self.socket.spec.cores} cores of {self.socket.name}"
            )

    @property
    def name(self) -> str:
        suffix = "+gpu" if self.gpu_active else ""
        return f"cpu-stencil[{self.socket.name}:c{self.active_cores}{suffix}]"

    @property
    def block_size(self) -> int:
        # problem-size unit is one grid row; keep the Kernel protocol happy
        return 1

    @property
    def valid_range(self) -> KernelRange:
        return KernelRange()

    def run_time(self, rows: float, busy_cpu_cores: int = 0) -> float:
        """Seconds for one sweep of ``rows`` rows on the core group."""
        check_nonnegative("rows", rows)
        return float(self.run_time_batch((rows,), busy_cpu_cores)[0])

    def run_time_batch(self, rows, busy_cpu_cores: int = 0) -> np.ndarray:
        """Roofline sweep time at each row count, fully vectorised."""
        del busy_cpu_cores
        areas = as_area_array(rows)
        cells = areas * self.width
        flops = cells * FLOPS_PER_CELL
        core_rate = (
            self.socket.spec.cpu.peak_gflops
            * 1e9
            * CPU_STENCIL_FLOP_FRACTION
        )
        interference = 1.0
        if self.gpu_active:
            interference = 1.0 - 0.015
        flop_time = flops / (core_rate * self.active_cores * interference)
        bw = self.socket.spec.mem_bandwidth_gbs * 1e9 * interference
        bw_time = cells * TRAFFIC_BYTES_PER_CELL / bw
        sweep = np.maximum(flop_time, bw_time) + CPU_SWEEP_OVERHEAD_S
        return np.where(areas == 0.0, 0.0, sweep)


@dataclass(frozen=True)
class GpuStencilKernel:
    """One Jacobi sweep on a GPU strip (device-resident or streamed).

    While two copies of the strip (Jacobi ping-pong buffers) fit device
    memory, a sweep costs device-bandwidth time plus the per-iteration
    halo exchange over PCIe.  Beyond capacity the kernel keeps the
    resident part on the device and streams only the excess rows through
    spare buffers each sweep — the stencil analogue of the paper's
    out-of-core GEMM, extending the model past the memory limit with a
    steep (PCIe-bound) but finite slope instead of a wall.
    """

    gpu: SimulatedGpu
    width: int
    #: With ``streamed=False`` the kernel has no out-of-core path: its
    #: valid range ends at device capacity (the paper's plain-CUBLAS
    #: situation), and FPM partitioning caps the GPU's allocation there.
    streamed: bool = True

    def __post_init__(self) -> None:
        check_positive_int("width", self.width)

    @property
    def name(self) -> str:
        mode = "streamed" if self.streamed else "resident"
        return f"gpu-stencil[{self.gpu.name}:{mode}]"

    @property
    def block_size(self) -> int:
        return 1

    @property
    def valid_range(self) -> KernelRange:
        if self.streamed:
            return KernelRange()
        return KernelRange(max_blocks=self.resident_capacity_rows)

    @property
    def resident_capacity_rows(self) -> float:
        """Rows whose ping-pong buffers fit usable device memory."""
        usable = self.gpu.spec.usable_memory_mb * 1024 * 1024
        return usable / (2.0 * self.width * CELL_BYTES)

    def fits_resident(self, rows: float) -> bool:
        return rows <= self.resident_capacity_rows

    def run_time(self, rows: float, busy_cpu_cores: int = 0) -> float:
        """Seconds for one sweep of ``rows`` rows."""
        check_nonnegative("rows", rows)
        self.valid_range.require(rows, self.name)
        return float(self.run_time_batch((rows,), busy_cpu_cores)[0])

    def run_time_batch(self, rows, busy_cpu_cores: int = 0) -> np.ndarray:
        """Sweep time at each row count: device-bandwidth term plus halo,
        with the streamed-excess PCIe term past residency, vectorised."""
        areas = as_area_array(rows)
        valid = self.valid_range
        for area in areas.tolist():
            valid.require(area, self.name)
        cells = areas * self.width
        slow = self.gpu.interference.gpu_speed_factor(
            busy_cpu_cores, self.gpu.socket_cores
        )
        sweep = (
            cells
            * TRAFFIC_BYTES_PER_CELL
            / (self.gpu.spec.mem_bandwidth_gbs * 1e9)
        )
        halo = self.gpu.pcie.contiguous_time(2 * self.width * CELL_BYTES) * 2
        total = sweep + halo + GPU_SWEEP_OVERHEAD_S
        excess_rows = areas - self.resident_capacity_rows
        streamed = excess_rows > 0
        if streamed.any():
            # stream only the non-resident rows: up and down each sweep,
            # pitched pageable transfers (footprint scaled to the device's
            # staging capacity as for the GEMM kernels)
            excess_bytes = excess_rows[streamed] * self.width * CELL_BYTES
            bw = self.gpu.pcie.pitched_bandwidth_gbs_batch(
                areas[streamed]
                / self.resident_capacity_rows
                * self.gpu.pcie.staging_blocks
            )
            total[streamed] = total[streamed] + 2.0 * excess_bytes / (bw * 1e9)
        return np.where(areas == 0.0, 0.0, total / slow)


def numpy_jacobi_sweep(grid: np.ndarray, out: np.ndarray) -> None:
    """One real 5-point Jacobi sweep (interior only, in ``out``).

    Boundary rows/columns are copied unchanged — the usual fixed
    (Dirichlet) boundary condition.
    """
    if grid.shape != out.shape or grid.ndim != 2:
        raise ValueError(
            f"grid and out must be equal 2-D arrays, got {grid.shape} "
            f"and {out.shape}"
        )
    out[:] = grid
    out[1:-1, 1:-1] = 0.25 * (
        grid[:-2, 1:-1] + grid[2:, 1:-1] + grid[1:-1, :-2] + grid[1:-1, 2:]
    )
