"""Computational kernels of the matrix-multiplication application.

The application's kernel is one rank-``b`` update ``C_i += A_(b) x B_(b)``
(paper Fig. 1b).  This package provides:

* :mod:`repro.kernels.gemm_cpu` — the ACML-stand-in kernel running on a
  group of socket cores;
* :mod:`repro.kernels.gemm_gpu` — the CUBLAS-stand-in kernel in the paper's
  three versions (host-resident C; device-resident C with out-of-core
  tiling; out-of-core with communication/computation overlap);
* :mod:`repro.kernels.outofcore` — the rectangle tiling planner (Fig. 4a);
* :mod:`repro.kernels.overlap` — the stream/DMA pipeline scheduler
  (Fig. 4b), honouring single- vs dual-DMA-engine devices.

All kernels implement the :class:`repro.kernels.interface.Kernel` protocol:
a deterministic mapping from problem area (in b x b blocks) to the execution
time of one kernel run, given the contention state.
"""

from repro.kernels.gemm_cpu import CpuCoreGemmKernel, CpuGemmKernel
from repro.kernels.gemm_gpu import (
    GpuGemmKernelV1,
    GpuGemmKernelV2,
    GpuGemmKernelV3,
    InCoreGpuGemmKernel,
    gpu_kernel,
)
from repro.kernels.interface import Kernel, KernelRange, kernel_speed_gflops
from repro.kernels.outofcore import (
    Tile,
    TilingPlan,
    plan_tiling,
    simulate_consecutive_runs,
)
from repro.kernels.overlap import OverlapSchedule, TileWork, schedule_overlap
from repro.kernels.stencil import CpuStencilKernel, GpuStencilKernel

__all__ = [
    "CpuCoreGemmKernel",
    "CpuGemmKernel",
    "GpuGemmKernelV1",
    "GpuGemmKernelV2",
    "GpuGemmKernelV3",
    "InCoreGpuGemmKernel",
    "gpu_kernel",
    "Kernel",
    "KernelRange",
    "kernel_speed_gflops",
    "Tile",
    "TilingPlan",
    "plan_tiling",
    "simulate_consecutive_runs",
    "OverlapSchedule",
    "TileWork",
    "schedule_overlap",
    "CpuStencilKernel",
    "GpuStencilKernel",
]
