"""The GPU GEMM kernel in the paper's three versions (Section V, Fig. 3/4).

All versions model the *combined* performance of the GPU and its dedicated
host core, including host <-> device transfers — the quantity the paper's
GPU speed functions ``g(x)`` capture.

* **Version 1** — the pivot pieces and the ``C_i`` rectangle live in host
  memory; every kernel run uploads them, computes, and downloads ``C_i``.
  For areas beyond device capacity it processes ``C_i`` tile-by-tile (no
  residency, no savings) — a natural extension so the speed function stays
  defined across the whole studied range, as plotted in Fig. 3.
* **Version 2** — ``C_i`` accumulates on the device while it fits; beyond
  capacity it updates out-of-core rectangles serially, keeping the last two
  resident and reversing the order every other run (saves two transfers in
  each direction per run).
* **Version 3** — version 2 plus overlap of communication and computation
  via double buffers (A0/A1, B0, C0/C1) and the device's DMA engines.

:class:`InCoreGpuGemmKernel` is the plain CUBLAS behaviour: valid only while
the data fits device memory (the paper's note that without out-of-core
extensions the FPM "can be defined only for the range of problem sizes that
fit the local memory of GPU").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels.interface import KernelRange, as_area_array
from repro.kernels.outofcore import TilingPlan, near_square_shape, plan_tiling
from repro.kernels.overlap import TileWork, overlap_makespan, schedule_overlap
from repro.platform.device import SimulatedGpu
from repro.util.validation import check_nonnegative


@dataclass(frozen=True)
class _GpuGemmKernelBase:
    """Shared machinery of the GPU kernel versions."""

    gpu: SimulatedGpu

    @property
    def block_size(self) -> int:
        return self.gpu.block_size

    @property
    def valid_range(self) -> KernelRange:
        return KernelRange()

    @property
    def memory_limit_blocks(self) -> float:
        """The in-core capacity — Fig. 3's vertical "memory limit" line."""
        return self.gpu.memory.resident_capacity_blocks()

    def _check_area(self, area_blocks: float) -> None:
        check_nonnegative("area_blocks", area_blocks)
        self.valid_range.require(area_blocks, self.name)  # type: ignore[attr-defined]

    def _tiling(self, area_blocks: float, buffered: int, keep_resident: int) -> TilingPlan:
        rows, cols = near_square_shape(area_blocks, self.block_size)
        capacity = self.gpu.memory.out_of_core_tile_blocks(buffered)
        return plan_tiling(
            rows,
            cols,
            tile_capacity_blocks=capacity,
            block_size=self.block_size,
            alignment=self.gpu.spec.alignment_unit,
            keep_resident=keep_resident,
        )

    def _resident_time_batch(
        self, areas: np.ndarray, busy_cpu_cores: int
    ) -> np.ndarray:
        """Device-resident run time per area: pivot upload + one aligned compute."""
        return self.gpu.upload_pivots_time_batch(
            areas, busy_cpu_cores
        ) + self.gpu.compute_time_batch(areas, True, busy_cpu_cores)

    def _serial_tiled_time(
        self, plan: TilingPlan, area_blocks: float, busy_cpu_cores: int
    ) -> float:
        """Synchronous per-run time: transfers and computes back to back."""
        total = self.gpu.upload_pivots_time(area_blocks, busy_cpu_cores)
        for tile in plan.tiles:
            tile_area = tile.area_blocks(self.block_size)
            if tile.upload_needed:
                total += self.gpu.transfer_c_time(
                    tile_area, area_blocks, busy_cpu_cores, kernel_active=False
                )
            total += self.gpu.compute_time(tile_area, tile.aligned, busy_cpu_cores)
            if tile.download_needed:
                total += self.gpu.transfer_c_time(
                    tile_area, area_blocks, busy_cpu_cores, kernel_active=False
                )
        return total


@dataclass(frozen=True)
class GpuGemmKernelV1(_GpuGemmKernelBase):
    """Version 1: C accumulates in host memory; full transfers every run."""

    @property
    def name(self) -> str:
        return f"gpu-gemm-v1[{self.gpu.name}]"

    def run_time(self, area_blocks: float, busy_cpu_cores: int = 0) -> float:
        self._check_area(area_blocks)
        return float(self.run_time_batch((area_blocks,), busy_cpu_cores)[0])

    def run_time_batch(self, area_blocks, busy_cpu_cores: int = 0) -> np.ndarray:
        """Ideal seconds at each area; tiled sizes are planned one by one."""
        areas = as_area_array(area_blocks)
        out = np.zeros(areas.size)
        for i, area in enumerate(areas.tolist()):
            if area == 0.0:
                continue
            plan = self._tiling(area, buffered=1, keep_resident=0)
            out[i] = self._serial_tiled_time(plan, area, busy_cpu_cores)
        return out


@dataclass(frozen=True)
class GpuGemmKernelV2(_GpuGemmKernelBase):
    """Version 2: device-resident C, serial out-of-core tiling beyond capacity."""

    @property
    def name(self) -> str:
        return f"gpu-gemm-v2[{self.gpu.name}]"

    def run_time(self, area_blocks: float, busy_cpu_cores: int = 0) -> float:
        self._check_area(area_blocks)
        return float(self.run_time_batch((area_blocks,), busy_cpu_cores)[0])

    def run_time_batch(self, area_blocks, busy_cpu_cores: int = 0) -> np.ndarray:
        """Ideal seconds at each area: vectorised while device-resident,
        serial out-of-core tiling beyond capacity."""
        areas = as_area_array(area_blocks)
        out = np.zeros(areas.size)
        resident = areas <= self.gpu.memory.resident_capacity_blocks()
        if resident.any():
            out[resident] = self._resident_time_batch(areas[resident], busy_cpu_cores)
        for i in np.flatnonzero(~resident).tolist():
            area = float(areas[i])
            plan = self._tiling(area, buffered=2, keep_resident=2)
            out[i] = self._serial_tiled_time(plan, area, busy_cpu_cores)
        return out


@dataclass(frozen=True)
class GpuGemmKernelV3(_GpuGemmKernelBase):
    """Version 3: out-of-core with communication/computation overlap."""

    @property
    def name(self) -> str:
        return f"gpu-gemm-v3[{self.gpu.name}]"

    def run_time(self, area_blocks: float, busy_cpu_cores: int = 0) -> float:
        self._check_area(area_blocks)
        return float(self.run_time_batch((area_blocks,), busy_cpu_cores)[0])

    def run_time_batch(self, area_blocks, busy_cpu_cores: int = 0) -> np.ndarray:
        """Ideal seconds at each area: vectorised while device-resident,
        overlap-scheduled (with the serial fallback) beyond capacity."""
        areas = as_area_array(area_blocks)
        out = np.zeros(areas.size)
        resident = areas <= self.gpu.memory.resident_capacity_blocks()
        if resident.any():
            # In the resident range the only transfers are the tiny pivot
            # pieces; overlap cannot help, so v3 == v2 there (Fig. 3).
            out[resident] = self._resident_time_batch(areas[resident], busy_cpu_cores)
        for i in np.flatnonzero(~resident).tolist():
            area = float(areas[i])
            overlapped = overlap_makespan(
                self._works(area, busy_cpu_cores),
                self.gpu.spec.dma_engines,
                c_buffers=2,
            )
            # On devices where the concurrent-copy penalty outweighs the
            # overlap (tiny memory, single engine, slow link), a sane runtime
            # falls back to the synchronous path — version 3 degenerates to
            # version 2 rather than losing to it.
            plan = self._tiling(area, buffered=2, keep_resident=2)
            serial = self._serial_tiled_time(plan, area, busy_cpu_cores)
            out[i] = min(overlapped, serial)
        return out

    def _works(
        self, area_blocks: float, busy_cpu_cores: int
    ) -> tuple[TileWork, ...]:
        """Per-tile (upload, compute, download) durations of one run."""
        plan = self._tiling(area_blocks, buffered=2, keep_resident=2)
        pivot_total = self.gpu.upload_pivots_time(area_blocks, busy_cpu_cores)
        pivot_share = pivot_total / plan.num_tiles
        works: list[TileWork] = []
        for tile in plan.tiles:
            tile_area = tile.area_blocks(self.block_size)
            upload = pivot_share
            download = 0.0
            if tile.upload_needed:
                upload += self.gpu.transfer_c_time(
                    tile_area, area_blocks, busy_cpu_cores, kernel_active=True
                )
            if tile.download_needed:
                download = self.gpu.transfer_c_time(
                    tile_area, area_blocks, busy_cpu_cores, kernel_active=True
                )
            compute = self.gpu.compute_time(tile_area, tile.aligned, busy_cpu_cores)
            works.append(TileWork(upload=upload, compute=compute, download=download))
        return tuple(works)

    def schedule(self, area_blocks: float, busy_cpu_cores: int = 0):
        """The full overlap schedule for one run (for inspection and tests)."""
        works = self._works(area_blocks, busy_cpu_cores)
        return schedule_overlap(list(works), self.gpu.spec.dma_engines, c_buffers=2)


@dataclass(frozen=True)
class InCoreGpuGemmKernel(_GpuGemmKernelBase):
    """Plain CUBLAS behaviour: undefined beyond device capacity."""

    @property
    def name(self) -> str:
        return f"gpu-gemm-incore[{self.gpu.name}]"

    @property
    def valid_range(self) -> KernelRange:
        return KernelRange(max_blocks=self.memory_limit_blocks)

    def run_time(self, area_blocks: float, busy_cpu_cores: int = 0) -> float:
        check_nonnegative("area_blocks", area_blocks)
        self.valid_range.require(area_blocks, self.name)
        return float(self.run_time_batch((area_blocks,), busy_cpu_cores)[0])

    def run_time_batch(self, area_blocks, busy_cpu_cores: int = 0) -> np.ndarray:
        """Ideal seconds at each (in-core) area, fully vectorised."""
        areas = as_area_array(area_blocks)
        valid = self.valid_range
        for area in areas.tolist():
            valid.require(area, self.name)
        return self._resident_time_batch(areas, busy_cpu_cores)


_VERSIONS = {
    1: GpuGemmKernelV1,
    2: GpuGemmKernelV2,
    3: GpuGemmKernelV3,
}


def gpu_kernel(gpu: SimulatedGpu, version: int = 3):
    """Factory: the GPU kernel of the requested paper version (1, 2 or 3)."""
    try:
        cls = _VERSIONS[version]
    except KeyError:
        raise ValueError(
            f"unknown GPU kernel version {version}; paper defines 1, 2, 3"
        ) from None
    return cls(gpu=gpu)
