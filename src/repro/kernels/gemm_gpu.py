"""The GPU GEMM kernel in the paper's three versions (Section V, Fig. 3/4).

All versions model the *combined* performance of the GPU and its dedicated
host core, including host <-> device transfers — the quantity the paper's
GPU speed functions ``g(x)`` capture.

* **Version 1** — the pivot pieces and the ``C_i`` rectangle live in host
  memory; every kernel run uploads them, computes, and downloads ``C_i``.
  For areas beyond device capacity it processes ``C_i`` tile-by-tile (no
  residency, no savings) — a natural extension so the speed function stays
  defined across the whole studied range, as plotted in Fig. 3.
* **Version 2** — ``C_i`` accumulates on the device while it fits; beyond
  capacity it updates out-of-core rectangles serially, keeping the last two
  resident and reversing the order every other run (saves two transfers in
  each direction per run).
* **Version 3** — version 2 plus overlap of communication and computation
  via double buffers (A0/A1, B0, C0/C1) and the device's DMA engines.

:class:`InCoreGpuGemmKernel` is the plain CUBLAS behaviour: valid only while
the data fits device memory (the paper's note that without out-of-core
extensions the FPM "can be defined only for the range of problem sizes that
fit the local memory of GPU").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernels.interface import KernelRange
from repro.kernels.outofcore import TilingPlan, near_square_shape, plan_tiling
from repro.kernels.overlap import TileWork, schedule_overlap
from repro.platform.device import SimulatedGpu
from repro.util.validation import check_nonnegative


@dataclass(frozen=True)
class _GpuGemmKernelBase:
    """Shared machinery of the GPU kernel versions."""

    gpu: SimulatedGpu

    @property
    def block_size(self) -> int:
        return self.gpu.block_size

    @property
    def valid_range(self) -> KernelRange:
        return KernelRange()

    @property
    def memory_limit_blocks(self) -> float:
        """The in-core capacity — Fig. 3's vertical "memory limit" line."""
        return self.gpu.memory.resident_capacity_blocks()

    def _check_area(self, area_blocks: float) -> None:
        check_nonnegative("area_blocks", area_blocks)
        self.valid_range.require(area_blocks, self.name)  # type: ignore[attr-defined]

    def _tiling(self, area_blocks: float, buffered: int, keep_resident: int) -> TilingPlan:
        rows, cols = near_square_shape(area_blocks, self.block_size)
        capacity = self.gpu.memory.out_of_core_tile_blocks(buffered)
        return plan_tiling(
            rows,
            cols,
            tile_capacity_blocks=capacity,
            block_size=self.block_size,
            alignment=self.gpu.spec.alignment_unit,
            keep_resident=keep_resident,
        )

    def _serial_tiled_time(
        self, plan: TilingPlan, area_blocks: float, busy_cpu_cores: int
    ) -> float:
        """Synchronous per-run time: transfers and computes back to back."""
        total = self.gpu.upload_pivots_time(area_blocks, busy_cpu_cores)
        for tile in plan.tiles:
            tile_area = tile.area_blocks(self.block_size)
            if tile.upload_needed:
                total += self.gpu.transfer_c_time(
                    tile_area, area_blocks, busy_cpu_cores, kernel_active=False
                )
            total += self.gpu.compute_time(tile_area, tile.aligned, busy_cpu_cores)
            if tile.download_needed:
                total += self.gpu.transfer_c_time(
                    tile_area, area_blocks, busy_cpu_cores, kernel_active=False
                )
        return total


@dataclass(frozen=True)
class GpuGemmKernelV1(_GpuGemmKernelBase):
    """Version 1: C accumulates in host memory; full transfers every run."""

    @property
    def name(self) -> str:
        return f"gpu-gemm-v1[{self.gpu.name}]"

    def run_time(self, area_blocks: float, busy_cpu_cores: int = 0) -> float:
        self._check_area(area_blocks)
        if area_blocks == 0:
            return 0.0
        plan = self._tiling(area_blocks, buffered=1, keep_resident=0)
        return self._serial_tiled_time(plan, area_blocks, busy_cpu_cores)


@dataclass(frozen=True)
class GpuGemmKernelV2(_GpuGemmKernelBase):
    """Version 2: device-resident C, serial out-of-core tiling beyond capacity."""

    @property
    def name(self) -> str:
        return f"gpu-gemm-v2[{self.gpu.name}]"

    def run_time(self, area_blocks: float, busy_cpu_cores: int = 0) -> float:
        self._check_area(area_blocks)
        if area_blocks == 0:
            return 0.0
        if self.gpu.memory.fits_resident(area_blocks):
            return self.gpu.upload_pivots_time(
                area_blocks, busy_cpu_cores
            ) + self.gpu.compute_time(area_blocks, True, busy_cpu_cores)
        plan = self._tiling(area_blocks, buffered=2, keep_resident=2)
        return self._serial_tiled_time(plan, area_blocks, busy_cpu_cores)


@dataclass(frozen=True)
class GpuGemmKernelV3(_GpuGemmKernelBase):
    """Version 3: out-of-core with communication/computation overlap."""

    @property
    def name(self) -> str:
        return f"gpu-gemm-v3[{self.gpu.name}]"

    def run_time(self, area_blocks: float, busy_cpu_cores: int = 0) -> float:
        self._check_area(area_blocks)
        if area_blocks == 0:
            return 0.0
        if self.gpu.memory.fits_resident(area_blocks):
            # In the resident range the only transfers are the tiny pivot
            # pieces; overlap cannot help, so v3 == v2 there (Fig. 3).
            return self.gpu.upload_pivots_time(
                area_blocks, busy_cpu_cores
            ) + self.gpu.compute_time(area_blocks, True, busy_cpu_cores)
        overlapped = self.schedule(area_blocks, busy_cpu_cores).makespan
        # On devices where the concurrent-copy penalty outweighs the
        # overlap (tiny memory, single engine, slow link), a sane runtime
        # falls back to the synchronous path — version 3 degenerates to
        # version 2 rather than losing to it.
        plan = self._tiling(area_blocks, buffered=2, keep_resident=2)
        serial = self._serial_tiled_time(plan, area_blocks, busy_cpu_cores)
        return min(overlapped, serial)

    def schedule(self, area_blocks: float, busy_cpu_cores: int = 0):
        """The full overlap schedule for one run (for inspection and tests)."""
        plan = self._tiling(area_blocks, buffered=2, keep_resident=2)
        pivot_total = self.gpu.upload_pivots_time(area_blocks, busy_cpu_cores)
        pivot_share = pivot_total / plan.num_tiles
        works: list[TileWork] = []
        for tile in plan.tiles:
            tile_area = tile.area_blocks(self.block_size)
            upload = pivot_share
            download = 0.0
            if tile.upload_needed:
                upload += self.gpu.transfer_c_time(
                    tile_area, area_blocks, busy_cpu_cores, kernel_active=True
                )
            if tile.download_needed:
                download = self.gpu.transfer_c_time(
                    tile_area, area_blocks, busy_cpu_cores, kernel_active=True
                )
            compute = self.gpu.compute_time(tile_area, tile.aligned, busy_cpu_cores)
            works.append(TileWork(upload=upload, compute=compute, download=download))
        return schedule_overlap(works, self.gpu.spec.dma_engines, c_buffers=2)


@dataclass(frozen=True)
class InCoreGpuGemmKernel(_GpuGemmKernelBase):
    """Plain CUBLAS behaviour: undefined beyond device capacity."""

    @property
    def name(self) -> str:
        return f"gpu-gemm-incore[{self.gpu.name}]"

    @property
    def valid_range(self) -> KernelRange:
        return KernelRange(max_blocks=self.memory_limit_blocks)

    def run_time(self, area_blocks: float, busy_cpu_cores: int = 0) -> float:
        check_nonnegative("area_blocks", area_blocks)
        self.valid_range.require(area_blocks, self.name)
        if area_blocks == 0:
            return 0.0
        return self.gpu.upload_pivots_time(
            area_blocks, busy_cpu_cores
        ) + self.gpu.compute_time(area_blocks, True, busy_cpu_cores)


_VERSIONS = {
    1: GpuGemmKernelV1,
    2: GpuGemmKernelV2,
    3: GpuGemmKernelV3,
}


def gpu_kernel(gpu: SimulatedGpu, version: int = 3):
    """Factory: the GPU kernel of the requested paper version (1, 2 or 3)."""
    try:
        cls = _VERSIONS[version]
    except KeyError:
        raise ValueError(
            f"unknown GPU kernel version {version}; paper defines 1, 2, 3"
        ) from None
    return cls(gpu=gpu)
