"""Command line for the static analyser.

Invoked as ``repro lint <paths>`` (via :mod:`repro.cli`), as the
``repro-lint`` console script, or directly as
``python -m repro.analysis <paths>``.

Exit status: 0 when no violations beyond the baseline (and no parse
errors), 1 when new violations exist, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.context import find_project_root
from repro.analysis.engine import lint_paths
from repro.analysis.registry import all_rules, get_rule
from repro.analysis.reporters import render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST-based static analysis enforcing the reproduction's "
            "determinism, unit-safety and simulation-runtime invariants."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format",
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help=(
            "baseline file of accepted violations "
            f"(default: <project root>/{DEFAULT_BASELINE_NAME} when present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every violation",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current violations: rewrite the baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.title}")
            print(f"        {rule.rationale}")
        return 0

    try:
        rules = (
            None
            if not args.rules
            else [get_rule(rule_id.strip()) for rule_id in args.rules.split(",")]
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(
            "error: no such file or directory: " + ", ".join(missing),
            file=sys.stderr,
        )
        return 2

    result = lint_paths(args.paths, rules=rules)
    root = find_project_root(Path(args.paths[0]))
    baseline_path = (
        Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE_NAME
    )

    if args.write_baseline:
        Baseline.from_diagnostics(result.diagnostics).save(baseline_path)
        print(
            f"baseline written to {baseline_path} "
            f"({len(result.diagnostics)} accepted violation(s))"
        )
        return 0

    if args.no_baseline:
        new = result.diagnostics
        report_new = None
    else:
        baseline = Baseline.load(baseline_path)
        new, _fixed = baseline.filter_new(result.diagnostics)
        report_new = new if len(baseline) else None

    if args.format == "json":
        print(render_json(result, new=report_new))
    else:
        print(render_text(result, new=report_new))
    return 1 if (new or result.parse_errors) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
