"""Command line for the static analyser.

Invoked as ``repro lint <paths>`` (via :mod:`repro.cli`), as the
``repro-lint`` console script, or directly as
``python -m repro.analysis <paths>``.

``--flow`` adds the interprocedural tier (REP101+: call-graph, taint,
executor-safety, unit-flow rules); ``--changed-only`` narrows reporting
to files git considers modified (full tree outside a repo); flow-tier
summaries are cached content-addressed under ``.repro-lint-cache``
unless ``--no-cache``.

Exit status: 0 when no violations beyond the baseline (and no parse
errors), 1 when new violations exist, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.context import find_project_root
from repro.analysis.engine import lint_paths
from repro.analysis.registry import all_rules, get_rule
from repro.analysis.reporters import render_json, render_sarif, render_text

#: Default on-disk location of the flow-summary cache, under the root.
DEFAULT_CACHE_DIR = ".repro-lint-cache"


def changed_files(root: Path) -> list[Path] | None:
    """Files git reports as touched (staged, unstaged or untracked).

    Returns ``None`` when ``root`` is not inside a git work tree (or git
    is unavailable), so the caller can fall back to the full tree.
    Renames report the *new* path — the old one no longer exists.
    """
    try:
        proc = subprocess.run(
            ["git", "-C", str(root), "status", "--porcelain"],
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    out: list[Path] = []
    for line in proc.stdout.splitlines():
        if len(line) < 4:
            continue
        entry = line[3:]
        if " -> " in entry:  # rename: "old -> new"
            entry = entry.split(" -> ", 1)[1]
        entry = entry.strip().strip('"')
        if entry.endswith(".py"):
            out.append(Path(root) / entry)
    return out


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST-based static analysis enforcing the reproduction's "
            "determinism, unit-safety and simulation-runtime invariants."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format",
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help="also run the interprocedural (call-graph) tier, REP101+",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help=(
            "report only on files git considers modified; falls back to "
            "the full tree outside a git repository"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help=(
            "flow-summary cache directory "
            f"(default: <project root>/{DEFAULT_CACHE_DIR})"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the flow-summary cache",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help=(
            "baseline file of accepted violations "
            f"(default: <project root>/{DEFAULT_BASELINE_NAME} when present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every violation",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current violations: rewrite the baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.title}")
            print(f"        {rule.rationale}")
        return 0

    try:
        rules = (
            None
            if not args.rules
            else [get_rule(rule_id.strip()) for rule_id in args.rules.split(",")]
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(
            "error: no such file or directory: " + ", ".join(missing),
            file=sys.stderr,
        )
        return 2

    root = find_project_root(Path(args.paths[0]))

    only = None
    if args.changed_only:
        only = changed_files(root)
        if only is None:
            print(
                "warning: --changed-only outside a git repository; "
                "linting the full tree",
                file=sys.stderr,
            )

    cache = None
    flow_active = args.flow or any(
        hasattr(rule, "check_flow") for rule in (rules or ())
    )
    if flow_active and not args.no_cache:
        from repro.store import ResultStore

        cache_dir = (
            Path(args.cache_dir) if args.cache_dir else root / DEFAULT_CACHE_DIR
        )
        cache = ResultStore(cache_dir)

    result = lint_paths(
        args.paths, rules=rules, root=root, flow=args.flow, only=only, cache=cache
    )
    baseline_path = (
        Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE_NAME
    )

    if args.write_baseline:
        Baseline.from_diagnostics(result.diagnostics).save(baseline_path)
        print(
            f"baseline written to {baseline_path} "
            f"({len(result.diagnostics)} accepted violation(s))"
        )
        return 0

    if args.no_baseline:
        new = result.diagnostics
        report_new = None
    else:
        baseline = Baseline.load(baseline_path)
        new, _fixed = baseline.filter_new(result.diagnostics)
        report_new = new if len(baseline) else None

    if args.format == "json":
        print(render_json(result, new=report_new))
    elif args.format == "sarif":
        print(render_sarif(result, new=report_new))
    else:
        print(render_text(result, new=report_new))
    return 1 if (new or result.parse_errors) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
