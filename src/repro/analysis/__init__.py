"""AST-based static analysis enforcing the reproduction's invariants.

The paper's conclusions rest on *statistically reliable, repeatable*
measurements (Section III).  In this reproduction that reliability is an
architectural property — all randomness flows through
:mod:`repro.util.rng`, all time through the simulated clock of
:mod:`repro.runtime.event_sim`, and all speed/size quantities through
:mod:`repro.util.units` — and this package is the tool that *enforces* it.

It is a small, pluggable lint framework:

* :mod:`repro.analysis.diagnostics` — the :class:`Diagnostic` record and
  stable keys for baseline matching;
* :mod:`repro.analysis.context` — per-file parse context with
  ``# repro: noqa`` suppression handling, and the cross-file
  :class:`ProjectContext`;
* :mod:`repro.analysis.registry` — the :class:`Rule` base class and the
  rule registry;
* :mod:`repro.analysis.engine` — file discovery and the lint pipeline;
* :mod:`repro.analysis.baseline` — the committed-baseline workflow
  (fail only on *new* violations);
* :mod:`repro.analysis.reporters` — text and JSON output;
* :mod:`repro.analysis.rules` — the domain rules REP001..REP005.

Run it as ``repro lint <paths>`` or ``python -m repro.analysis <paths>``.
"""

from repro.analysis.baseline import Baseline
from repro.analysis.context import FileContext, ProjectContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import LintResult, lint_paths
from repro.analysis.registry import Rule, all_rules, get_rule, register_rule
from repro.analysis.reporters import render_json, render_text

__all__ = [
    "Baseline",
    "FileContext",
    "ProjectContext",
    "Diagnostic",
    "LintResult",
    "lint_paths",
    "Rule",
    "all_rules",
    "get_rule",
    "register_rule",
    "render_json",
    "render_text",
]
