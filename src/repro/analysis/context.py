"""Parse contexts handed to lint rules.

:class:`FileContext` wraps one parsed source file: its AST, its dotted
module name, and the ``# repro: noqa`` suppressions found on its lines.
:class:`ProjectContext` provides the cross-file services some rules need
(resolving a dotted module to a sibling source file, reading
``docs/api.md``, collecting the paper constants of
``experiments/paper_data.py``) with caching, so a whole-tree lint parses
each file once.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic

#: Inline suppression: ``# repro: noqa`` (all rules) or
#: ``# repro: noqa REP001,REP003`` (listed rules only).
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\s+(?P<rules>[A-Z0-9,\s]+))?")


def parse_noqa(source: str) -> dict[int, set[str] | None]:
    """Map 1-based line numbers to suppressed rule ids (``None`` = all)."""
    suppressions: dict[int, set[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if not match:
            continue
        spec = match.group("rules")
        if spec is None:
            suppressions[lineno] = None
        else:
            rules = {r.strip() for r in spec.replace(",", " ").split()}
            suppressions[lineno] = {r for r in rules if r}
    return suppressions


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path``, anchored at the last ``repro`` dir.

    ``src/repro/runtime/mpi_sim.py`` -> ``repro.runtime.mpi_sim``; fixture
    trees that mimic the layout (``fixtures/repro/runtime/bad.py``) resolve
    the same way, which lets the domain rules fire on test fixtures.
    Files outside any ``repro`` directory use their bare stem.
    """
    parts = list(path.parts)
    parts[-1] = path.stem
    if parts[-1] == "__init__":
        parts.pop()
    if "repro" in parts[:-1] or (parts and parts[-1] == "repro"):
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        return ".".join(parts[anchor:])
    return parts[-1] if parts else path.stem


def find_project_root(start: Path) -> Path:
    """Nearest ancestor containing ``pyproject.toml`` (fallback: cwd)."""
    probe = start if start.is_dir() else start.parent
    for candidate in (probe, *probe.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return Path.cwd()


class ProjectContext:
    """Cross-file knowledge shared by every :class:`FileContext` of a run."""

    def __init__(self, root: Path, src_root: Path | None = None):
        self.root = Path(root).resolve()
        #: Where the *real* ``repro`` package lives.  Fixture trees that
        #: mimic the layout (``tests/analysis/fixtures/repro/...``) resolve
        #: modules against their own directory but are never part of the
        #: source tree, so root-anchored checks (docs/api.md coverage) can
        #: tell the two apart explicitly instead of guessing from paths.
        self.src_root = (
            Path(src_root) if src_root is not None else self.root / "src"
        ).resolve()
        self._ast_cache: dict[Path, ast.Module | None] = {}
        self._api_doc: str | None = None
        self._api_doc_loaded = False
        self._paper_constants: dict[tuple, frozenset[float]] = {}

    def in_source_tree(self, path: Path) -> bool:
        """Whether ``path`` lives under the project's real source root."""
        try:
            Path(path).resolve().relative_to(self.src_root)
        except ValueError:
            return False
        return True

    # -- parsing -----------------------------------------------------------
    def parse(self, path: Path) -> ast.Module | None:
        """Parse ``path`` (cached); ``None`` when unreadable/unparsable."""
        path = path.resolve()
        if path not in self._ast_cache:
            try:
                source = path.read_text(encoding="utf-8")
                self._ast_cache[path] = ast.parse(source, filename=str(path))
            except (OSError, SyntaxError, ValueError):
                self._ast_cache[path] = None
        return self._ast_cache[path]

    def resolve_module(self, module: str, near: Path) -> Path | None:
        """Locate the source file of a dotted ``repro.*`` module.

        Resolution is purely lexical — relative to the package tree that
        contains ``near`` — so fixture packages resolve against their own
        tree, never against the installed :mod:`repro`.
        """
        parts = module.split(".")
        if "repro" not in parts:
            return None
        near = near.resolve()
        base_dir = near if near.is_dir() else near.parent
        # climb to the directory that *contains* the tree's "repro" package
        for ancestor in (base_dir, *base_dir.parents):
            if ancestor.name == "repro":
                base_dir = ancestor.parent
                break
        else:
            return None
        tail = parts[parts.index("repro"):]
        as_module = base_dir.joinpath(*tail).with_suffix(".py")
        if as_module.is_file():
            return as_module
        as_package = base_dir.joinpath(*tail, "__init__.py")
        if as_package.is_file():
            return as_package
        return None

    # -- documentation -----------------------------------------------------
    @property
    def api_doc(self) -> str | None:
        """Contents of ``docs/api.md`` at the project root, if present."""
        if not self._api_doc_loaded:
            self._api_doc_loaded = True
            candidate = self.root / "docs" / "api.md"
            try:
                self._api_doc = candidate.read_text(encoding="utf-8")
            except OSError:
                self._api_doc = None
        return self._api_doc

    # -- paper constants ---------------------------------------------------
    def paper_constants(self, near: Path) -> frozenset[float]:
        """Distinctive numeric constants owned by named reference modules.

        Collects module-level *scalar* assignments (``NAME = <number>``) of
        ``repro/experiments/paper_data.py`` and ``repro/util/units.py``,
        then keeps only the distinctive ones — floats with a fractional
        part, or magnitudes >= 90 — so loop bounds, sizes and tolerances
        never trigger REP005.  Values nested in the transcription tables
        (tuples/dicts) are deliberately excluded: small integers like
        allocation counts collide with legitimate sweep parameters.
        """
        paths = tuple(
            self.resolve_module(module, near)
            for module in ("repro.experiments.paper_data", "repro.util.units")
        )
        if paths not in self._paper_constants:
            values: set[float] = set()
            for path in paths:
                tree = self.parse(path) if path else None
                if tree is None:
                    continue
                for stmt in tree.body:
                    value = None
                    if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                        value = stmt.value
                    if (
                        isinstance(value, ast.Constant)
                        and isinstance(value.value, (int, float))
                        and not isinstance(value.value, bool)
                    ):
                        values.add(float(value.value))
            self._paper_constants[paths] = frozenset(
                v
                for v in values
                if (not float(v).is_integer() and abs(v) >= 1.0) or abs(v) >= 90.0
            )
        return self._paper_constants[paths]


class FileContext:
    """Everything a rule needs to inspect one file and report on it."""

    def __init__(
        self,
        path: Path,
        source: str,
        tree: ast.Module,
        project: ProjectContext,
    ):
        self.path = Path(path).resolve()
        self.source = source
        self.tree = tree
        self.project = project
        self.module = module_name_for(self.path)
        self.suppressions = parse_noqa(source)
        self.diagnostics: list[Diagnostic] = []

    @property
    def relpath(self) -> str:
        """Project-root-relative POSIX path (falls back to absolute)."""
        try:
            return self.path.relative_to(self.project.root).as_posix()
        except ValueError:
            return self.path.as_posix()

    def in_package(self, *packages: str) -> bool:
        """Whether this file's module lives under any dotted prefix."""
        return any(
            self.module == pkg or self.module.startswith(pkg + ".")
            for pkg in packages
        )

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether ``# repro: noqa`` on ``line`` silences ``rule``."""
        if line not in self.suppressions:
            return False
        rules = self.suppressions[line]
        return rules is None or rule in rules

    def report(self, rule: str, node: ast.AST, message: str) -> None:
        """File a diagnostic at ``node`` unless suppressed inline."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if self.is_suppressed(rule, line):
            return
        self.diagnostics.append(
            Diagnostic(
                path=self.relpath,
                line=line,
                col=col + 1,
                rule=rule,
                message=message,
            )
        )
