"""The committed-baseline workflow.

A baseline is a JSON snapshot of the *accepted* violations: a mapping
from :meth:`Diagnostic.key` to count.  The gate fails only on keys that
are new or whose count grew, so the tree can be ratcheted clean without
a flag-day fix — and a shrinking baseline is always a legal commit.
The repository's committed baseline (``.repro-lint-baseline.json``) is
kept **empty**: the tree lints clean.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic

#: Default baseline filename, looked up at the project root.
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"


@dataclass
class Baseline:
    """Accepted violations: ``{diagnostic key: count}``."""

    entries: dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_diagnostics(cls, diagnostics: list[Diagnostic]) -> "Baseline":
        """Snapshot a lint result as the new accepted state."""
        entries: dict[str, int] = {}
        for diag in diagnostics:
            entries[diag.key()] = entries.get(diag.key(), 0) + 1
        return cls(entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.is_file():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        entries = data.get("entries", {})
        return cls({str(k): int(v) for k, v in entries.items()})

    def save(self, path: Path) -> None:
        """Write the baseline (sorted keys, stable diffs)."""
        payload = {
            "comment": (
                "Accepted repro-lint violations; shrink freely, grow never. "
                "Regenerate with: repro lint --write-baseline <paths>"
            ),
            "entries": dict(sorted(self.entries.items())),
        }
        Path(path).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )

    def filter_new(
        self, diagnostics: list[Diagnostic]
    ) -> tuple[list[Diagnostic], list[str]]:
        """Split a run against this baseline.

        Returns ``(new, fixed)``: diagnostics beyond the accepted counts
        (oldest occurrences are forgiven first, by line order), and the
        baseline keys no longer observed at their accepted counts.
        """
        seen: dict[str, int] = {}
        new: list[Diagnostic] = []
        for diag in sorted(diagnostics):
            key = diag.key()
            seen[key] = seen.get(key, 0) + 1
            if seen[key] > self.entries.get(key, 0):
                new.append(diag)
        fixed = [
            key
            for key, accepted in sorted(self.entries.items())
            if seen.get(key, 0) < accepted
        ]
        return new, fixed

    def __len__(self) -> int:
        return sum(self.entries.values())
