"""Diagnostic rendering: human text, machine JSON, and SARIF 2.1.0."""

from __future__ import annotations

import json

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import LintResult

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(result: LintResult, new: list[Diagnostic] | None = None) -> str:
    """Grouped-by-file report with a per-rule summary line.

    When ``new`` is given (baseline mode), only those diagnostics are
    listed and the summary distinguishes accepted from new.
    """
    shown = result.diagnostics if new is None else new
    lines: list[str] = []
    current_file: str | None = None
    for diag in shown:
        if diag.path != current_file:
            current_file = diag.path
            lines.append(f"{diag.path}:")
        lines.append(f"  {diag.line}:{diag.col} {diag.rule} {diag.message}")
    if lines:
        lines.append("")
    counts = ", ".join(
        f"{rule}={n}" for rule, n in sorted(LintResult(
            diagnostics=shown, files_checked=0
        ).counts_by_rule.items())
    )
    if new is None:
        lines.append(
            f"{len(shown)} violation(s) in {result.files_checked} file(s)"
            + (f" [{counts}]" if counts else "")
        )
    else:
        accepted = len(result.diagnostics) - len(shown)
        lines.append(
            f"{len(shown)} new violation(s) ({accepted} accepted by baseline) "
            f"in {result.files_checked} file(s)"
            + (f" [{counts}]" if counts else "")
        )
    lines.extend(f"parse error: {error}" for error in result.parse_errors)
    return "\n".join(lines)


def render_json(result: LintResult, new: list[Diagnostic] | None = None) -> str:
    """Stable machine-readable report (used by the golden-fixture tests)."""
    payload = {
        "version": 1,
        "files_checked": result.files_checked,
        "diagnostics": [d.to_json() for d in result.diagnostics],
        "summary": result.counts_by_rule,
        "parse_errors": list(result.parse_errors),
    }
    if new is not None:
        payload["new"] = [d.to_json() for d in new]
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(result: LintResult, new: list[Diagnostic] | None = None) -> str:
    """SARIF 2.1.0 log for editor/CI ingestion (one run, one driver).

    In baseline mode only the *new* diagnostics become results — SARIF
    consumers gate on result presence, which must match the exit status.
    The driver's rule table lists every registered rule (not just the
    violated ones) so suppressed runs still document the rule catalog.
    """
    from repro.analysis.registry import all_rules

    shown = result.diagnostics if new is None else new
    run = {
        "tool": {
            "driver": {
                "name": "repro-lint",
                "informationUri": "https://example.invalid/repro-lint",
                "rules": [
                    {
                        "id": rule.rule_id,
                        "shortDescription": {"text": rule.title},
                        "fullDescription": {"text": rule.rationale},
                    }
                    for rule in all_rules()
                ],
            }
        },
        "results": [
            {
                "ruleId": diag.rule,
                "level": diag.severity,
                "message": {"text": diag.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": diag.path},
                            "region": {
                                "startLine": diag.line,
                                "startColumn": diag.col,
                            },
                        }
                    }
                ],
            }
            for diag in shown
        ],
        "invocations": [
            {
                "executionSuccessful": not result.parse_errors,
                "toolExecutionNotifications": [
                    {"level": "error", "message": {"text": error}}
                    for error in result.parse_errors
                ],
            }
        ],
    }
    payload = {"$schema": _SARIF_SCHEMA, "version": "2.1.0", "runs": [run]}
    return json.dumps(payload, indent=2, sort_keys=True)
