"""A small forward may-taint engine over one function body.

The flow rules need to answer questions like "does the value created by
``numpy.random.default_rng(...)`` reach this ``pool.submit`` call?"
inside a single function.  :class:`TaintEngine` answers them with a
deliberately simple abstraction: a *may* analysis over local names,
evaluated in two statement-order passes (the second pass stabilises
loop-carried taint), with no path sensitivity.  That is enough to track
the assignment chains real code writes — ``gen = default_rng(0)``,
``alias = gen``, ``with ProcessPoolExecutor() as pool`` — while staying
fast enough to run over every function of the tree on each lint.

Taint *seeds* are resolved call targets mapped to tags, e.g.
``{"numpy.random.default_rng": "rng"}``.  Two taint shapes exist per tag:

- ``<tag>`` — the name holds a value produced by a seeded constructor;
- ``ctor:<tag>`` — the name *aliases* the constructor itself
  (``make = np.random.default_rng``), so calling it yields ``<tag>``.
"""

from __future__ import annotations

import ast
from typing import Callable

#: Resolver signature: expression -> fully-qualified dotted name or None.
Resolver = Callable[[ast.AST], "str | None"]


class TaintEngine:
    """Forward taint propagation through one function (or module) body.

    ``seeds`` maps resolved call targets to taint tags; ``resolve``
    turns an expression (Name/Attribute chain) into its fully-qualified
    dotted name in the enclosing module's namespace, or ``None``.
    """

    def __init__(self, seeds: dict[str, str], resolve: Resolver):
        self.seeds = dict(seeds)
        self.resolve = resolve

    # ------------------------------------------------------------ public API
    def run(self, body: list[ast.stmt]) -> dict[str, str]:
        """Taint state after ``body``: ``{local name: tag}``.

        Two passes over the statements in source order make taint that
        flows backwards through a loop (``for _ in ...: use(g); g = ...``)
        visible on the first pass of the next iteration, without a full
        fixpoint.
        """
        state: dict[str, str] = {}
        for _ in range(2):
            before = dict(state)
            for stmt in body:
                self._visit_stmt(stmt, state)
            if state == before:
                break
        return state

    def taint_of(self, expr: ast.AST, state: dict[str, str]) -> str | None:
        """The taint tag carried by ``expr`` under ``state``, if any."""
        if isinstance(expr, ast.Name):
            tag = state.get(expr.id)
            if tag is not None and not tag.startswith("ctor:"):
                return tag
            return self._seed_alias(expr)
        if isinstance(expr, ast.Call):
            return self._call_taint(expr, state)
        if isinstance(expr, ast.Attribute):
            # an attribute of a tainted value stays tainted (conservative:
            # `stream.generator` on an rng-tainted stream is still rng)
            base_tag = self.taint_of(expr.value, state)
            if base_tag is not None:
                return base_tag
            return self._seed_alias(expr)
        if isinstance(expr, ast.IfExp):
            return self.taint_of(expr.body, state) or self.taint_of(
                expr.orelse, state
            )
        if isinstance(expr, (ast.Await, ast.Starred)):
            return self.taint_of(expr.value, state)
        return None

    # -------------------------------------------------------------- internals
    def _seed_alias(self, expr: ast.AST) -> str | None:
        """``ctor:`` style taint when ``expr`` names a seeded constructor."""
        resolved = self.resolve(expr)
        if resolved is not None and resolved in self.seeds:
            return f"ctor:{self.seeds[resolved]}"
        return None

    def _call_taint(self, call: ast.Call, state: dict[str, str]) -> str | None:
        """Taint produced by a call: seeded target or aliased constructor."""
        resolved = self.resolve(call.func)
        if resolved is not None and resolved in self.seeds:
            return self.seeds[resolved]
        if isinstance(call.func, ast.Name):
            tag = state.get(call.func.id)
            if tag is not None and tag.startswith("ctor:"):
                return tag[len("ctor:"):]
        return None

    def _expr_taint_or_ctor(
        self, expr: ast.AST, state: dict[str, str]
    ) -> str | None:
        """Like :meth:`taint_of` but preserves ``ctor:`` aliasing taint."""
        if isinstance(expr, ast.Name) and expr.id in state:
            return state[expr.id]
        alias = None
        if isinstance(expr, (ast.Name, ast.Attribute)):
            alias = self._seed_alias(expr)
        if alias is not None:
            return alias
        return self.taint_of(expr, state)

    def _bind(self, target: ast.AST, tag: str | None, state: dict[str, str]):
        if isinstance(target, ast.Name):
            if tag is None:
                state.pop(target.id, None)
            else:
                state[target.id] = tag
        elif isinstance(target, ast.Starred):
            self._bind(target.value, tag, state)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, tag, state)

    def _visit_stmt(self, stmt: ast.stmt, state: dict[str, str]) -> None:
        if isinstance(stmt, ast.Assign):
            value = stmt.value
            for target in stmt.targets:
                if isinstance(target, (ast.Tuple, ast.List)) and isinstance(
                    value, (ast.Tuple, ast.List)
                ) and len(target.elts) == len(value.elts):
                    for t, v in zip(target.elts, value.elts):
                        self._bind(t, self._expr_taint_or_ctor(v, state), state)
                else:
                    self._bind(
                        target, self._expr_taint_or_ctor(value, state), state
                    )
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind(
                stmt.target, self._expr_taint_or_ctor(stmt.value, state), state
            )
        elif isinstance(stmt, ast.AugAssign):
            # x += tainted taints x; x += clean leaves the old taint alone
            tag = self._expr_taint_or_ctor(stmt.value, state)
            if tag is not None:
                self._bind(stmt.target, tag, state)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._bind(target, None, state)
        elif isinstance(stmt, ast.With) or isinstance(stmt, ast.AsyncWith):
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._bind(
                        item.optional_vars,
                        self._expr_taint_or_ctor(item.context_expr, state),
                        state,
                    )
            self._visit_block(stmt.body, state)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_tag = self.taint_of(stmt.iter, state)
            if iter_tag is not None:
                self._bind(stmt.target, iter_tag, state)
            self._visit_block(stmt.body, state)
            self._visit_block(stmt.orelse, state)
        elif isinstance(stmt, ast.If):
            self._visit_block(stmt.body, state)
            self._visit_block(stmt.orelse, state)
        elif isinstance(stmt, ast.While):
            self._visit_block(stmt.body, state)
            self._visit_block(stmt.orelse, state)
        elif isinstance(stmt, ast.Try):
            self._visit_block(stmt.body, state)
            for handler in stmt.handlers:
                self._visit_block(handler.body, state)
            self._visit_block(stmt.orelse, state)
            self._visit_block(stmt.finalbody, state)
        # nested defs/classes get their own engine run; nothing to do here

    def _visit_block(self, body: list[ast.stmt], state: dict[str, str]) -> None:
        for stmt in body:
            self._visit_stmt(stmt, state)
