"""Per-file symbol resolution for the flow tier.

:func:`extract_summary` condenses one parsed source file into a
:class:`ModuleSummary`: every function/method with its resolved call
targets, executor submissions, RNG creation sites, reads and writes of
module-level state, parameter names and unit-suffix information — plus
the file's ``# repro: noqa`` map.  Summaries are plain-data and
JSON-round-trippable, which is what lets the engine cache them in the
artifact store keyed by file content digest: an unchanged file never
re-parses, and the call graph (:mod:`repro.analysis.callgraph`) links
summaries without touching the AST again.

Resolution is purely lexical, like the rest of the analyser:

- bare names resolve through enclosing local defs, module-level defs and
  the import map (``from x import y as z``);
- ``self.m(...)`` inside ``class C`` resolves to ``module.C.m`` when
  ``C`` defines ``m``;
- other attribute calls resolve through imported module aliases
  (``np.random.default_rng`` -> ``numpy.random.default_rng``) or fall
  back to a ``@method:<name>`` marker the call graph may later bind via
  its unique-method-name index.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field

from repro.analysis.context import module_name_for, parse_noqa
from repro.analysis.dataflow import TaintEngine
from repro.analysis.rules.common import build_import_map, dotted_name
from repro.analysis.rules.rep002_units import SUFFIX_FAMILIES

#: Bump when the summary shape changes: cached entries of older formats
#: are misses, so the store never feeds a stale shape to the graph.
SUMMARY_FORMAT = 1

#: Call targets that create a numpy bit generator (REP101 sources).
RNG_CONSTRUCTORS = {
    "numpy.random.default_rng": "rng",
    "numpy.random.Generator": "rng",
}

#: Call targets that create a worker pool (REP101/REP103 sinks hang off
#: ``.submit`` / ``.map`` calls on values tainted by these).
EXECUTOR_CONSTRUCTORS = {
    "concurrent.futures.ProcessPoolExecutor": "executor",
    "concurrent.futures.ThreadPoolExecutor": "executor",
    "concurrent.futures.process.ProcessPoolExecutor": "executor",
    "concurrent.futures.thread.ThreadPoolExecutor": "executor",
    "multiprocessing.Pool": "executor",
    "multiprocessing.pool.Pool": "executor",
}

#: Methods that hand a callable to a pool; first argument is the worker.
SUBMIT_METHODS = {"submit": "submit", "map": "map", "imap": "map", "apply_async": "submit"}

#: Mutating container methods: calling one on a module-level name is a
#: write to shared state (REP103).
MUTATOR_METHODS = {
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear",
}

#: Unit families for the *flow* rule: the REP002 table plus the short
#: suffixes the tree actually uses across call boundaries.  ``_sim_s``
#: (simulated seconds) is deliberately a different family from ``_s``
#: (wall seconds): adding them compiles and is always a bug.
FLOW_SUFFIX_FAMILIES = dict(SUFFIX_FAMILIES)
FLOW_SUFFIX_FAMILIES.update({"s": "seconds", "ns": "nanoseconds"})


def flow_unit_family(name: str | None) -> str | None:
    """Unit family of an identifier, judged by its (flow-tier) suffix."""
    if not name:
        return None
    leaf = name.rsplit(".", 1)[-1].lower()
    if leaf == "sim_s" or leaf.endswith("_sim_s"):
        return "sim_seconds"
    token = leaf.rsplit("_", 1)[-1]
    if token == leaf:
        # a bare name is only a unit when it *is* the suffix word
        # (``blocks``), never a coincidental short name like ``s``
        return SUFFIX_FAMILIES.get(token)
    return FLOW_SUFFIX_FAMILIES.get(token)


# --------------------------------------------------------------------------
# summary records (all JSON-round-trippable)
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class CallSite:
    """One call inside a function, with its resolved target."""

    target: str  #: fq dotted name, or ``@method:<leaf>`` marker
    line: int
    col: int
    #: ``(slot, argument name, family)`` per unit-suffixed argument; the
    #: slot is an int position (0-based, self excluded) or a keyword name.
    arg_units: tuple = ()
    #: ``(target name, family)`` when the call's result is bound to a
    #: unit-suffixed name (``x_bytes = f(...)``).
    assign_unit: tuple | None = None

    def to_json(self) -> dict:
        out = {"target": self.target, "line": self.line, "col": self.col}
        if self.arg_units:
            out["arg_units"] = [list(u) for u in self.arg_units]
        if self.assign_unit:
            out["assign_unit"] = list(self.assign_unit)
        return out

    @classmethod
    def from_json(cls, data: dict) -> "CallSite":
        return cls(
            target=data["target"],
            line=data["line"],
            col=data["col"],
            arg_units=tuple(tuple(u) for u in data.get("arg_units", ())),
            assign_unit=(
                tuple(data["assign_unit"]) if data.get("assign_unit") else None
            ),
        )


@dataclass(frozen=True)
class SubmitSite:
    """A ``pool.submit(fn, ...)`` / ``pool.map(fn, ...)`` call site."""

    kind: str  #: "submit" | "map"
    target: str | None  #: resolved worker callable, when resolvable
    line: int
    col: int
    #: names of rng-tainted arguments passed alongside the callable
    rng_args: tuple = ()

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "target": self.target,
            "line": self.line,
            "col": self.col,
            "rng_args": list(self.rng_args),
        }

    @classmethod
    def from_json(cls, data: dict) -> "SubmitSite":
        return cls(
            kind=data["kind"],
            target=data.get("target"),
            line=data["line"],
            col=data["col"],
            rng_args=tuple(data.get("rng_args", ())),
        )


@dataclass(frozen=True)
class GlobalWrite:
    """A write to module-level state from inside a function."""

    name: str  #: fully-qualified ``module.NAME``
    line: int
    col: int
    kind: str  #: "global" (rebind via ``global``) | "mutation"

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "line": self.line,
            "col": self.col,
            "kind": self.kind,
        }

    @classmethod
    def from_json(cls, data: dict) -> "GlobalWrite":
        return cls(
            name=data["name"],
            line=data["line"],
            col=data["col"],
            kind=data["kind"],
        )


@dataclass(frozen=True)
class RngSite:
    """A generator creation site (``default_rng`` / ``Generator`` call)."""

    name: str | None  #: bound name (fq for module level), None if anonymous
    target: str  #: the creating call target
    line: int
    col: int

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "target": self.target,
            "line": self.line,
            "col": self.col,
        }

    @classmethod
    def from_json(cls, data: dict) -> "RngSite":
        return cls(
            name=data.get("name"),
            target=data["target"],
            line=data["line"],
            col=data["col"],
        )


@dataclass(frozen=True)
class FunctionSummary:
    """Everything the flow rules need to know about one function."""

    qualname: str
    name: str
    line: int
    is_method: bool
    params: tuple = ()  #: positional parameter names (self/cls stripped)
    calls: tuple = ()
    submits: tuple = ()
    global_writes: tuple = ()
    #: fq names of module-level / imported values this function reads
    global_reads: tuple = ()
    #: generator creations inside this function
    rng_sites: tuple = ()

    def to_json(self) -> dict:
        return {
            "qualname": self.qualname,
            "name": self.name,
            "line": self.line,
            "is_method": self.is_method,
            "params": list(self.params),
            "calls": [c.to_json() for c in self.calls],
            "submits": [s.to_json() for s in self.submits],
            "global_writes": [w.to_json() for w in self.global_writes],
            "global_reads": list(self.global_reads),
            "rng_sites": [r.to_json() for r in self.rng_sites],
        }

    @classmethod
    def from_json(cls, data: dict) -> "FunctionSummary":
        return cls(
            qualname=data["qualname"],
            name=data["name"],
            line=data["line"],
            is_method=data["is_method"],
            params=tuple(data.get("params", ())),
            calls=tuple(CallSite.from_json(c) for c in data.get("calls", ())),
            submits=tuple(
                SubmitSite.from_json(s) for s in data.get("submits", ())
            ),
            global_writes=tuple(
                GlobalWrite.from_json(w) for w in data.get("global_writes", ())
            ),
            global_reads=tuple(data.get("global_reads", ())),
            rng_sites=tuple(
                RngSite.from_json(r) for r in data.get("rng_sites", ())
            ),
        )


@dataclass
class ModuleSummary:
    """The flow-tier condensation of one source file."""

    module: str
    path: str  #: project-root-relative POSIX path
    digest: str  #: content digest the summary was extracted from
    functions: dict = field(default_factory=dict)  #: qualname -> FunctionSummary
    classes: tuple = ()  #: fq class names defined here
    imports: dict = field(default_factory=dict)  #: local name -> fq target
    module_rng: tuple = ()  #: module-level RngSites (name is fq)
    module_globals: tuple = ()  #: names assigned at module level
    suppressions: dict = field(default_factory=dict)  #: line -> rules | None

    def to_json(self) -> dict:
        return {
            "format": SUMMARY_FORMAT,
            "module": self.module,
            "path": self.path,
            "digest": self.digest,
            "functions": {
                q: f.to_json() for q, f in sorted(self.functions.items())
            },
            "classes": list(self.classes),
            "imports": dict(sorted(self.imports.items())),
            "module_rng": [r.to_json() for r in self.module_rng],
            "module_globals": list(self.module_globals),
            "suppressions": {
                str(line): (None if rules is None else sorted(rules))
                for line, rules in self.suppressions.items()
            },
        }

    @classmethod
    def from_json(cls, data: dict) -> "ModuleSummary":
        return cls(
            module=data["module"],
            path=data["path"],
            digest=data["digest"],
            functions={
                q: FunctionSummary.from_json(f)
                for q, f in data.get("functions", {}).items()
            },
            classes=tuple(data.get("classes", ())),
            imports=dict(data.get("imports", {})),
            module_rng=tuple(
                RngSite.from_json(r) for r in data.get("module_rng", ())
            ),
            module_globals=tuple(data.get("module_globals", ())),
            suppressions={
                int(line): (None if rules is None else set(rules))
                for line, rules in data.get("suppressions", {}).items()
            },
        )

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether ``# repro: noqa`` on ``line`` silences ``rule`` here."""
        if line not in self.suppressions:
            return False
        rules = self.suppressions[line]
        return rules is None or rule in rules


def source_digest(source: str) -> str:
    """Content digest used as the summary cache key component."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def walk_scope(fn: ast.AST):
    """Yield ``fn``'s nodes without descending into nested defs/classes.

    Like :func:`ast.walk` but a nested ``def``/``class`` is a boundary:
    its body belongs to its own :class:`FunctionSummary`, so calls inside
    it must not be attributed to the enclosing function.  Lambdas and
    comprehensions are *not* boundaries — they execute in (and taint) the
    enclosing scope.
    """
    from collections import deque

    todo = deque([fn])
    while todo:
        node = todo.popleft()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            todo.append(child)


# --------------------------------------------------------------------------
# extraction
# --------------------------------------------------------------------------
def extract_summary(
    source: str, tree: ast.Module, module: str, relpath: str
) -> ModuleSummary:
    """Condense one parsed file into its :class:`ModuleSummary`."""
    return _Extractor(source, tree, module, relpath).extract()


def summarize_file(path, root) -> "ModuleSummary | None":
    """Parse and summarize ``path`` (None when unreadable/unparsable)."""
    from pathlib import Path

    path = Path(path)
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError):
        return None
    try:
        relpath = path.resolve().relative_to(Path(root).resolve()).as_posix()
    except ValueError:
        relpath = path.as_posix()
    return extract_summary(source, tree, module_name_for(path), relpath)


class _Extractor:
    """One-pass (per scope) walker building a :class:`ModuleSummary`."""

    def __init__(self, source: str, tree: ast.Module, module: str, relpath: str):
        self.tree = tree
        self.module = module
        self.summary = ModuleSummary(
            module=module,
            path=relpath,
            digest=source_digest(source),
            suppressions=parse_noqa(source),
        )
        self.imports = build_import_map(tree)
        self.summary.imports = dict(self.imports)
        self.module_defs = self._module_level_defs(tree)
        self.summary.module_globals = tuple(sorted(self.module_defs["names"]))
        self.taint_seeds = {**RNG_CONSTRUCTORS, **EXECUTOR_CONSTRUCTORS}

    # ---------------------------------------------------------------- helpers
    @staticmethod
    def _module_level_defs(tree: ast.Module) -> dict:
        funcs: set[str] = set()
        classes: dict[str, set[str]] = {}
        names: set[str] = set()
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                funcs.add(stmt.name)
            elif isinstance(stmt, ast.ClassDef):
                classes[stmt.name] = {
                    sub.name
                    for sub in stmt.body
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                }
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for node in ast.walk(target):
                        if isinstance(node, ast.Name):
                            names.add(node.id)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                for node in ast.walk(stmt.target):
                    if isinstance(node, ast.Name):
                        names.add(node.id)
        return {"funcs": funcs, "classes": classes, "names": names}

    def resolve_expr(self, expr: ast.AST, scope: "_Scope") -> str | None:
        """Fully-qualified dotted name of an expression, or ``None``."""
        name = dotted_name(expr)
        if name is None:
            return None
        return self.resolve_dotted(name, scope)

    def resolve_dotted(self, name: str, scope: "_Scope") -> str | None:
        head, _, rest = name.partition(".")
        # self/cls method access inside a class body
        if head in ("self", "cls") and scope.class_name is not None:
            if rest:
                leaf = rest.split(".")[0]
                methods = self.module_defs["classes"].get(scope.class_name, ())
                if leaf in methods:
                    return f"{self.module}.{scope.class_name}.{leaf}"
                return f"@method:{name.rsplit('.', 1)[-1]}"
            return None
        # lexically enclosing function defs
        for enclosing in reversed(scope.local_defs):
            if head in enclosing["names"]:
                base = f"{enclosing['qual']}.{head}"
                return f"{base}.{rest}" if rest else base
        # module-level defs
        if head in self.module_defs["funcs"]:
            base = f"{self.module}.{head}"
            return f"{base}.{rest}" if rest else base
        if head in self.module_defs["classes"]:
            base = f"{self.module}.{head}"
            return f"{base}.{rest}" if rest else base
        if head in self.imports:
            base = self.imports[head]
            return f"{base}.{rest}" if rest else base
        if head in self.module_defs["names"]:
            base = f"{self.module}.{head}"
            return f"{base}.{rest}" if rest else base
        if rest:
            # unresolvable head with an attribute chain: a method call on
            # some local value — leave a marker the call graph may bind
            return f"@method:{name.rsplit('.', 1)[-1]}"
        return head  # builtin or unknown bare name

    # ------------------------------------------------------------ extraction
    def extract(self) -> ModuleSummary:
        scope = _Scope(qual=self.module, class_name=None, local_defs=[])
        # module-level rng creations (shared by construction)
        engine = TaintEngine(
            self.taint_seeds, lambda e: self.resolve_expr(e, scope)
        )
        for stmt in self.tree.body:
            if isinstance(stmt, ast.Assign) and isinstance(
                stmt.value, ast.Call
            ):
                target_fq = self.resolve_expr(stmt.value.func, scope)
                if target_fq in RNG_CONSTRUCTORS:
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            self.summary.module_rng += (
                                RngSite(
                                    name=f"{self.module}.{target.id}",
                                    target=target_fq,
                                    line=stmt.lineno,
                                    col=stmt.col_offset + 1,
                                ),
                            )
        del engine
        classes = []
        for stmt in self.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._extract_function(stmt, scope, is_method=False)
            elif isinstance(stmt, ast.ClassDef):
                classes.append(f"{self.module}.{stmt.name}")
                class_scope = _Scope(
                    qual=f"{self.module}.{stmt.name}",
                    class_name=stmt.name,
                    local_defs=[],
                )
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._extract_function(sub, class_scope, is_method=True)
        self.summary.classes = tuple(classes)
        return self.summary

    def _extract_function(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        scope: "_Scope",
        is_method: bool,
    ) -> None:
        qualname = f"{scope.qual}.{fn.name}"
        decorators = {dotted_name(d) for d in fn.decorator_list}
        static = is_method and (
            "staticmethod" in decorators or "classmethod" in decorators
        )
        params = [a.arg for a in (*fn.args.posonlyargs, *fn.args.args)]
        if is_method and not static and params and params[0] in ("self", "cls"):
            params = params[1:]
        nested = [
            stmt
            for stmt in fn.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        fn_scope = _Scope(
            qual=qualname,
            class_name=scope.class_name,
            local_defs=scope.local_defs
            + [{"qual": qualname, "names": {n.name for n in nested}}],
        )
        resolve = lambda e: self.resolve_expr(e, fn_scope)  # noqa: E731
        engine = TaintEngine(self.taint_seeds, resolve)
        taint = engine.run(fn.body)

        for inner in nested:
            self._extract_function(inner, fn_scope, is_method=False)

        calls: list[CallSite] = []
        submits: list[SubmitSite] = []
        writes: list[GlobalWrite] = []
        reads: set[str] = set()
        rng_sites: list[RngSite] = []
        own_nodes = list(walk_scope(fn))
        declared_global = {
            name
            for node in own_nodes
            if isinstance(node, ast.Global)
            for name in node.names
        }
        assign_parent: dict[int, tuple] = {}
        for node in own_nodes:
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                if len(node.targets) == 1 and isinstance(
                    node.targets[0], ast.Name
                ):
                    family = flow_unit_family(node.targets[0].id)
                    if family is not None:
                        assign_parent[id(node.value)] = (
                            node.targets[0].id,
                            family,
                        )
        for node in own_nodes:
            if isinstance(node, ast.Call):
                self._extract_call(
                    node,
                    fn_scope,
                    taint,
                    engine,
                    calls,
                    submits,
                    writes,
                    rng_sites,
                    assign_parent,
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                self._extract_write(node, fn_scope, declared_global, writes)
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Load
            ):
                fq = self._read_target(node.id, fn_scope)
                if fq is not None:
                    reads.add(fq)
            elif isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                name = dotted_name(node)
                if name is not None:
                    head_fq = self._read_target(name.split(".")[0], fn_scope)
                    if head_fq is not None:
                        reads.add(head_fq)
        self.summary.functions[qualname] = FunctionSummary(
            qualname=qualname,
            name=fn.name,
            line=fn.lineno,
            is_method=is_method and not static,
            params=tuple(params),
            calls=tuple(calls),
            submits=tuple(submits),
            global_writes=tuple(writes),
            global_reads=tuple(sorted(reads)),
            rng_sites=tuple(rng_sites),
        )

    def _read_target(self, name: str, scope: "_Scope") -> str | None:
        """fq name of a module-global or imported value read, else None."""
        if name in self.module_defs["names"]:
            return f"{self.module}.{name}"
        if name in self.imports:
            return self.imports[name]
        return None

    def _extract_call(
        self,
        node: ast.Call,
        scope: "_Scope",
        taint: dict[str, str],
        engine: TaintEngine,
        calls: list,
        submits: list,
        writes: list,
        rng_sites: list,
        assign_parent: dict,
    ) -> None:
        target = self.resolve_expr(node.func, scope)
        line, col = node.lineno, node.col_offset + 1
        # rng creation (direct or through a constructor alias)
        created = engine.taint_of(node, taint)
        if created == "rng":
            direct = target if target in RNG_CONSTRUCTORS else "numpy.random.default_rng"
            bound = assign_parent.get(id(node))
            rng_sites.append(
                RngSite(
                    name=bound[0] if bound else None,
                    target=direct,
                    line=line,
                    col=col,
                )
            )
        # executor submission?
        if isinstance(node.func, ast.Attribute) and node.func.attr in SUBMIT_METHODS:
            base_tag = engine.taint_of(node.func.value, taint)
            if base_tag == "executor":
                worker = (
                    self.resolve_expr(node.args[0], scope) if node.args else None
                )
                if worker is not None and worker.startswith("@method:"):
                    worker = None
                rng_args = []
                for arg in node.args[1:]:
                    if engine.taint_of(arg, taint) == "rng":
                        rng_args.append(dotted_name(arg) or "<expr>")
                    else:
                        fq = self.resolve_expr(arg, scope)
                        if fq is not None and any(
                            fq == site.name for site in self.summary.module_rng
                        ):
                            rng_args.append(fq)
                for kw in node.keywords:
                    if kw.value is not None and engine.taint_of(
                        kw.value, taint
                    ) == "rng":
                        rng_args.append(kw.arg or "<kwargs>")
                submits.append(
                    SubmitSite(
                        kind=SUBMIT_METHODS[node.func.attr],
                        target=worker,
                        line=line,
                        col=col,
                        rng_args=tuple(rng_args),
                    )
                )
        # mutator method on this module's own module-level state?  Cross-
        # module container mutation is caught by the subscript/attribute
        # assignment check instead — a lexical pass cannot tell an imported
        # value from an imported submodule, and `other_mod.update(...)`
        # must not count as a write.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATOR_METHODS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in self.module_defs["names"]
        ):
            writes.append(
                GlobalWrite(
                    name=f"{self.module}.{node.func.value.id}",
                    line=line,
                    col=col,
                    kind="mutation",
                )
            )
        if target is None:
            return
        arg_units = []
        for index, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                break  # positions past a *splat are unknowable
            family = flow_unit_family(dotted_name(arg))
            if family is not None:
                arg_units.append((index, dotted_name(arg), family))
        for kw in node.keywords:
            if kw.arg is None:
                continue
            family = flow_unit_family(dotted_name(kw.value))
            if family is not None:
                arg_units.append((kw.arg, dotted_name(kw.value), family))
        calls.append(
            CallSite(
                target=target,
                line=line,
                col=col,
                arg_units=tuple(arg_units),
                assign_unit=assign_parent.get(id(node)),
            )
        )

    def _extract_write(
        self,
        node: ast.Assign | ast.AugAssign | ast.AnnAssign,
        scope: "_Scope",
        declared_global: set[str],
        writes: list,
    ) -> None:
        targets = (
            list(node.targets) if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if isinstance(target, ast.Name) and target.id in declared_global:
                writes.append(
                    GlobalWrite(
                        name=f"{self.module}.{target.id}",
                        line=node.lineno,
                        col=node.col_offset + 1,
                        kind="global",
                    )
                )
            elif isinstance(target, (ast.Subscript, ast.Attribute)):
                base: ast.AST = target
                while isinstance(base, (ast.Subscript, ast.Attribute)):
                    base = base.value
                if isinstance(base, ast.Name):
                    fq = self._read_target(base.id, scope)
                    if fq is not None:
                        writes.append(
                            GlobalWrite(
                                name=fq,
                                line=node.lineno,
                                col=node.col_offset + 1,
                                kind="mutation",
                            )
                        )


@dataclass
class _Scope:
    """Lexical position during extraction."""

    qual: str
    class_name: str | None
    local_defs: list
