"""The flow tier: project-wide analysis state handed to the flow rules.

:func:`build_flow_project` summarises every file of a lint run
(:mod:`repro.analysis.symbols`), links the summaries into a call graph
(:mod:`repro.analysis.callgraph`) and wraps both in a
:class:`FlowProject` — the object a :class:`~repro.analysis.registry.FlowRule`
receives.  Interprocedural diagnostics are *sink-anchored*: they are
reported at the line where the bad value arrives (the executor submit,
the clock read, the global write), which is where an inline
``# repro: noqa REP10x`` suppresses them; the source→sink journey lives
in the message as a symbol path, not as line numbers, so baseline keys
survive unrelated edits.

Summaries are cached in the artifact store under the ``lint`` kind,
keyed by file path + content digest + summary format: an unchanged file
costs one digest instead of a parse, which keeps full-tree flow lints
cheap enough for the pre-commit path.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.symbols import (
    SUMMARY_FORMAT,
    ModuleSummary,
    extract_summary,
    source_digest,
)
from repro.analysis.context import module_name_for


class FlowProject:
    """Everything a flow rule needs: the graph, and sink-aware reporting."""

    def __init__(self, graph: CallGraph, root: Path):
        self.graph = graph
        self.root = Path(root)
        self.diagnostics: list[Diagnostic] = []

    def module_of(self, qualname: str) -> ModuleSummary:
        """The summary of the module defining ``qualname``."""
        return self.graph.modules[self.graph.fn_module[qualname]]

    def report(
        self, rule: str, module: str, line: int, col: int, message: str
    ) -> None:
        """File a diagnostic at its sink unless a noqa there silences it."""
        summary = self.graph.modules[module]
        if summary.is_suppressed(rule, line):
            return
        self.diagnostics.append(
            Diagnostic(
                path=summary.path, line=line, col=col, rule=rule, message=message
            )
        )


def summary_cache_key(relpath: str, digest: str) -> dict:
    """Store key of one cached module summary (path + content + format)."""
    return {
        "artifact": "flow-summary",
        "format": SUMMARY_FORMAT,
        "path": relpath,
        "digest": digest,
    }


def _load_summary(
    path: Path, root: Path, cache
) -> ModuleSummary | None:
    try:
        source = path.read_text(encoding="utf-8")
    except OSError:
        return None
    try:
        relpath = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        relpath = path.as_posix()
    digest = source_digest(source)
    if cache is not None:
        payload = cache.get("lint", summary_cache_key(relpath, digest))
        if payload is not None:
            try:
                cached = ModuleSummary.from_json(payload)
                if cached.digest == digest and cached.path == relpath:
                    return cached
            except (KeyError, TypeError, ValueError):
                pass  # stale/corrupt cache entry: fall through and rebuild
    import ast

    try:
        tree = ast.parse(source, filename=str(path))
    except (SyntaxError, ValueError):
        return None
    summary = extract_summary(source, tree, module_name_for(path), relpath)
    if cache is not None:
        cache.put("lint", summary_cache_key(relpath, digest), summary.to_json())
    return summary


def build_flow_project(
    files: Iterable[Path], root: Path, cache=None
) -> FlowProject:
    """Summarise ``files``, link the call graph, return the project.

    ``cache`` is a :class:`~repro.store.ResultStore` (or None): summaries
    are content-addressed under the ``lint`` kind so only changed files
    pay the extraction cost on repeat runs.
    """
    root = Path(root)
    summaries: list[ModuleSummary] = []
    for path in files:
        summary = _load_summary(Path(path), root, cache)
        if summary is not None:
            summaries.append(summary)
    return FlowProject(build_call_graph(summaries), root)
