"""REP001 — determinism: no wall clocks, no unmanaged randomness.

The reproduction's core pipeline must be a pure function of its seed:
the paper's reliability protocol (Section III) is meaningless if a rerun
can observe different clocks or a different random stream.  Inside the
simulation-critical packages all time must come from the simulated clock
(:class:`repro.runtime.event_sim.EventSimulator`) or the simulated timer,
and all randomness from :class:`repro.util.rng.RngStream`, whose *named*
child streams stay reproducible under code reordering — a raw
``np.random.default_rng(seed)`` does not.
"""

from __future__ import annotations

import ast

from repro.analysis.context import FileContext
from repro.analysis.registry import Rule, register_rule
from repro.analysis.rules.common import (
    CLOCK_CALLS,
    build_import_map,
    resolve_call_target,
)

#: Packages whose behaviour must be a pure function of the seed.
ENFORCED_PACKAGES = (
    "repro.core",
    "repro.runtime",
    "repro.measurement",
    "repro.app",
)

#: Wall-clock reads (the sim clock or SimulatedTimer must be used instead).
_CLOCK_CALLS = CLOCK_CALLS

#: Module prefixes whose *any* call is unmanaged randomness.
_RNG_PREFIXES = ("random.", "numpy.random.")


@register_rule
class DeterminismRule(Rule):
    """Forbid wall-clock reads and RNG use that bypasses ``util/rng.py``."""

    rule_id = "REP001"
    title = "determinism: wall clocks and unmanaged randomness are forbidden"
    rationale = (
        "simulation-critical code must be a pure function of the seed; "
        "use RngStream (util/rng.py) and the simulated clock (event_sim)"
    )

    def check(self, ctx: FileContext) -> None:
        if not ctx.in_package(*ENFORCED_PACKAGES):
            return
        imports = build_import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node, imports)
            if target is None:
                continue
            if target in _CLOCK_CALLS:
                ctx.report(
                    self.rule_id,
                    node,
                    f"wall-clock read `{target}`: simulated code must take "
                    "time from the event simulator / SimulatedTimer",
                )
            elif target.startswith(_RNG_PREFIXES):
                ctx.report(
                    self.rule_id,
                    node,
                    f"unmanaged randomness `{target}`: draw from a named "
                    "repro.util.rng.RngStream child instead",
                )
