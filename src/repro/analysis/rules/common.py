"""Shared AST helpers and target sets for the domain rules."""

from __future__ import annotations

import ast

#: Wall-clock reads — the simulated clock or SimulatedTimer must be used
#: instead.  Shared by REP001 (per-file) and REP102 (interprocedural).
CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.clock_gettime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


def build_import_map(tree: ast.Module) -> dict[str, str]:
    """Map local names to the fully-qualified names they import.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from time import perf_counter as pc`` -> ``{"pc": "time.perf_counter"}``.
    Only top-level and nested plain imports are considered — good enough
    for invariant checking, no flow analysis attempted.
    """
    mapping: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                mapping[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                mapping[local] = f"{node.module}.{alias.name}"
    return mapping


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolve_call_target(node: ast.Call, imports: dict[str, str]) -> str | None:
    """Fully-qualified dotted name of a call target, through import aliases.

    ``np.random.default_rng()`` with ``import numpy as np`` resolves to
    ``numpy.random.default_rng``.  Unresolvable targets (lambdas, calls on
    call results) return ``None``.
    """
    name = dotted_name(node.func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    expansion = imports.get(head, head)
    return f"{expansion}.{rest}" if rest else expansion


def is_number(node: ast.AST) -> bool:
    """Whether ``node`` is an int/float literal (bools excluded)."""
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
    )
