"""REP003 — simulation-runtime hygiene.

The discrete-event engine only stays deterministic if its handlers are
pure with respect to the outside world: a blocking call inside a handler
(or a worker callable of ``parallel_exec`` / ``mpi_sim``) stalls the
simulated clock against the real one, and a write to a shared mutable
module global makes event outcomes depend on execution interleaving.
Tagged sends additionally must have a matching receive, or the simulated
communication deadlocks silently.

Scope: every module under :mod:`repro.runtime`, plus any function
anywhere in the tree whose parameters are annotated with
``EventSimulator`` (i.e. event handlers registered from other layers).
"""

from __future__ import annotations

import ast

from repro.analysis.context import FileContext
from repro.analysis.registry import Rule, register_rule
from repro.analysis.rules.common import build_import_map, resolve_call_target

#: Calls that block on the outside world (never valid on the sim path).
_BLOCKING_CALLS = {
    "time.sleep",
    "input",
    "open",
    "os.system",
    "os.popen",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "socket.socket",
    "socket.create_connection",
    "urllib.request.urlopen",
    "requests.get",
    "requests.post",
}

_SEND_NAMES = {"send", "isend"}
_RECV_NAMES = {"recv", "irecv"}


def _annotation_mentions(node: ast.AST | None, name: str) -> bool:
    """Whether an annotation expression references ``name`` anywhere."""
    if node is None:
        return False
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == name:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == name:
            return True
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            if name in sub.value:
                return True
    return False


def _is_sim_handler(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Whether a function takes an ``EventSimulator`` parameter."""
    args = fn.args
    every = [
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *( [args.vararg] if args.vararg else [] ),
        *( [args.kwarg] if args.kwarg else [] ),
    ]
    return any(
        _annotation_mentions(arg.annotation, "EventSimulator") for arg in every
    )


@register_rule
class RuntimeHygieneRule(Rule):
    """No blocking calls, no shared-global writes, no orphan send tags."""

    rule_id = "REP003"
    title = "sim-runtime hygiene: handlers must not block or share state"
    rationale = (
        "blocking calls desynchronise the simulated clock and shared "
        "mutable globals make event outcomes order-dependent; orphan "
        "send tags are silent simulated deadlocks"
    )

    def check(self, ctx: FileContext) -> None:
        imports = build_import_map(ctx.tree)
        module_globals = self._module_level_names(ctx.tree)
        if ctx.in_package("repro.runtime"):
            bodies: list[ast.AST] = [ctx.tree]
        else:
            bodies = [
                node
                for node in ast.walk(ctx.tree)
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and _is_sim_handler(node)
            ]
        for body in bodies:
            self._check_blocking_and_globals(ctx, body, imports, module_globals)
        self._check_send_recv_tags(ctx, imports)

    # -- helpers -----------------------------------------------------------
    @staticmethod
    def _module_level_names(tree: ast.Module) -> set[str]:
        """Names assigned at module level (candidate shared globals)."""
        names: set[str] = set()
        for stmt in tree.body:
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                targets = [stmt.target]
            for target in targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
        return names

    def _check_blocking_and_globals(
        self,
        ctx: FileContext,
        body: ast.AST,
        imports: dict[str, str],
        module_globals: set[str],
    ) -> None:
        for node in ast.walk(body):
            if isinstance(node, ast.Call):
                target = resolve_call_target(node, imports)
                if target in _BLOCKING_CALLS:
                    ctx.report(
                        self.rule_id,
                        node,
                        f"blocking call `{target}` on the simulation path: "
                        "model the delay with EventSimulator.schedule instead",
                    )
        # shared-state checks only apply inside functions — module level
        # runs once at import, before any events interleave
        if isinstance(body, ast.Module):
            functions = [
                n
                for n in ast.walk(body)
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
        else:
            functions = [body]
        seen: set[int] = set()
        for fn in functions:
            for node in ast.walk(fn):
                if id(node) in seen:
                    continue
                seen.add(id(node))
                if isinstance(node, ast.Global):
                    names = ", ".join(node.names)
                    ctx.report(
                        self.rule_id,
                        node,
                        f"write to shared module global(s) `{names}`: pass "
                        "state through the event payloads or the simulator "
                        "instance",
                    )
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    self._check_global_mutation(ctx, node, module_globals)

    def _check_global_mutation(
        self,
        ctx: FileContext,
        node: ast.Assign | ast.AugAssign,
        module_globals: set[str],
    ) -> None:
        """Flag ``GLOBAL[x] = ...`` / ``GLOBAL.attr = ...`` in functions."""
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                base: ast.AST = target
                while isinstance(base, (ast.Subscript, ast.Attribute)):
                    base = base.value
                if isinstance(base, ast.Name) and base.id in module_globals:
                    ctx.report(
                        self.rule_id,
                        node,
                        f"mutation of shared module global `{base.id}` from "
                        "handler/worker code: shared mutable state breaks "
                        "run-to-run determinism",
                    )

    def _check_send_recv_tags(
        self, ctx: FileContext, imports: dict[str, str]
    ) -> None:
        """Every constant-tagged send needs a matching recv tag (per file)."""
        sends: list[tuple[ast.Call, object]] = []
        recv_tags: set[object] = set()
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            method = node.func.attr
            if method not in _SEND_NAMES | _RECV_NAMES:
                continue
            tag = next(
                (
                    kw.value.value
                    for kw in node.keywords
                    if kw.arg == "tag" and isinstance(kw.value, ast.Constant)
                ),
                None,
            )
            if tag is None:
                continue
            if method in _SEND_NAMES:
                sends.append((node, tag))
            else:
                recv_tags.add(tag)
        for node, tag in sends:
            if tag not in recv_tags:
                ctx.report(
                    self.rule_id,
                    node,
                    f"send with tag {tag!r} has no matching recv in this "
                    "module: unmatched tags deadlock the simulated exchange",
                )
