"""REP004 — API-contract sync for package ``__init__`` files.

A reproduction is only usable if its public surface is discoverable:
every name a package ``__init__`` re-exports must appear in ``__all__``
(so ``from repro.x import *`` and the docs agree), must carry a
docstring at its definition site, and must be present in the generated
API reference (``docs/api.md``, produced by ``tools/gen_api_docs.py``).
All checks are lexical — nothing is imported — so the rule also works
on broken trees and on test fixtures.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.context import FileContext
from repro.analysis.registry import Rule, register_rule


def _all_entries(tree: ast.Module) -> tuple[list[str] | None, ast.AST | None]:
    """``(__all__ entries, assignment node)`` or ``(None, None)``."""
    for stmt in tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in targets
        ):
            continue
        value = stmt.value
        if isinstance(value, (ast.List, ast.Tuple)):
            entries = [
                elt.value
                for elt in value.elts
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            ]
            return entries, stmt
    return None, None


def _exported_imports(
    tree: ast.Module, package: str
) -> list[tuple[str, str, str, ast.AST]]:
    """``(local name, source module, original name, node)`` per re-export.

    ``package`` is the dotted name of the ``__init__``'s own package, used
    to anchor relative imports (``from .common import X`` inside
    ``repro.experiments`` resolves to ``repro.experiments.common``).
    """
    exports = []
    for stmt in tree.body:
        if not isinstance(stmt, ast.ImportFrom) or not stmt.module:
            continue
        module = stmt.module
        if stmt.level > 0:
            anchor = package.split(".")
            anchor = anchor[: len(anchor) - (stmt.level - 1)]
            module = ".".join([*anchor, module])
        if not module.startswith("repro"):
            continue
        for alias in stmt.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            exports.append((local, module, alias.name, stmt))
    return exports


def _has_module_getattr(tree: ast.Module) -> bool:
    """True when the module defines a PEP 562 ``__getattr__`` hook.

    Lazy re-exports (``__all__`` names resolved by module ``__getattr__``,
    e.g. to break an import cycle) have no static binding; like pyflakes'
    F822, the never-binds check stands down for such modules.
    """
    return any(
        isinstance(stmt, ast.FunctionDef) and stmt.name == "__getattr__"
        for stmt in tree.body
    )


def _defined_names(tree: ast.Module) -> set[str]:
    """Top-level bindings of a module (defs, classes, assignments, imports)."""
    names: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            names.add(stmt.target.id)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                if alias.name != "*":
                    names.add(alias.asname or alias.name.split(".")[0])
    return names


@register_rule
class ApiContractRule(Rule):
    """``__init__`` exports must be in ``__all__``, documented, and in api.md."""

    rule_id = "REP004"
    title = "API-contract sync: exports need __all__, docstrings, api.md"
    rationale = (
        "the public surface must stay discoverable: star-imports, help() "
        "and the generated reference (tools/gen_api_docs.py) have to agree"
    )

    def check(self, ctx: FileContext) -> None:
        if ctx.path.name != "__init__.py" or not ctx.in_package("repro"):
            return
        entries, _node = _all_entries(ctx.tree)
        exports = _exported_imports(ctx.tree, ctx.module)
        if entries is None:
            if exports:
                ctx.report(
                    self.rule_id,
                    ctx.tree.body[0] if ctx.tree.body else ctx.tree,
                    "package __init__ re-exports names but defines no "
                    "__all__ list",
                )
            return
        declared = set(entries)
        bound = _defined_names(ctx.tree)
        if not _has_module_getattr(ctx.tree):
            for name in entries:
                if name not in bound:
                    ctx.report(
                        self.rule_id,
                        ctx.tree,
                        f"__all__ lists `{name}` but the module never binds it",
                    )
        for local, module, original, node in exports:
            if local not in declared:
                ctx.report(
                    self.rule_id,
                    node,
                    f"exported name `{local}` (from {module}) is missing "
                    "from __all__",
                )
                continue
            self._check_definition(ctx, node, local, module, original)

    def _check_definition(
        self,
        ctx: FileContext,
        node: ast.AST,
        local: str,
        module: str,
        original: str,
    ) -> None:
        source_path = ctx.project.resolve_module(module, ctx.path)
        tree = ctx.project.parse(source_path) if source_path else None
        if tree is None:
            return
        definition = next(
            (
                stmt
                for stmt in tree.body
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
                and stmt.name == original
            ),
            None,
        )
        if definition is None:
            return  # constant or re-export — nothing to document
        if ast.get_docstring(definition) is None:
            ctx.report(
                self.rule_id,
                node,
                f"exported `{local}` ({module}.{original}) has no docstring "
                "at its definition",
            )
        self._check_api_doc(ctx, node, local, module, original, definition)

    def _check_api_doc(
        self,
        ctx: FileContext,
        node: ast.AST,
        local: str,
        module: str,
        original: str,
        definition: ast.AST,
    ) -> None:
        api_doc = ctx.project.api_doc
        if api_doc is None:
            return
        # only hold real source trees to the generated reference: fixture
        # packages are never covered by docs/api.md
        if not ctx.project.in_source_tree(ctx.path):
            return
        kind = "class " if isinstance(definition, ast.ClassDef) else ""
        pattern = re.compile(
            rf"^###\s+{re.escape(kind)}`{re.escape(original)}[(`]", re.MULTILINE
        )
        if not pattern.search(api_doc):
            ctx.report(
                self.rule_id,
                node,
                f"exported `{local}` ({module}.{original}) is absent from "
                "docs/api.md — regenerate with tools/gen_api_docs.py",
            )
