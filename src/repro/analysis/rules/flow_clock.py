"""REP102 — wall-clock leakage into the simulated runtime.

REP001 catches a ``time.time()`` written directly inside a simulated
package; this rule catches the indirect version: a helper three calls
away that reads the wall clock while executing *under* the event
simulator.  Simulated time and wall time advance independently, so any
such read silently couples results to host speed.

Sources are the functions of the simulated-runtime modules
(``event_sim``, ``mpi_sim``, ``recovery``) and every method of a
``SimulatedTimer`` class.  Traversal does not descend into
``repro.obs`` — :func:`repro.obs.tracer.wall_clock_s` is the one
sanctioned wall-clock boundary (observation, not simulation) — nor into
the analyser itself.  Diagnostics anchor at the clock call (the sink)
and carry the source→sink symbol path in the message.
"""

from __future__ import annotations

from repro.analysis.registry import FlowRule, register_rule
from repro.analysis.rules.common import CLOCK_CALLS

#: Modules whose every function executes under simulated time.
SOURCE_MODULES = (
    "repro.runtime.event_sim",
    "repro.runtime.mpi_sim",
    "repro.runtime.recovery",
)

#: Classes whose methods are simulated-time sources wherever defined.
SOURCE_CLASSES = ("SimulatedTimer",)

#: Trusted boundaries the reachability walk never enters.
TRUSTED_PREFIXES = ("repro.obs", "repro.analysis")


def _is_source(qualname: str, module: str) -> bool:
    if module in SOURCE_MODULES:
        return True
    return any(cls in qualname.split(".") for cls in SOURCE_CLASSES)


def _is_trusted(module: str) -> bool:
    return any(
        module == p or module.startswith(p + ".") for p in TRUSTED_PREFIXES
    )


@register_rule
class ClockFlowRule(FlowRule):
    """No wall-clock read reachable from the simulated runtime."""

    rule_id = "REP102"
    title = "clock flow: wall-clock reads reachable from the simulated runtime"
    rationale = (
        "code running under the event simulator must never read host time; "
        "the only sanctioned boundary is repro.obs.tracer.wall_clock_s"
    )

    def check_flow(self, flow) -> None:
        graph = flow.graph
        starts = sorted(
            q
            for q, m in graph.fn_module.items()
            if _is_source(q, m) and not _is_trusted(m)
        )
        forest = graph.reachable(starts, skip_module=_is_trusted)
        for qualname in sorted(forest):
            module = graph.fn_module[qualname]
            if _is_trusted(module):
                continue
            for site in graph.functions[qualname].calls:
                if site.target not in CLOCK_CALLS:
                    continue
                path = " -> ".join(graph.call_path(forest, qualname))
                flow.report(
                    self.rule_id,
                    module,
                    site.line,
                    site.col,
                    f"wall-clock read `{site.target}` reachable from the "
                    f"simulated runtime (path: {path}); take time from the "
                    "event simulator, or observe through "
                    "repro.obs.tracer.wall_clock_s",
                )
