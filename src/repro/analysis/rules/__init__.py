"""Built-in domain rules.

Importing this package registers every rule with
:mod:`repro.analysis.registry` (the modules self-register via the
``@register_rule`` decorator).
"""

from repro.analysis.rules import (  # noqa: F401  (imported for registration)
    flow_clock,
    flow_executor,
    flow_rng,
    flow_units,
    rep001_determinism,
    rep002_units,
    rep003_runtime,
    rep004_api,
    rep005_experiments,
    rep006_solver,
)

__all__ = [
    "rep001_determinism",
    "rep002_units",
    "rep003_runtime",
    "rep004_api",
    "rep005_experiments",
    "rep006_solver",
    "flow_rng",
    "flow_clock",
    "flow_executor",
    "flow_units",
]
