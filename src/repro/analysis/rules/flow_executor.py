"""REP103 — executor-safety: shared state written by pool workers.

The parallel orchestrator fans experiments out over a
``ProcessPoolExecutor``; with a process pool a worker's write to
module-level state updates a *copy* and is silently lost, and with a
thread pool (or fork start method) it races.  Either way the result
depends on pool internals, which is exactly what the reproduction must
not do.

The rule walks the call graph from every resolved ``submit``/``map``
worker and flags each write to module-level state it can reach —
``global`` rebinds and in-place mutations of module-level containers
(including the active-store and tracer registries).  A deliberate
worker-side re-open (the documented ``set_store`` pattern) is silenced
at the sink line with ``# repro: noqa REP103`` plus a justification.
Diagnostics anchor at the write (the sink) and carry the
submit→worker→write symbol path in the message.
"""

from __future__ import annotations

from repro.analysis.registry import FlowRule, register_rule


@register_rule
class ExecutorFlowRule(FlowRule):
    """No module-level writes reachable from executor-submitted work."""

    rule_id = "REP103"
    title = "executor flow: module-level state written by pool workers"
    rationale = (
        "writes to module globals from submitted work are lost or raced "
        "depending on the pool; thread results through return values"
    )

    def check_flow(self, flow) -> None:
        graph = flow.graph
        workers: dict[str, str] = {}  # worker qualname -> submitting fn
        for _module, fn, submit in graph.submit_sites():
            callee = graph.resolve(submit.target)
            if callee is not None:
                workers.setdefault(callee, fn.qualname)
        forest = graph.reachable(sorted(workers))
        seen: set[tuple] = set()
        for qualname in sorted(forest):
            module = graph.fn_module[qualname]
            fn = graph.functions[qualname]
            for write in fn.global_writes:
                key = (module, write.line, write.name)
                if key in seen:
                    continue
                seen.add(key)
                path = graph.call_path(forest, qualname)
                submitter = workers.get(path[0], path[0])
                chain = " -> ".join([submitter, *path])
                verb = "rebinds" if write.kind == "global" else "mutates"
                flow.report(
                    self.rule_id,
                    module,
                    write.line,
                    write.col,
                    f"executor-submitted code {verb} module-level "
                    f"`{write.name}` (path: {chain}); pool workers must not "
                    "write shared state — return results instead",
                )
