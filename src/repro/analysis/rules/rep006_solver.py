"""REP006 — solver facade: partition internals stay behind ``repro.core``.

:class:`repro.core.solver.Solver` is the single partitioning entry
point; the algorithm functions (``partition_fpm`` and friends,
``partition_cpm``) are its internals.  Layers above core that import
them directly bypass strategy validation, the hierarchy plumbing and
the solver observability counters — and silently fork the API every
time the solver grows an option.  The rule is lexical: it flags the
imports themselves, inside ``repro.*`` but outside ``repro.core``.

The root ``repro/__init__`` is exempt — it re-exports the functions for
backwards compatibility, which is a declared part of the public surface
(checked by REP004), not a call site.
"""

from __future__ import annotations

import ast

from repro.analysis.context import FileContext
from repro.analysis.registry import Rule, register_rule

#: The solver internals every layer above core must reach through
#: :class:`repro.core.solver.Solver`.
_INTERNALS = frozenset(
    {
        "partition_fpm",
        "partition_fpm_scalar",
        "partition_fpm_many",
        "partition_cpm",
        # the warm-state solve/re-solve pair the online layers (recovery,
        # drift control, the service's warm chain) must reach through
        # Solver.solve/Solver.resolve
        "partition_fpm_with_state",
        "resolve_fpm",
    }
)

_ADVICE = (
    "route it through repro.core.solver.Solver — e.g. "
    "Solver(strategy='fpm').solve(models, total).allocations"
)


@register_rule
class SolverFacadeRule(Rule):
    """Partition internals may only be imported inside ``repro.core``."""

    rule_id = "REP006"
    title = "Solver facade: no direct partition_* imports outside core"
    rationale = (
        "call sites that bypass repro.core.solver.Solver skip strategy "
        "validation, hierarchy plumbing and solver metrics, and fork the "
        "API whenever the solver grows an option"
    )

    def check(self, ctx: FileContext) -> None:
        if not ctx.in_package("repro"):
            return
        if ctx.in_package("repro.core") or ctx.module == "repro":
            return  # core owns the internals; the root __init__ re-exports
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                # level > 0: a relative import inside the repro tree
                if node.level == 0 and not module.startswith("repro"):
                    continue
                for alias in node.names:
                    if alias.name in _INTERNALS:
                        ctx.report(
                            self.rule_id,
                            node,
                            f"direct import of solver internal "
                            f"`{alias.name}` outside repro.core; {_ADVICE}",
                        )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "repro.core.partition":
                        ctx.report(
                            self.rule_id,
                            node,
                            "direct import of the repro.core.partition "
                            f"module outside repro.core; {_ADVICE}",
                        )
