"""REP002 — unit safety: don't mix quantities of different units.

The codebase encodes units in identifier suffixes (``_blocks``,
``_bytes``, ``_flops``, ... — the conventions of :mod:`repro.util.units`).
Adding, subtracting or comparing two quantities with *conflicting*
suffixes is almost always a real bug (bytes-vs-blocks confusion corrupts
FPM curves silently); multiplying or dividing them is how conversions
are written, so those are allowed.  Passing a bare numeric literal as
the quantity argument of a unit converter hides the unit entirely and
is flagged inside the simulation-critical packages.
"""

from __future__ import annotations

import ast

from repro.analysis.context import FileContext
from repro.analysis.registry import Rule, register_rule
from repro.analysis.rules.common import (
    build_import_map,
    dotted_name,
    is_number,
    resolve_call_target,
)
from repro.analysis.rules.rep001_determinism import ENFORCED_PACKAGES

#: identifier suffix -> unit family.  Different families must not be
#: added/subtracted/compared.  ``mib`` is deliberately a distinct family
#: from ``bytes``: adding them compiles but is off by 2^20.
SUFFIX_FAMILIES = {
    "blocks": "blocks",
    "nblocks": "blocks",
    "bytes": "bytes",
    "nbytes": "bytes",
    "mib": "mebibytes",
    "elements": "elements",
    "flops": "flops",
    "gflops": "gflops",
    "seconds": "seconds",
    "secs": "seconds",
}

#: Quantity-first converters of repro.util.units whose first argument
#: should be a *named* value, not a bare literal (matched under any
#: ``repro.util`` import path, including the package re-exports).
_CONVERTER_NAMES = {
    "blocks_to_elements",
    "blocks_to_bytes",
    "gemm_kernel_flops",
    "matmul_total_flops",
    "seconds_for",
    "mib",
}

_MIXING_OPS = (ast.Add, ast.Sub)
_COMPARE_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


def unit_family(node: ast.AST) -> str | None:
    """Unit family of an operand, judged by its identifier suffix."""
    name = dotted_name(node)
    if name is None:
        return None
    leaf = name.rsplit(".", 1)[-1].lower()
    token = leaf.rsplit("_", 1)[-1]
    return SUFFIX_FAMILIES.get(token)


@register_rule
class UnitSafetyRule(Rule):
    """Flag arithmetic that mixes unit families, and literal quantities."""

    rule_id = "REP002"
    title = "unit safety: no arithmetic across conflicting unit suffixes"
    rationale = (
        "bytes-vs-blocks-vs-flops confusion corrupts speed functions "
        "without failing any test; units live in identifier suffixes "
        "(util/units.py conventions) and must agree under +/-/comparison"
    )

    def check(self, ctx: FileContext) -> None:
        imports = build_import_map(ctx.tree)
        in_enforced = ctx.in_package(*ENFORCED_PACKAGES)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, _MIXING_OPS):
                self._check_pair(ctx, node, node.left, node.right, "arithmetic")
            elif isinstance(node, ast.Compare) and len(node.ops) == 1:
                if isinstance(node.ops[0], _COMPARE_OPS):
                    self._check_pair(
                        ctx, node, node.left, node.comparators[0], "comparison"
                    )
            elif isinstance(node, ast.Call) and in_enforced:
                self._check_literal_quantity(ctx, node, imports)

    def _check_pair(
        self,
        ctx: FileContext,
        node: ast.AST,
        left: ast.AST,
        right: ast.AST,
        what: str,
    ) -> None:
        left_family = unit_family(left)
        right_family = unit_family(right)
        if (
            left_family is not None
            and right_family is not None
            and left_family != right_family
        ):
            ctx.report(
                self.rule_id,
                node,
                f"{what} mixes units: `{dotted_name(left)}` [{left_family}] "
                f"vs `{dotted_name(right)}` [{right_family}]",
            )

    def _check_literal_quantity(
        self, ctx: FileContext, node: ast.Call, imports: dict[str, str]
    ) -> None:
        target = resolve_call_target(node, imports)
        if (
            target is None
            or not target.startswith("repro.util")
            or target.rsplit(".", 1)[-1] not in _CONVERTER_NAMES
        ):
            return
        if node.args and is_number(node.args[0]):
            ctx.report(
                self.rule_id,
                node,
                f"bare numeric literal passed as the quantity of "
                f"`{target.rsplit('.', 1)[-1]}`: bind it to a suffixed name "
                "so its unit is visible",
            )
