"""REP104 — unit-dimension flow across call boundaries.

REP002 checks arithmetic inside one expression; this rule follows the
suffix conventions (``_s``, ``_sim_s``, ``_bytes``, ``_flops``, ...)
*through calls*: an argument whose suffix names one unit family must not
fill a parameter whose suffix names another, and a call result bound to
a unit-suffixed name should come from a callee whose own name does not
promise a different unit.  ``_sim_s`` (simulated seconds) is a distinct
family from ``_s`` (wall seconds) — mixing them compiles, runs, and is
always wrong.

Parameter suffixes come from the callee's summary, so the check is
interprocedural but still purely lexical: no types, just the naming
convention the tree already enforces per-file.  Diagnostics anchor at
the call site and carry the caller→callee symbol path.
"""

from __future__ import annotations

from repro.analysis.registry import FlowRule, register_rule

# NOTE: repro.analysis.symbols imports this package's ``common`` module,
# which initialises the package and hence this module — so the
# flow_unit_family import must be deferred to call time.


@register_rule
class UnitFlowRule(FlowRule):
    """Unit-suffixed values keep their dimension across call boundaries."""

    rule_id = "REP104"
    title = "unit flow: dimension conflicts between arguments and parameters"
    rationale = (
        "suffix conventions are the tree's unit system; a _bytes value "
        "filling a _blocks parameter corrupts FPM curves silently"
    )

    def check_flow(self, flow) -> None:
        from repro.analysis.symbols import flow_unit_family

        graph = flow.graph
        for qualname in sorted(graph.functions):
            module = graph.fn_module[qualname]
            fn = graph.functions[qualname]
            for site in fn.calls:
                callee = graph.resolve(site.target)
                self._check_result_binding(
                    flow, module, qualname, site, callee
                )
                if callee is None:
                    continue
                params = graph.functions[callee].params
                for slot, argname, family in site.arg_units:
                    if isinstance(slot, int):
                        if slot >= len(params):
                            continue
                        pname = params[slot]
                    else:
                        if slot not in params:
                            continue
                        pname = slot
                    pfamily = flow_unit_family(pname)
                    if pfamily is None or pfamily == family:
                        continue
                    flow.report(
                        self.rule_id,
                        module,
                        site.line,
                        site.col,
                        f"unit mismatch: `{argname}` ({family}) fills "
                        f"parameter `{pname}` ({pfamily}) "
                        f"(path: {qualname} -> {callee})",
                    )

    def _check_result_binding(
        self, flow, module: str, qualname: str, site, callee: str | None
    ) -> None:
        """``x_bytes = elapsed_s(...)`` — result unit vs target unit."""
        from repro.analysis.symbols import flow_unit_family

        if site.assign_unit is None:
            return
        raw = callee if callee is not None else site.target
        if raw.startswith("@method:"):
            raw = raw[len("@method:"):]
        ret_family = flow_unit_family(raw.rsplit(".", 1)[-1])
        target_name, target_family = site.assign_unit
        if ret_family is None or ret_family == target_family:
            return
        flow.report(
            self.rule_id,
            module,
            site.line,
            site.col,
            f"unit mismatch: `{target_name}` ({target_family}) bound to the "
            f"result of `{raw}` ({ret_family}) "
            f"(path: {qualname} -> {callee or raw})",
        )
