"""REP101 — RNG stream discipline across the call graph.

The paper's measurement protocol repeats every benchmark until the
confidence interval closes (Section III); that only converges to the
*same* answer on rerun if every random draw comes from the seed tree in
:mod:`repro.util.rng`.  Two things break the discipline and both need
whole-project knowledge to see:

- a ``numpy.random.default_rng`` / ``Generator`` created anywhere other
  than ``repro.util.rng`` — a second seed root the protocol cannot
  replay;
- a generator object handed to work submitted to a process pool — the
  pickled copy draws an identical stream in every worker (or, for a
  thread pool, the shared stream is raced), so "independent" repetitions
  are correlated.

Diagnostics anchor at the sink: the creation call, or the submit call
the generator flows into.  Messages carry the symbol path, never line
numbers, so baseline keys survive unrelated edits.
"""

from __future__ import annotations

from repro.analysis.registry import FlowRule, register_rule

#: The one module allowed to construct numpy generators.
ALLOWED_MODULES = ("repro.util.rng",)


@register_rule
class RngFlowRule(FlowRule):
    """Generators come from ``util/rng.py`` and never cross a pool."""

    rule_id = "REP101"
    title = "rng flow: generators made outside util/rng or passed to executors"
    rationale = (
        "generators must descend from the RngStream seed tree and stay "
        "out of pool submissions; send integer seeds, not Generator objects"
    )

    def check_flow(self, flow) -> None:
        graph = flow.graph
        shared = graph.rng_globals()  # fq module-level generator names
        reported_shared: set[str] = set()

        # 1) generator values flowing into executor-submitted work
        for module, fn, submit in graph.submit_sites():
            for arg in submit.rng_args:
                worker = submit.target or "<unresolved worker>"
                flow.report(
                    self.rule_id,
                    module,
                    submit.line,
                    submit.col,
                    f"numpy Generator `{arg}` flows into executor-submitted "
                    f"work (path: {fn.qualname} -> {submit.kind} -> {worker}); "
                    "pass integer seeds from repro.util.rng.sibling_seeds and "
                    "construct the stream inside the worker",
                )
                if arg in shared:
                    reported_shared.add(arg)

        # 2) creation sites outside the sanctioned module.  A module-level
        # generator already reported at a submit sink is not re-reported at
        # its creation: one violation, one diagnostic.
        for module, summary in sorted(graph.modules.items()):
            if module in ALLOWED_MODULES:
                continue
            for site in summary.module_rng:
                if site.name in reported_shared:
                    continue
                flow.report(
                    self.rule_id,
                    module,
                    site.line,
                    site.col,
                    f"module-level generator `{site.name}` created via "
                    f"`{site.target}` outside repro.util.rng; derive a named "
                    "child stream from the experiment's RngStream instead",
                )
        for qualname in sorted(graph.functions):
            module = graph.fn_module[qualname]
            if module in ALLOWED_MODULES:
                continue
            for site in graph.functions[qualname].rng_sites:
                flow.report(
                    self.rule_id,
                    module,
                    site.line,
                    site.col,
                    f"generator created via `{site.target}` in `{qualname}` "
                    "outside repro.util.rng; derive a named child stream from "
                    "the experiment's RngStream instead",
                )
