"""REP005 — experiment-config hygiene: no duplicated paper constants.

:mod:`repro.experiments.paper_data` is the single transcription of the
paper's published numbers (and :mod:`repro.util.units` owns the blocking
factor b = 640).  An experiment module that re-types one of those values
as a literal will silently diverge the moment the transcription is
corrected or re-read — the reproduction then compares against a number
that no longer exists in the paper.  Only *distinctive* constants are
matched (see :meth:`ProjectContext.paper_constants`), so loop bounds and
tolerances never trigger this rule.
"""

from __future__ import annotations

import ast

from repro.analysis.context import FileContext
from repro.analysis.registry import Rule, register_rule
from repro.analysis.rules.common import is_number

#: The reference modules themselves are exempt (they *define* the values).
_EXEMPT_MODULES = {"repro.experiments.paper_data", "repro.util.units"}


@register_rule
class ExperimentHygieneRule(Rule):
    """Experiments must reference paper constants, not re-type them."""

    rule_id = "REP005"
    title = "experiment hygiene: paper constants must come from paper_data"
    rationale = (
        "the paper's numbers are transcribed once (experiments/paper_data.py"
        " and units.DEFAULT_BLOCKING_FACTOR); re-typed literals silently "
        "diverge when the transcription is corrected"
    )

    def check(self, ctx: FileContext) -> None:
        if not ctx.in_package("repro.experiments"):
            return
        if ctx.module in _EXEMPT_MODULES:
            return
        constants = ctx.project.paper_constants(ctx.path)
        if not constants:
            return
        for node in ast.walk(ctx.tree):
            if is_number(node) and float(node.value) in constants:
                ctx.report(
                    self.rule_id,
                    node,
                    f"hard-coded paper constant {node.value!r}: reference "
                    "the named value in experiments/paper_data.py (or "
                    "repro.util.units.DEFAULT_BLOCKING_FACTOR)",
                )
