"""File discovery and the lint pipeline.

:func:`lint_paths` is the single entry point used by the CLI, the gate
wrapper and the tests: expand paths to ``.py`` files, parse each once,
run every (selected) rule over each :class:`FileContext`, and return the
sorted diagnostics plus any files that failed to parse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.context import FileContext, ProjectContext, find_project_root
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, all_rules

#: Directory names never descended into during discovery.
_SKIP_DIRS = {
    ".git",
    "__pycache__",
    ".pytest_cache",
    ".mypy_cache",
    ".ruff_cache",
    "build",
    "dist",
    ".eggs",
}


@dataclass
class LintResult:
    """Outcome of one lint run."""

    diagnostics: list[Diagnostic]
    files_checked: int
    parse_errors: list[str] = field(default_factory=list)

    @property
    def counts_by_rule(self) -> dict[str, int]:
        """``{rule_id: violation count}`` over the whole run."""
        counts: dict[str, int] = {}
        for diag in self.diagnostics:
            counts[diag.rule] = counts.get(diag.rule, 0) + 1
        return counts


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories to a sorted, de-duplicated ``.py`` list."""
    found: set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_file():
            if path.suffix == ".py":
                found.add(path.resolve())
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    found.add(candidate.resolve())
    return sorted(found)


def lint_file(
    path: Path,
    project: ProjectContext,
    rules: list[Rule],
) -> tuple[list[Diagnostic], str | None]:
    """Lint one file; return (diagnostics, parse-error-or-None)."""
    try:
        source = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        return [], f"{path}: unreadable ({exc})"
    try:
        import ast

        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [], f"{path}:{exc.lineno}: syntax error: {exc.msg}"
    ctx = FileContext(Path(path), source, tree, project)
    for rule in rules:
        rule.check(ctx)
    return sorted(ctx.diagnostics), None


def lint_paths(
    paths: list[Path] | list[str],
    rules: list[Rule] | None = None,
    root: Path | None = None,
) -> LintResult:
    """Lint every python file under ``paths`` with ``rules`` (default: all)."""
    resolved = [Path(p) for p in paths]
    files = iter_python_files(resolved)
    if root is None:
        anchor = files[0] if files else (resolved[0] if resolved else Path.cwd())
        root = find_project_root(Path(anchor))
    project = ProjectContext(Path(root))
    active = list(all_rules()) if rules is None else list(rules)
    diagnostics: list[Diagnostic] = []
    parse_errors: list[str] = []
    for path in files:
        found, error = lint_file(path, project, active)
        diagnostics.extend(found)
        if error is not None:
            parse_errors.append(error)
    return LintResult(
        diagnostics=sorted(diagnostics),
        files_checked=len(files),
        parse_errors=parse_errors,
    )
