"""File discovery and the lint pipeline.

:func:`lint_paths` is the single entry point used by the CLI, the gate
wrapper and the tests: expand paths to ``.py`` files, parse each once,
run every (selected) per-file rule over each :class:`FileContext`, and —
when the flow tier is enabled — build the whole-project call graph and
run the interprocedural rules over it.  Returns the sorted diagnostics,
any files that failed to parse, and per-rule wall times.

Two orthogonal narrowing knobs support the incremental pre-commit path:
``only`` restricts *reporting* to a subset of files (per-file rules skip
the rest entirely; the call graph is still built over everything, since
a change in one file can create a violation whose sink is another), and
``cache`` (a :class:`~repro.store.ResultStore`) makes unchanged files
cost a content digest instead of a parse in the flow tier.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.context import FileContext, ProjectContext, find_project_root
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import FlowRule, Rule, all_rules

#: Directory names never descended into during discovery.
_SKIP_DIRS = {
    ".git",
    "__pycache__",
    ".pytest_cache",
    ".mypy_cache",
    ".ruff_cache",
    "build",
    "dist",
    ".eggs",
}


#: Pseudo-rule key under which call-graph construction time is recorded.
GRAPH_TIME_KEY = "callgraph"


@dataclass
class LintResult:
    """Outcome of one lint run."""

    diagnostics: list[Diagnostic]
    files_checked: int
    parse_errors: list[str] = field(default_factory=list)
    #: wall seconds per rule id (plus ``callgraph`` for graph building)
    rule_times_s: dict = field(default_factory=dict)

    @property
    def counts_by_rule(self) -> dict[str, int]:
        """``{rule_id: violation count}`` over the whole run."""
        counts: dict[str, int] = {}
        for diag in self.diagnostics:
            counts[diag.rule] = counts.get(diag.rule, 0) + 1
        return counts


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories to a sorted, de-duplicated ``.py`` list."""
    found: set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_file():
            if path.suffix == ".py":
                found.add(path.resolve())
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    found.add(candidate.resolve())
    return sorted(found)


def lint_file(
    path: Path,
    project: ProjectContext,
    rules: list[Rule],
    rule_times_s: dict | None = None,
) -> tuple[list[Diagnostic], str | None]:
    """Lint one file; return (diagnostics, parse-error-or-None)."""
    try:
        source = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        return [], f"{path}: unreadable ({exc})"
    try:
        import ast

        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [], f"{path}:{exc.lineno}: syntax error: {exc.msg}"
    ctx = FileContext(Path(path), source, tree, project)
    for rule in rules:
        start = time.perf_counter()
        rule.check(ctx)
        if rule_times_s is not None:
            rule_times_s[rule.rule_id] = rule_times_s.get(
                rule.rule_id, 0.0
            ) + (time.perf_counter() - start)
    return sorted(ctx.diagnostics), None


def lint_paths(
    paths: list[Path] | list[str],
    rules: list[Rule] | None = None,
    root: Path | None = None,
    flow: bool = False,
    only: list[Path] | list[str] | None = None,
    cache=None,
) -> LintResult:
    """Lint every python file under ``paths`` with ``rules`` (default: all).

    ``flow=True`` enables the interprocedural tier for the default rule
    set; explicitly selecting a flow rule via ``rules`` enables it too.
    ``only`` narrows reporting to the given files (see module docstring);
    ``cache`` is a :class:`~repro.store.ResultStore` for flow summaries.
    """
    resolved = [Path(p) for p in paths]
    files = iter_python_files(resolved)
    if root is None:
        anchor = files[0] if files else (resolved[0] if resolved else Path.cwd())
        root = find_project_root(Path(anchor))
    root = Path(root)
    project = ProjectContext(root)
    active = list(all_rules()) if rules is None else list(rules)
    flow_rules = [r for r in active if isinstance(r, FlowRule)]
    file_rules = [r for r in active if not isinstance(r, FlowRule)]
    if rules is None and not flow:
        flow_rules = []  # the flow tier is opt-in for the default set

    only_files: set[Path] | None = None
    if only is not None:
        only_files = set(iter_python_files([Path(p) for p in only]))

    rule_times_s: dict = {}
    diagnostics: list[Diagnostic] = []
    parse_errors: list[str] = []
    targets = (
        files
        if only_files is None
        else [f for f in files if f in only_files]
    )
    for path in targets:
        found, error = lint_file(path, project, file_rules, rule_times_s)
        diagnostics.extend(found)
        if error is not None:
            parse_errors.append(error)

    if flow_rules:
        from repro.analysis.flow import build_flow_project

        start = time.perf_counter()
        flow_project = build_flow_project(files, root, cache=cache)
        rule_times_s[GRAPH_TIME_KEY] = time.perf_counter() - start
        for rule in flow_rules:
            start = time.perf_counter()
            rule.check_flow(flow_project)
            rule_times_s[rule.rule_id] = rule_times_s.get(
                rule.rule_id, 0.0
            ) + (time.perf_counter() - start)
        flow_diags = flow_project.diagnostics
        if only_files is not None:
            rel_only = set()
            for f in only_files:
                try:
                    rel_only.add(f.resolve().relative_to(root.resolve()).as_posix())
                except ValueError:
                    rel_only.add(f.as_posix())
            flow_diags = [d for d in flow_diags if d.path in rel_only]
        diagnostics.extend(flow_diags)

    return LintResult(
        diagnostics=sorted(diagnostics),
        files_checked=len(targets),
        parse_errors=parse_errors,
        rule_times_s=rule_times_s,
    )
