"""The rule base class and the pluggable rule registry.

Rules self-register at import time via the :func:`register_rule`
decorator; :mod:`repro.analysis.rules` imports every built-in rule module
so ``all_rules()`` is complete after ``import repro.analysis.rules``.
Third-party extensions register the same way.
"""

from __future__ import annotations

from repro.analysis.context import FileContext

_REGISTRY: dict[str, "Rule"] = {}


class Rule:
    """Base class for one lint rule.

    Subclasses set ``rule_id`` (``"REP00x"``), ``title`` and ``rationale``
    (one line each, surfaced by ``--list-rules`` and the docs) and
    implement :meth:`check`, reporting through ``ctx.report`` so inline
    suppressions are honoured uniformly.
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    def check(self, ctx: FileContext) -> None:
        """Inspect one file; report violations via ``ctx.report``."""
        raise NotImplementedError


class FlowRule(Rule):
    """Base class for whole-project (interprocedural) rules.

    Flow rules run once per lint over the call graph the flow tier
    builds, not once per file; they implement :meth:`check_flow` and
    report through ``flow.report`` so sink-line suppressions are
    honoured.  The engine only runs them when the flow tier is enabled
    (``repro lint --flow``) or when a flow rule is selected explicitly.
    """

    def check(self, ctx: FileContext) -> None:
        """Flow rules have no per-file pass."""

    def check_flow(self, flow) -> None:
        """Inspect the whole project; report via ``flow.report``."""
        raise NotImplementedError


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and add to the registry (id-unique)."""
    rule = cls()
    if not rule.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by id."""
    import repro.analysis.rules  # noqa: F401  (side effect: registration)

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Look one rule up by id; raise ``KeyError`` with the known ids."""
    import repro.analysis.rules  # noqa: F401  (side effect: registration)

    try:
        return _REGISTRY[rule_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(f"unknown rule {rule_id!r}; known rules: {known}") from None
