"""Whole-project call graph over :class:`~repro.analysis.symbols.ModuleSummary`.

Links the per-file summaries into one directed graph whose nodes are
fully-qualified function symbols (``repro.store.store.set_store``,
``repro.util.rng.RngStream.child``, ...).  Edges come from the lexically
resolved call targets the extractor recorded; three extra resolution
steps happen here, because they need cross-file knowledge:

- **re-export following** — ``repro.obs.get_tracer`` resolves through the
  package ``__init__``'s import map to ``repro.obs.tracer.get_tracer``;
- **constructor binding** — a call to a class resolves to its
  ``__init__`` when one is defined;
- **unique-method binding** — an unresolved ``obj.m(...)`` marker
  (``@method:m``) binds to ``SomeClass.m`` iff exactly one class in the
  project defines ``m``; ambiguous names stay unbound rather than guess.

The graph answers the reachability questions the flow rules ask
(:meth:`CallGraph.reachable`) and reconstructs the source→sink symbol
path a diagnostic message carries (:meth:`CallGraph.call_path`).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable

from repro.analysis.symbols import CallSite, FunctionSummary, ModuleSummary

#: Re-export chains longer than this are cycles or pathologies; stop.
_MAX_REEXPORT_HOPS = 8


class CallGraph:
    """The project-wide call graph, built from module summaries."""

    def __init__(self, summaries: Iterable[ModuleSummary]):
        self.modules: dict[str, ModuleSummary] = {}
        self.functions: dict[str, FunctionSummary] = {}
        self.fn_module: dict[str, str] = {}
        self.classes: set[str] = set()
        for summary in summaries:
            self.modules[summary.module] = summary
            self.classes.update(summary.classes)
            for qualname, fn in summary.functions.items():
                self.functions[qualname] = fn
                self.fn_module[qualname] = summary.module
        self._method_index: dict[str, list[str]] = {}
        for qualname, fn in self.functions.items():
            if fn.is_method or self._owning_class(qualname) is not None:
                self._method_index.setdefault(fn.name, []).append(qualname)
        #: caller qualname -> [(callee qualname, witness call site)]
        self.edges: dict[str, list[tuple[str, CallSite]]] = {}
        for qualname, fn in self.functions.items():
            out: list[tuple[str, CallSite]] = []
            for site in fn.calls:
                callee = self.resolve(site.target)
                if callee is not None and callee != qualname:
                    out.append((callee, site))
            for submit in fn.submits:
                if submit.target is None:
                    continue
                callee = self.resolve(submit.target)
                if callee is not None and callee != qualname:
                    out.append(
                        (
                            callee,
                            CallSite(
                                target=submit.target,
                                line=submit.line,
                                col=submit.col,
                            ),
                        )
                    )
            if out:
                self.edges[qualname] = out

    # ------------------------------------------------------------ resolution
    def _owning_class(self, qualname: str) -> str | None:
        owner = qualname.rsplit(".", 1)[0]
        return owner if owner in self.classes else None

    def resolve(self, target: str | None) -> str | None:
        """Bind a recorded call target to a project function, if possible."""
        if target is None:
            return None
        if target.startswith("@method:"):
            candidates = self._method_index.get(target[len("@method:"):], [])
            return candidates[0] if len(candidates) == 1 else None
        for _ in range(_MAX_REEXPORT_HOPS):
            if target in self.functions:
                return target
            if target in self.classes:
                init = f"{target}.__init__"
                return init if init in self.functions else None
            prefix = self._longest_module_prefix(target)
            if prefix is None:
                return None
            remainder = target[len(prefix) + 1:]
            if not remainder:
                return None  # a bare module reference, not a call target
            leaf, _, rest = remainder.partition(".")
            imports = self.modules[prefix].imports
            if leaf in imports:
                target = imports[leaf] + (f".{rest}" if rest else "")
                continue
            return None
        return None

    def _longest_module_prefix(self, dotted: str) -> str | None:
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                return prefix
        return None

    # ---------------------------------------------------------- reachability
    def reachable(
        self,
        starts: Iterable[str],
        skip_module: Callable[[str], bool] | None = None,
    ) -> dict[str, str | None]:
        """BFS forest from ``starts``: ``{reached qualname: predecessor}``.

        ``skip_module`` prunes traversal *into* functions of matching
        modules (their bodies are trusted boundaries, e.g. ``repro.obs``
        for the wall-clock rule).  Start nodes are never pruned.
        """
        forest: dict[str, str | None] = {}
        queue: deque[str] = deque()
        for start in starts:
            if start in self.functions and start not in forest:
                forest[start] = None
                queue.append(start)
        while queue:
            caller = queue.popleft()
            for callee, _site in self.edges.get(caller, ()):
                if callee in forest:
                    continue
                if skip_module is not None and skip_module(
                    self.fn_module[callee]
                ):
                    continue
                forest[callee] = caller
                queue.append(callee)
        return forest

    @staticmethod
    def call_path(forest: dict[str, str | None], node: str) -> list[str]:
        """The start→node symbol path recorded by :meth:`reachable`."""
        path = [node]
        seen = {node}
        while True:
            pred = forest.get(path[-1])
            if pred is None or pred in seen:
                break
            path.append(pred)
            seen.add(pred)
        return list(reversed(path))

    # -------------------------------------------------------------- queries
    def submit_sites(self):
        """Every executor submission: ``(module, function, SubmitSite)``."""
        for qualname, fn in sorted(self.functions.items()):
            for submit in fn.submits:
                yield self.fn_module[qualname], fn, submit

    def functions_of_module(self, module: str) -> list[str]:
        """Qualnames of the functions defined in ``module``, sorted."""
        return sorted(
            q for q, m in self.fn_module.items() if m == module
        )

    def rng_globals(self) -> dict[str, "str"]:
        """Project-wide shared generators: ``{fq name: defining module}``."""
        out: dict[str, str] = {}
        for module, summary in self.modules.items():
            for site in summary.module_rng:
                if site.name is not None:
                    out[site.name] = module
        return out


def build_call_graph(summaries: Iterable[ModuleSummary]) -> CallGraph:
    """Link summaries into a :class:`CallGraph` (thin named constructor)."""
    return CallGraph(summaries)
