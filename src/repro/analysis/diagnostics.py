"""The diagnostic record produced by lint rules.

A :class:`Diagnostic` pinpoints one violation: file, position, rule id and
message.  Its :meth:`Diagnostic.key` deliberately *excludes* the line
number so that baseline entries survive unrelated edits that shift code
up or down a file.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One rule violation at one source location.

    ``path`` is repository-relative with forward slashes, so diagnostics
    (and the baseline built from them) are portable across checkouts.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = field(default="error", compare=False)

    def key(self) -> str:
        """Stable identity for baseline matching (line-number free).

        Two violations of the same rule with the same message in the same
        file share a key; the baseline stores per-key *counts* so adding a
        second identical violation still fails the gate.
        """
        return f"{self.path}::{self.rule}::{self.message}"

    def format(self) -> str:
        """Render as ``path:line:col: RULE message`` (editor-clickable)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict:
        """Plain-dict form for the JSON reporter and golden fixtures."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "severity": self.severity,
        }

    @classmethod
    def from_json(cls, data: dict) -> "Diagnostic":
        """Inverse of :meth:`to_json`."""
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data["col"]),
            rule=str(data["rule"]),
            message=str(data["message"]),
            severity=str(data.get("severity", "error")),
        )
