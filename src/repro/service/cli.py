"""``repro serve`` — run the partition daemon from the command line.

Dispatched from :mod:`repro.cli` the same way ``lint`` and ``profile``
are: this module owns its own argparse surface so the experiment parser
stays free of daemon flags.  The store resolution mirrors the experiment
CLI (``$REPRO_CACHE_DIR`` / ``~/.cache/repro`` by default, ``--no-cache``
to disable, ``--cache-dir`` to relocate).
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.service.http import serve
from repro.store import ResultStore, default_store


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Serve partition queries over HTTP: POST /partition "
            "(platform spec + problem size -> allocation JSON), "
            "GET /metrics, GET /healthz."
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8432,
        help="listen port (default: 8432; 0 picks a free port)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        metavar="N",
        help="solve-pool threads for model builds and partition solves",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the artifact store: every model build is cold",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="artifact store root (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.no_cache:
        store = None
    elif args.cache_dir:
        store = ResultStore(args.cache_dir)
    else:
        store = default_store()
    try:
        asyncio.run(
            serve(
                host=args.host,
                port=args.port,
                workers=args.workers,
                store=store,
            )
        )
    except KeyboardInterrupt:
        # asyncio.run usually absorbs the ^C by cancelling the main task
        # (serve exits cleanly); this only triggers on a second ^C
        pass
    print("repro partition service stopped")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
