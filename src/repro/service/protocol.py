"""Request/response schemas of the partition service's wire protocol.

One request shape covers the service's workload (``POST /partition``)::

    {
      "preset": "ig_icl",              # or "node": {<NodeSpec JSON>}
      "total_blocks": 1600.0,
      "strategy": "fpm",               # fpm | geometric | cpm | homogeneous | even
      "model": {                       # optional model-building knobs
        "seed": 42, "noise_sigma": 0.02, "gpu_version": 3,
        "max_blocks": 6500.0, "cpu_points": 12, "gpu_points": 16,
        "adaptive": true
      },
      "solver": {                      # optional FPM solver knobs
        "tolerance": 1e-12, "max_iters": 200
      },
      "hierarchy": {                   # optional: a cluster of identical nodes
        "nodes": 16, "aggregate_samples": 24
      },
      "drift": {                       # optional: time-varying device speed
        "spec": "throttle:GTX680:t0=2,tau=10,floor=0.5",
        "at_s": 30.0, "seed": 42
      }
    }

With a ``hierarchy`` block the service treats the platform spec as one
node of a homogeneous cluster ``nodes`` wide and answers with the
two-level solve (per-node block counts plus per-unit allocations inside
each node); ``total_blocks`` must then be a whole number and the
strategy must be ``fpm``.

With a ``drift`` block the service answers for the platform *as it is
at* ``at_s`` seconds into a run under the given time-varying speed spec
(:func:`repro.platform.drift.parse_drift_spec` grammar): each unit's
speed function is scaled by its deterministic drift multiplier before
the solve.  Drift composes with any flat strategy but not with
``hierarchy`` (the aggregate node FPM has no per-unit identity to
drift).

Validation is strict and total: malformed JSON, unknown fields (at any
nesting depth of the spec), missing/extra platform descriptions, bad
numbers and bad enum values all raise :class:`ProtocolError` carrying an
HTTP status and a structured ``{"error": {...}}`` payload — the service
maps every one to a 4xx response, never a 500.  A request that parses is
a frozen :class:`PartitionRequest` whose :meth:`~PartitionRequest.model_key`
is the content address of its FPM build (node + every model knob, hashed
with the store's canonical-JSON digest), which is exactly the key the
service coalesces concurrent builds on.
"""

from __future__ import annotations

import dataclasses
import json
import math
import types
import typing
from dataclasses import dataclass
from typing import Any

from repro.core.solver import FPM_MAX_ITERS, FPM_TOLERANCE, SolverOptions
from repro.platform.drift import parse_drift_spec
from repro.platform.presets import cpu_only_node, ig_icl_node
from repro.platform.spec import NodeSpec
from repro.store import digest_key, node_key
from repro.util.serde import from_jsonable

#: Named platform presets a request may use instead of an inline spec.
PRESETS = {
    "ig_icl": ig_icl_node,
    "cpu_only": cpu_only_node,
}

#: Partitioning strategies the service accepts (``repro.api.Solver``'s,
#: plus the historical ``homogeneous`` alias of ``even``).
STRATEGIES = ("fpm", "geometric", "cpm", "homogeneous", "even")

#: Model-building knobs: name -> (expected type family, default).
_MODEL_FIELDS = {
    "seed": (int, 42),
    "noise_sigma": (float, 0.02),
    "gpu_version": (int, 3),
    "max_blocks": (float, 6500.0),
    "cpu_points": (int, 12),
    "gpu_points": (int, 16),
    "adaptive": (bool, True),
}

#: FPM solver knobs: name -> (expected type family, default).
_SOLVER_FIELDS = {
    "tolerance": (float, FPM_TOLERANCE),
    "max_iters": (int, FPM_MAX_ITERS),
}

#: Hierarchy knobs; ``nodes`` has no default — its presence in the
#: request is what switches the answer to the two-level solve.
_HIERARCHY_FIELDS = {
    "nodes": (int, None),
    "aggregate_samples": (int, 24),
}

#: Drift knobs; ``spec`` has no default — its presence in the request is
#: what switches the solve to the drifted speed functions.
_DRIFT_FIELDS = {
    "spec": (str, None),
    "at_s": (float, 0.0),
    "seed": (int, 42),
}

_TOP_FIELDS = (
    "node", "preset", "total_blocks", "strategy", "model", "solver",
    "hierarchy", "drift",
)


class ProtocolError(Exception):
    """A client error with an HTTP status and a structured payload."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message

    def payload(self) -> dict:
        """The JSON body a 4xx response carries."""
        return {"error": {"code": self.code, "message": self.message}}


@dataclass(frozen=True)
class PartitionRequest:
    """A validated partition query: platform spec, size, strategy, knobs."""

    node: NodeSpec
    total_blocks: float
    strategy: str = "fpm"
    seed: int = 42
    noise_sigma: float = 0.02
    gpu_version: int = 3
    max_blocks: float = 6500.0
    cpu_points: int = 12
    gpu_points: int = 16
    adaptive: bool = True
    tolerance: float = FPM_TOLERANCE
    max_iters: int = FPM_MAX_ITERS
    hierarchy_nodes: int = 0  # 0 = flat (single-node) solve
    aggregate_samples: int = 24
    drift_spec: str | None = None  # None = stationary platform
    drift_at_s: float = 0.0
    drift_seed: int = 42

    def model_key(self) -> str:
        """The content address of this request's FPM build.

        Everything that shapes the *models* participates — the node and
        each model knob — while ``total_blocks`` and ``strategy`` do
        not: requests that differ only in size or algorithm share one
        build, which is what makes coalescing them worthwhile.
        """
        return digest_key(
            "partition",
            {
                "artifact": "service-models",
                "node": node_key(self.node),
                "seed": self.seed,
                "noise_sigma": self.noise_sigma,
                "gpu_version": self.gpu_version,
                "max_blocks": self.max_blocks,
                "cpu_points": self.cpu_points,
                "gpu_points": self.gpu_points,
                "adaptive": self.adaptive,
            },
        )

    def answer_key(self) -> str:
        """The content address of the full answer.

        Everything the solve depends on participates: the model build,
        the size and strategy, the solver knobs, and the hierarchy
        shape — requests differing in any of them must not share a
        cached answer.
        """
        return digest_key(
            "partition",
            {
                "artifact": "service-answer",
                "models": self.model_key(),
                "total_blocks": self.total_blocks,
                "strategy": self.strategy,
                "tolerance": self.tolerance,
                "max_iters": self.max_iters,
                "hierarchy_nodes": self.hierarchy_nodes,
                "aggregate_samples": self.aggregate_samples,
                "drift_spec": self.drift_spec,
                "drift_at_s": self.drift_at_s,
                "drift_seed": self.drift_seed,
            },
        )

    def solver_options(self) -> SolverOptions:
        """The validated :class:`repro.core.solver.SolverOptions`."""
        return SolverOptions(
            strategy=self.strategy,
            hierarchy=self.hierarchy_nodes > 0,
            tolerance=self.tolerance,
            max_iters=self.max_iters,
            aggregate_samples=self.aggregate_samples,
        )

    def model_kwargs(self) -> dict[str, Any]:
        """Keyword arguments for :func:`repro.api.build_models`."""
        return {
            "node": self.node,
            "seed": self.seed,
            "noise_sigma": self.noise_sigma,
            "gpu_version": self.gpu_version,
            "max_blocks": self.max_blocks,
            "cpu_points": self.cpu_points,
            "gpu_points": self.gpu_points,
            "adaptive": self.adaptive,
        }


def parse_partition_request(body: bytes | str) -> PartitionRequest:
    """Parse and validate a ``POST /partition`` body.

    Raises :class:`ProtocolError` (status 400) on any defect; never lets
    a malformed body escape as an uncontrolled exception.
    """
    if isinstance(body, bytes):
        try:
            body = body.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(400, "bad-encoding", f"body is not UTF-8: {exc}")
    try:
        data = json.loads(body or "null")
    except json.JSONDecodeError as exc:
        raise ProtocolError(400, "bad-json", f"body is not valid JSON: {exc}")
    if not isinstance(data, dict):
        raise ProtocolError(
            400, "bad-json", f"request must be a JSON object, got {_kind(data)}"
        )
    unknown = sorted(set(data) - set(_TOP_FIELDS))
    if unknown:
        raise ProtocolError(
            400, "unknown-field", f"unknown request field(s): {', '.join(unknown)}"
        )

    node = _parse_node(data)
    total_blocks = _require_number(
        data, "total_blocks", minimum_exclusive=0.0
    )
    strategy = data.get("strategy", "fpm")
    if strategy not in STRATEGIES:
        raise ProtocolError(
            400,
            "bad-strategy",
            f"unknown strategy {strategy!r}; expected one of {', '.join(STRATEGIES)}",
        )
    knobs = _parse_knob_block(data.get("model", {}), "model", _MODEL_FIELDS)
    solver = _parse_knob_block(data.get("solver", {}), "solver", _SOLVER_FIELDS)
    if solver["tolerance"] <= 0.0:
        raise ProtocolError(400, "bad-solver-knob", "solver.tolerance must be > 0")
    if solver["max_iters"] < 1:
        raise ProtocolError(400, "bad-solver-knob", "solver.max_iters must be >= 1")

    hierarchy_nodes = 0
    aggregate_samples = _HIERARCHY_FIELDS["aggregate_samples"][1]
    if "hierarchy" in data:
        hier = _parse_knob_block(data["hierarchy"], "hierarchy", _HIERARCHY_FIELDS)
        if hier["nodes"] is None:
            raise ProtocolError(
                400, "bad-hierarchy-knob", "hierarchy.nodes is required"
            )
        if hier["nodes"] < 1:
            raise ProtocolError(
                400, "bad-hierarchy-knob", "hierarchy.nodes must be >= 1"
            )
        if hier["aggregate_samples"] < 1:
            raise ProtocolError(
                400, "bad-hierarchy-knob", "hierarchy.aggregate_samples must be >= 1"
            )
        if strategy != "fpm":
            raise ProtocolError(
                400,
                "bad-hierarchy-knob",
                f"hierarchical partitioning requires strategy 'fpm', "
                f"got {strategy!r}",
            )
        if total_blocks != int(total_blocks):
            raise ProtocolError(
                400,
                "bad-number",
                "total_blocks must be a whole number of blocks for "
                "hierarchical requests",
            )
        hierarchy_nodes = hier["nodes"]
        aggregate_samples = hier["aggregate_samples"]

    drift_spec = None
    drift_at_s = _DRIFT_FIELDS["at_s"][1]
    drift_seed = _DRIFT_FIELDS["seed"][1]
    if "drift" in data:
        block = _parse_knob_block(data["drift"], "drift", _DRIFT_FIELDS)
        if block["spec"] is None:
            raise ProtocolError(400, "bad-drift-knob", "drift.spec is required")
        try:
            parse_drift_spec(block["spec"])  # fail fast on bad grammar
        except ValueError as exc:
            raise ProtocolError(400, "bad-drift-knob", f"bad drift.spec: {exc}")
        if block["at_s"] < 0.0:
            raise ProtocolError(400, "bad-drift-knob", "drift.at_s must be >= 0")
        if hierarchy_nodes > 0:
            raise ProtocolError(
                400,
                "bad-drift-knob",
                "drift does not compose with hierarchical partitioning: "
                "the aggregate node FPM has no per-unit identity to drift",
            )
        drift_spec = block["spec"]
        drift_at_s = block["at_s"]
        drift_seed = block["seed"]

    try:
        return PartitionRequest(
            node=node,
            total_blocks=total_blocks,
            strategy=strategy,
            hierarchy_nodes=hierarchy_nodes,
            aggregate_samples=aggregate_samples,
            drift_spec=drift_spec,
            drift_at_s=drift_at_s,
            drift_seed=drift_seed,
            **knobs,
            **solver,
        )
    except (ValueError, TypeError) as exc:
        raise ProtocolError(400, "bad-model-knob", str(exc))


# ------------------------------------------------------------------ internals
def _kind(value: Any) -> str:
    return type(value).__name__


def _parse_node(data: dict) -> NodeSpec:
    has_node = "node" in data
    has_preset = "preset" in data
    if has_node == has_preset:
        raise ProtocolError(
            400,
            "bad-platform",
            "exactly one of 'node' (inline spec) or 'preset' is required",
        )
    if has_preset:
        preset = data["preset"]
        factory = PRESETS.get(preset)
        if factory is None:
            raise ProtocolError(
                400,
                "bad-platform",
                f"unknown preset {preset!r}; expected one of "
                f"{', '.join(sorted(PRESETS))}",
            )
        return factory()
    spec = data["node"]
    if not isinstance(spec, dict):
        raise ProtocolError(
            400, "bad-platform", f"'node' must be a JSON object, got {_kind(spec)}"
        )
    unknown = unknown_spec_fields(NodeSpec, spec)
    if unknown:
        raise ProtocolError(
            400,
            "unknown-field",
            f"unknown platform spec field(s): {', '.join(unknown)}",
        )
    try:
        return from_jsonable(NodeSpec, spec)
    except (ValueError, TypeError, KeyError) as exc:
        raise ProtocolError(400, "bad-platform", f"invalid platform spec: {exc}")


def _require_number(
    data: dict, field: str, *, minimum_exclusive: float | None = None
) -> float:
    if field not in data:
        raise ProtocolError(400, "missing-field", f"required field {field!r} missing")
    value = data[field]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(
            400, "bad-number", f"{field} must be a number, got {_kind(value)}"
        )
    value = float(value)
    if not math.isfinite(value):
        raise ProtocolError(400, "bad-number", f"{field} must be finite")
    if minimum_exclusive is not None and value <= minimum_exclusive:
        raise ProtocolError(
            400, "bad-number", f"{field} must be > {minimum_exclusive:g}"
        )
    return value


def _parse_knob_block(raw: Any, block: str, fields: dict) -> dict[str, Any]:
    """Validate one optional typed-knob block (``model``/``solver``/...).

    Unknown keys are reported by dotted path (``solver.tolerence``) under
    the shared ``unknown-field`` code; type defects carry the block's own
    ``bad-<block>-knob`` code.
    """
    code = f"bad-{block}-knob"
    if not isinstance(raw, dict):
        raise ProtocolError(
            400, code, f"{block!r} must be a JSON object, got {_kind(raw)}"
        )
    unknown = sorted(set(raw) - set(fields))
    if unknown:
        raise ProtocolError(
            400,
            "unknown-field",
            f"unknown request field(s): "
            f"{', '.join(f'{block}.{name}' for name in unknown)}",
        )
    knobs: dict[str, Any] = {}
    for name, (family, default) in fields.items():
        if name not in raw:
            knobs[name] = default
            continue
        value = raw[name]
        if family is bool:
            if not isinstance(value, bool):
                raise ProtocolError(
                    400, code, f"{block}.{name} must be a boolean"
                )
        elif family is str:
            if not isinstance(value, str):
                raise ProtocolError(
                    400, code, f"{block}.{name} must be a string"
                )
        elif family is int:
            if isinstance(value, bool) or not isinstance(value, int):
                raise ProtocolError(
                    400, code, f"{block}.{name} must be an integer"
                )
        else:  # float family accepts ints
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ProtocolError(
                    400, code, f"{block}.{name} must be a number"
                )
            value = float(value)
            if not math.isfinite(value):
                raise ProtocolError(
                    400, code, f"{block}.{name} must be finite"
                )
        knobs[name] = value
    return knobs


def unknown_spec_fields(cls: type, data: Any, prefix: str = "") -> list[str]:
    """Dotted paths of keys ``data`` carries that dataclass ``cls`` lacks.

    Walks the nested spec structure the way :func:`repro.util.serde`
    decodes it (dataclasses, tuples, lists, optionals), so a typo three
    levels down — ``gpus[0].gpu.peak_glfops`` — is reported instead of
    silently dropped by the lenient decoder.
    """
    if not dataclasses.is_dataclass(cls) or not isinstance(data, dict):
        return []
    hints = typing.get_type_hints(cls)
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = [f"{prefix}{key}" for key in sorted(set(data) - known)]
    for field in dataclasses.fields(cls):
        if field.name not in data:
            continue
        unknown.extend(
            _unknown_in_hint(
                hints.get(field.name, Any),
                data[field.name],
                f"{prefix}{field.name}.",
            )
        )
    return unknown


def _unknown_in_hint(hint: Any, data: Any, prefix: str) -> list[str]:
    origin = typing.get_origin(hint)
    if origin is None:
        return unknown_spec_fields(hint, data, prefix)
    args = typing.get_args(hint)
    if origin in (typing.Union, types.UnionType):
        out: list[str] = []
        for arg in args:
            if arg is type(None):
                continue
            out.extend(_unknown_in_hint(arg, data, prefix))
        return out
    if origin in (tuple, list) and isinstance(data, (list, tuple)):
        if origin is tuple and args and args[-1] is not Ellipsis:
            pairs = list(zip(args, data))
        else:
            inner = args[0] if args else Any
            pairs = [(inner, item) for item in data]
        out = []
        for index, (inner, item) in enumerate(pairs):
            out.extend(
                _unknown_in_hint(inner, item, f"{prefix[:-1]}[{index}].")
            )
        return out
    return []
