"""Deterministic synthetic load for the partition service.

The generator builds a *schedule* — every request each simulated client
will send, fully materialised before anything runs — from one integer
seed, then replays it with real concurrency (one asyncio task per
client) against either the in-process service or a TCP endpoint.
Platform specs are drawn zipf-distributed from a synthetic pool, so a
few hot specs dominate (the warm path) while the tail stays cold — the
cache-hit regime the ROADMAP's service item targets.

Determinism is a hard contract, mirroring the repository's REP001 rule:
the schedule and every deterministic summary field are pure functions of
``(seed, config)``.  The config therefore *refuses* anything but a plain
integer seed — passing ``None`` or a float (the classic
``time.time()``-derived seed) raises instead of silently breaking
reproducibility.  Latency and throughput are measured through the
sanctioned wall-clock boundary (:func:`repro.obs.wall_clock_s`) and kept
out of the deterministic summary.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.obs import wall_clock_s
from repro.platform.spec import (
    CpuSpec,
    GpuAttachment,
    GpuSpec,
    NodeSpec,
    SocketSpec,
)
from repro.service.core import PartitionService
from repro.store import canonical_json
from repro.util.rng import RngStream
from repro.util.serde import to_jsonable
from repro.util.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class LoadgenConfig:
    """Everything that shapes a load run; hashable, validated, seed-pure."""

    seed: int
    clients: int = 100
    requests_per_client: int = 5
    spec_pool: int = 8
    zipf_exponent: float = 1.2
    strategy: str = "fpm"
    total_blocks_choices: tuple[float, ...] = (400.0, 900.0, 1600.0)
    #: model knobs forwarded in every request (coarse = fast builds)
    noise_sigma: float = 0.01
    cpu_points: int = 5
    gpu_points: int = 6
    adaptive: bool = False
    max_blocks: float = 1800.0

    def __post_init__(self) -> None:
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise TypeError(
                f"seed must be a plain integer, got {type(self.seed).__name__}; "
                "wall-clock-derived seeds (None/float) are refused so load "
                "runs stay reproducible (REP001)"
            )
        check_positive_int("clients", self.clients)
        check_positive_int("requests_per_client", self.requests_per_client)
        check_positive_int("spec_pool", self.spec_pool)
        check_positive("zipf_exponent", self.zipf_exponent)
        if not self.total_blocks_choices:
            raise ValueError("total_blocks_choices must not be empty")


@dataclass(frozen=True)
class LoadSummary:
    """The outcome of one load run.

    ``deterministic()`` exposes the seed-pure part — request counts,
    status counts and the digests of the schedule and of every
    allocation — which two runs with one ``(seed, config)`` must
    reproduce bit-identically.  Latency percentiles and throughput are
    wall-clock measurements and deliberately excluded.
    """

    requests_total: int
    ok: int
    client_errors: int
    server_errors: int
    dropped: int
    source_counts: dict[str, int]
    schedule_digest: str
    responses_digest: str
    latency_p50_s: float
    latency_p99_s: float
    latency_max_s: float
    duration_s: float
    throughput_rps: float

    def deterministic(self) -> dict[str, Any]:
        """The seed-pure summary fields (identical across reruns)."""
        return {
            "requests_total": self.requests_total,
            "ok": self.ok,
            "client_errors": self.client_errors,
            "server_errors": self.server_errors,
            "dropped": self.dropped,
            "schedule_digest": self.schedule_digest,
            "responses_digest": self.responses_digest,
        }


def spec_pool(config: LoadgenConfig) -> list[NodeSpec]:
    """The synthetic platform population, derived purely from the seed.

    Each spec varies socket count, cores, core speed, contention and GPU
    attachment, so distinct pool entries hash to distinct model keys —
    pool index 0 is the zipf head, the tail exercises cold builds.
    """
    specs = []
    for index in range(config.spec_pool):
        stream = RngStream(config.seed, ("loadgen", "spec", str(index)))
        cores = 4 + stream.integers(0, 5)
        cpu = CpuSpec(
            name=f"synthetic-cpu-{index}",
            clock_ghz=round(2.0 + stream.uniform(0.0, 1.5), 3),
            peak_gflops=round(12.0 + stream.uniform(0.0, 18.0), 3),
        )
        socket = SocketSpec(
            cpu=cpu,
            cores=cores,
            memory_gb=16.0,
            contention_alpha=round(0.02 + stream.uniform(0.0, 0.06), 4),
        )
        gpus: tuple[GpuAttachment, ...] = ()
        if stream.uniform() < 0.5:
            gpu = GpuSpec(
                name=f"synthetic-gpu-{index}",
                clock_mhz=round(600.0 + stream.uniform(0.0, 700.0), 1),
                cuda_cores=256 * (1 + stream.integers(0, 8)),
                memory_mb=1024.0,
                mem_bandwidth_gbs=round(80.0 + stream.uniform(0.0, 160.0), 2),
                peak_gflops=round(300.0 + stream.uniform(0.0, 900.0), 2),
            )
            gpus = (GpuAttachment(gpu=gpu, socket_index=0),)
        specs.append(
            NodeSpec(
                name=f"synthetic-node-{index}",
                socket=socket,
                num_sockets=1 + stream.integers(0, 2),
                gpus=gpus,
            )
        )
    return specs


def zipf_weights(count: int, exponent: float) -> list[float]:
    """Normalised zipf probabilities for ranks ``1..count``."""
    raw = [1.0 / (rank**exponent) for rank in range(1, count + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def build_schedule(config: LoadgenConfig) -> list[list[dict]]:
    """Every client's request bodies, materialised and seed-pure."""
    pool = [to_jsonable(spec) for spec in spec_pool(config)]
    weights = zipf_weights(config.spec_pool, config.zipf_exponent)
    schedule: list[list[dict]] = []
    for client in range(config.clients):
        stream = RngStream(config.seed, ("loadgen", "client", str(client)))
        chooser = stream.generator
        spec_indices = chooser.choice(
            config.spec_pool, size=config.requests_per_client, p=weights
        )
        requests = []
        for spec_index in spec_indices:
            total = config.total_blocks_choices[
                stream.integers(0, len(config.total_blocks_choices))
            ]
            requests.append(
                {
                    "node": pool[int(spec_index)],
                    "total_blocks": total,
                    "strategy": config.strategy,
                    "model": {
                        "seed": config.seed,
                        "noise_sigma": config.noise_sigma,
                        "cpu_points": config.cpu_points,
                        "gpu_points": config.gpu_points,
                        "adaptive": config.adaptive,
                        "max_blocks": config.max_blocks,
                    },
                }
            )
        schedule.append(requests)
    return schedule


def schedule_digest(schedule: list[list[dict]]) -> str:
    """Content digest of a schedule (the determinism witness)."""
    h = hashlib.blake2b(digest_size=16)
    h.update(canonical_json(schedule).encode("utf-8"))
    return h.hexdigest()


class InProcessTransport:
    """Drive :meth:`PartitionService.handle` directly — no sockets.

    This is the load path the acceptance criteria measure: thousands of
    concurrent clients against the in-process server, bounded only by
    the service's own admission machinery.
    """

    def __init__(self, service: PartitionService):
        self.service = service

    async def post_partition(self, body: bytes) -> tuple[int, dict]:
        response = await self.service.handle("POST", "/partition", body)
        return response.status, response.json

    async def aclose(self) -> None:
        """Nothing to release."""


class TcpTransport:
    """One persistent HTTP/1.1 connection per client over real sockets."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def post_partition(self, body: bytes) -> tuple[int, dict]:
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        request = (
            f"POST /partition HTTP/1.1\r\nHost: {self.host}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode("latin-1") + body
        self._writer.write(request)
        await self._writer.drain()
        status_line = await self._reader.readline()
        status = int(status_line.split()[1])
        length = 0
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        payload = await self._reader.readexactly(length)
        return status, json.loads(payload.decode("utf-8"))

    async def aclose(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None


@dataclass
class _RunState:
    """Mutable tallies shared by the client tasks of one run."""

    ok: int = 0
    client_errors: int = 0
    server_errors: int = 0
    dropped: int = 0
    latencies_s: list[float] = field(default_factory=list)
    source_counts: dict[str, int] = field(default_factory=dict)
    #: (client, request index) -> canonical allocation record
    responses: dict[tuple[int, int], Any] = field(default_factory=dict)


async def run_load(
    config: LoadgenConfig,
    *,
    service: PartitionService | None = None,
    host: str | None = None,
    port: int | None = None,
) -> LoadSummary:
    """Replay the schedule with one concurrent task per client.

    Target either an in-process service (``service=...``) or a TCP
    endpoint (``host=``/``port=``).  Every request is accounted for:
    ``ok`` + ``client_errors`` + ``server_errors`` + ``dropped`` always
    equals the schedule size, and ``dropped`` counts transport-level
    failures (the load test's zero-drop criterion).
    """
    if (service is None) == (host is None or port is None):
        raise ValueError("pass exactly one target: service=, or host= and port=")
    schedule = build_schedule(config)
    state = _RunState()

    async def run_client(client_index: int, requests: list[dict]) -> None:
        if service is not None:
            transport: Any = InProcessTransport(service)
        else:
            transport = TcpTransport(host, port)
        try:
            for request_index, request in enumerate(requests):
                body = json.dumps(request).encode("utf-8")
                started_s = wall_clock_s()
                try:
                    status, payload = await transport.post_partition(body)
                except Exception:  # transport failure = a dropped request
                    state.dropped += 1
                    continue
                state.latencies_s.append(wall_clock_s() - started_s)
                if status == 200:
                    state.ok += 1
                    source = payload.get("source", "?")
                    state.source_counts[source] = (
                        state.source_counts.get(source, 0) + 1
                    )
                    state.responses[(client_index, request_index)] = {
                        "allocation": payload["allocation"],
                        "total_blocks": payload["total_blocks"],
                    }
                elif status < 500:
                    state.client_errors += 1
                else:
                    state.server_errors += 1
        finally:
            await transport.aclose()

    started_s = wall_clock_s()
    await asyncio.gather(
        *(run_client(i, reqs) for i, reqs in enumerate(schedule))
    )
    duration_s = max(wall_clock_s() - started_s, 1e-9)

    ordered = {
        f"{client}:{index}": record
        for (client, index), record in sorted(state.responses.items())
    }
    responses_hash = hashlib.blake2b(digest_size=16)
    responses_hash.update(canonical_json(ordered).encode("utf-8"))
    latencies = sorted(state.latencies_s)
    total = config.clients * config.requests_per_client
    return LoadSummary(
        requests_total=total,
        ok=state.ok,
        client_errors=state.client_errors,
        server_errors=state.server_errors,
        dropped=state.dropped,
        source_counts=dict(sorted(state.source_counts.items())),
        schedule_digest=schedule_digest(schedule),
        responses_digest=responses_hash.hexdigest(),
        latency_p50_s=_quantile(latencies, 0.50),
        latency_p99_s=_quantile(latencies, 0.99),
        latency_max_s=latencies[-1] if latencies else float("nan"),
        duration_s=duration_s,
        throughput_rps=len(latencies) / duration_s,
    )


def _quantile(ordered: Sequence[float], q: float) -> float:
    if not ordered:
        return float("nan")
    rank = q * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (rank - lo)
