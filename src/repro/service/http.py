"""A zero-dependency asyncio HTTP/1.1 shell around the partition service.

Hand-rolled on ``asyncio.start_server`` — no frameworks, stdlib only —
because the service's protocol surface is tiny: three routes, JSON
bodies, ``Content-Length`` framing, keep-alive.  The parser accepts one
request per loop iteration on a persistent connection, hands the
(method, target, body) triple to :meth:`PartitionService.handle`, and
writes the response back with explicit framing; anything malformed at
the HTTP layer is answered with a structured 400 and the connection is
closed.  Connection and in-flight gauges land on the service's tracer,
so ``/metrics`` also describes the transport.

:func:`serve` is the CLI's entry: start a server, print the address,
run until cancelled.
"""

from __future__ import annotations

import asyncio
import json

from repro.service.core import PartitionService, ServiceResponse

#: Hard cap on header block + body sizes (1 MiB each) — admission control.
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 1024 * 1024

_BAD_REQUEST = json.dumps(
    {"error": {"code": "bad-http", "message": "malformed HTTP request"}}
).encode("utf-8")

_TOO_LARGE = json.dumps(
    {"error": {"code": "too-large", "message": "request body too large"}}
).encode("utf-8")

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class HttpServer:
    """The listening socket plus per-connection request loops."""

    def __init__(
        self,
        service: PartitionService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None

    # ------------------------------------------------------------- lifecycle
    async def start(self) -> tuple[str, int]:
        """Bind and listen; returns the bound (host, port)."""
        await self.service.start()
        self._server = await asyncio.start_server(
            self._serve_connection,
            host=self.host,
            port=self.port,
            limit=MAX_HEADER_BYTES,
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def aclose(self) -> None:
        """Stop accepting, close the listener, release the service."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.aclose()

    async def __aenter__(self) -> "HttpServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    @property
    def address(self) -> str:
        """The server's base URL."""
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------- connection loop
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        tracer = self.service.tracer
        tracer.counter("service.connections").add()
        try:
            while True:
                request = await self._read_request(reader, writer)
                if request is None:
                    return
                method, target, headers, body = request
                response = await self.service.handle(method, target, body)
                keep_alive = headers.get("connection", "keep-alive") != "close"
                await self._write_response(writer, response, keep_alive)
                if not keep_alive:
                    return
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            TimeoutError,
        ):
            return  # peer went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ):
        """One framed request, or None when the connection should close."""
        try:
            request_line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            await self._reject(writer, 400, _BAD_REQUEST)
            return None
        if not request_line.strip():
            return None  # clean EOF between requests
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            await self._reject(writer, 400, _BAD_REQUEST)
            return None
        method, target, _version = parts
        headers: dict[str, str] = {}
        header_bytes = 0
        while True:
            line = await reader.readline()
            header_bytes += len(line)
            if header_bytes > MAX_HEADER_BYTES:
                await self._reject(writer, 400, _BAD_REQUEST)
                return None
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                await self._reject(writer, 400, _BAD_REQUEST)
                return None
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
            if length < 0:
                raise ValueError(length_text)
        except ValueError:
            await self._reject(writer, 400, _BAD_REQUEST)
            return None
        if length > MAX_BODY_BYTES:
            await self._reject(writer, 413, _TOO_LARGE)
            return None
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        response: ServiceResponse,
        keep_alive: bool,
    ) -> None:
        reason = _REASONS.get(response.status, "Unknown")
        head = [
            f"HTTP/1.1 {response.status} {reason}",
            f"Content-Type: {response.content_type}",
            f"Content-Length: {len(response.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in response.headers:
            head.append(f"{name}: {value}")
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + response.body
        )
        await writer.drain()

    async def _reject(
        self, writer: asyncio.StreamWriter, status: int, body: bytes
    ) -> None:
        self.service.tracer.counter("service.errors.http").add()
        await self._write_response(
            writer,
            ServiceResponse(status=status, body=body),
            keep_alive=False,
        )


async def serve(
    *,
    host: str = "127.0.0.1",
    port: int = 8432,
    workers: int = 4,
    store=None,
    ready: asyncio.Event | None = None,
) -> None:
    """Run the daemon until cancelled (the ``repro serve`` entry point)."""
    service = PartitionService(store=store, workers=workers)
    server = HttpServer(service, host=host, port=port)
    async with server:
        print(f"repro partition service listening on {server.address}")
        if ready is not None:
            ready.set()
        try:
            await asyncio.Event().wait()  # park forever; cancellation stops us
        except asyncio.CancelledError:
            pass
