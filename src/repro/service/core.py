"""The transport-independent heart of the partition service.

:class:`PartitionService` owns everything between "a request arrived"
and "here are the bytes of the response": admission, the three-level
cache (answer LRU → in-memory model-set LRU → the content-addressed
on-disk store), single-flight coalescing of concurrent FPM builds, the
worker thread pool the CPU-bound solves run on, and the observability
surface (`/metrics`, per-request spans, latency histograms).

The HTTP layer (:mod:`repro.service.http`) is a thin shell over
:meth:`PartitionService.handle`; tests and the load generator call
``handle`` directly — the *in-process server* — so the whole admission →
cache → solve → respond path is exercised without sockets.

Request lifecycle for ``POST /partition``::

    parse (protocol.py, strict 4xx on any defect)
      -> answer LRU hit?                      source="hot"
      -> model-set LRU hit?                   source="warm"   (solve only)
      -> build in flight for this model key?  source="coalesced" (await it)
      -> lead a single-flight build           source="built"
         (the build itself reads/writes the on-disk store, so a "built"
         response may still be disk-warm — the store.hit/miss counters
         say which)

Every response carries the model key, the source, and the solve's unit
allocations; every path records a ``service.request`` span and feeds the
``service.request_s`` / ``service.solve_s`` histograms.
"""

from __future__ import annotations

import asyncio
import json
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro import __version__, api
from repro.core.fpm import as_speed_function
from repro.obs import Tracer, set_tracer, wall_clock_s
from repro.platform.drift import DriftModel
from repro.service.protocol import (
    PartitionRequest,
    ProtocolError,
    parse_partition_request,
)
from repro.store import ResultStore, SingleFlight, use_store

#: Retained per-request spans; older ones are trimmed so a long-lived
#: daemon's trace memory stays bounded.
_MAX_REQUEST_SPANS = 1024

#: Histogram names the service feeds (exported via /metrics).
REQUEST_LATENCY = "service.request_s"
SOLVE_LATENCY = "service.solve_s"


@dataclass(frozen=True)
class ServiceResponse:
    """One HTTP-shaped reply: status, content type, body bytes."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: tuple[tuple[str, str], ...] = field(default=())

    @property
    def json(self) -> Any:
        """The body parsed as JSON (test convenience)."""
        return json.loads(self.body.decode("utf-8"))


def _json_response(status: int, payload: Any) -> ServiceResponse:
    body = json.dumps(payload, indent=1).encode("utf-8")
    return ServiceResponse(status=status, body=body)


class PartitionService:
    """Serves partition queries with batching, warm stores and metrics.

    Parameters
    ----------
    store:
        The content-addressed store backing FPM builds (None disables
        disk caching; the in-memory tiers still work).
    workers:
        Threads of the solve pool — the concurrency of *distinct* model
        builds and partition solves (requests themselves are unbounded:
        waiting on a coalesced build costs no thread).
    max_hot_models / max_hot_answers:
        Capacities of the in-memory LRUs for built model sets and for
        complete answers.
    tracer:
        The observability sink; the service installs it process-wide on
        :meth:`start` so store/measurement counters land in the same
        registry, and restores the previous tracer on :meth:`aclose`.
    """

    def __init__(
        self,
        *,
        store: ResultStore | None = None,
        workers: int = 4,
        max_hot_models: int = 128,
        max_hot_answers: int = 4096,
        tracer: Tracer | None = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.store = store
        self.tracer = tracer if tracer is not None else Tracer()
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-solve"
        )
        self._workers = workers
        self._flight = SingleFlight()
        self._hot_models: OrderedDict[str, dict] = OrderedDict()
        self._hot_answers: OrderedDict[str, dict] = OrderedDict()
        # Warm solver states of flat FPM solves, keyed by model key: a
        # repeat solve over the same model digest (any workload total)
        # goes through Solver.resolve and skips re-stacking the batch
        # representation.  Exact mode keeps responses bit-identical to
        # the cold solve, so every cache tier above stays oblivious.
        self._warm_solves: OrderedDict[str, Any] = OrderedDict()
        self._max_hot_models = max_hot_models
        self._max_hot_answers = max_hot_answers
        self._previous_tracer: Any = None
        self._started_s: float | None = None

    # ------------------------------------------------------------- lifecycle
    async def start(self) -> "PartitionService":
        """Install the service tracer and mark the start of uptime."""
        if self._started_s is None:
            self._previous_tracer = set_tracer(self.tracer)
            self._started_s = wall_clock_s()
        return self

    async def aclose(self) -> None:
        """Shut the solve pool down and restore the previous tracer."""
        if self._started_s is not None:
            set_tracer(self._previous_tracer)
            self._started_s = None
        self._executor.shutdown(wait=True, cancel_futures=True)

    async def __aenter__(self) -> "PartitionService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # ------------------------------------------------------------ dispatcher
    async def handle(
        self, method: str, target: str, body: bytes = b""
    ) -> ServiceResponse:
        """Route one request; the single entry point of every transport."""
        split = urlsplit(target)
        path = split.path
        started_s = wall_clock_s()
        try:
            if path == "/healthz":
                response = self._handle_healthz(method)
            elif path == "/metrics":
                response = self._handle_metrics(method, split.query)
            elif path == "/partition":
                response = await self._handle_partition(method, body)
            else:
                response = _json_response(
                    404,
                    {"error": {"code": "not-found", "message": f"no route {path!r}"}},
                )
        except ProtocolError as exc:
            self.tracer.counter("service.errors.client").add()
            response = _json_response(exc.status, exc.payload())
        except Exception as exc:  # noqa: BLE001 - the 500 boundary
            self.tracer.counter("service.errors.internal").add()
            response = _json_response(
                500,
                {"error": {"code": "internal", "message": f"{type(exc).__name__}: {exc}"}},
            )
        elapsed_s = wall_clock_s() - started_s
        self._observe_request(path, method, response.status, elapsed_s)
        return response

    # ------------------------------------------------------------- endpoints
    def _handle_healthz(self, method: str) -> ServiceResponse:
        _require_method(method, "GET")
        uptime_s = (
            wall_clock_s() - self._started_s if self._started_s is not None else 0.0
        )
        return _json_response(
            200,
            {
                "status": "ok",
                "version": __version__,
                "uptime_s": round(uptime_s, 3),
                "workers": self._workers,
                "hot_models": len(self._hot_models),
                "hot_answers": len(self._hot_answers),
                "inflight_builds": self._flight.inflight,
            },
        )

    def _handle_metrics(self, method: str, query: str) -> ServiceResponse:
        _require_method(method, "GET")
        fmt = parse_qs(query).get("format", ["json"])[-1]
        if fmt in ("prometheus", "prom", "text"):
            return ServiceResponse(
                status=200,
                body=self.prometheus_metrics().encode("utf-8"),
                content_type="text/plain; version=0.0.4",
            )
        if fmt != "json":
            raise ProtocolError(
                400, "bad-format", f"unknown metrics format {fmt!r}"
            )
        return _json_response(200, self.metrics_snapshot())

    async def _handle_partition(self, method: str, body: bytes) -> ServiceResponse:
        _require_method(method, "POST")
        request = parse_partition_request(body)
        solve_started_s = wall_clock_s()
        answer = await self._answer(request)
        self.tracer.histogram(SOLVE_LATENCY).observe(
            wall_clock_s() - solve_started_s
        )
        return _json_response(200, answer)

    # ------------------------------------------------------- the cache tiers
    async def _answer(self, request: PartitionRequest) -> dict:
        answer_key = request.answer_key()
        cached = self._lru_get(self._hot_answers, answer_key)
        if cached is not None:
            self.tracer.counter("service.partition.hot").add()
            return {**cached, "source": "hot"}

        model_key = request.model_key()
        models, source = await self._models_for(model_key, request)
        solver = api.Solver(request.solver_options())
        if request.hierarchy_nodes > 0:
            # a homogeneous cluster of identical nodes built from the
            # request's platform spec; the solver dedupes internally
            cluster = [list(models.values())] * request.hierarchy_nodes
            result = await self._run_solve(solver.solve, cluster, int(request.total_blocks))
            tree = result.hierarchy
            answer = {
                "allocation": {
                    f"node{i}.{name}": alloc
                    for i, node in enumerate(tree.unit_allocations)
                    for name, alloc in zip(models.keys(), node)
                },
                "node_allocations": list(tree.node_allocations),
                "nodes": request.hierarchy_nodes,
                "units": list(models.keys()),
                "total_blocks": request.total_blocks,
                "strategy": request.strategy,
                "model_key": model_key,
            }
        else:
            funcs = list(models.values())
            multipliers = None
            if request.drift_spec is not None:
                # Answer for the platform as it is at at_s: scale each
                # unit's speed function by its deterministic drift
                # multiplier before the solve.
                drift = DriftModel.from_spec(
                    request.drift_spec, seed=request.drift_seed
                )
                multipliers = {
                    name: drift.speed_multiplier(name, request.drift_at_s)
                    for name in models
                }
                funcs = [
                    as_speed_function(m).scaled(multipliers[name])
                    if multipliers[name] != 1.0
                    else m
                    for name, m in models.items()
                ]
                self.tracer.counter("service.partition.drifted").add()
            result = None
            # the warm chain caches the STATIONARY models' solver state;
            # drift-scaled functions must neither read nor seed it
            if request.strategy == "fpm" and multipliers is None:
                previous = self._lru_get(self._warm_solves, model_key)
                if previous is not None:
                    result = await self._run_solve(
                        solver.resolve, previous, total=request.total_blocks
                    )
                    self.tracer.counter("service.partition.warm_resolve").add()
            if result is None:
                result = await self._run_solve(
                    solver.solve, funcs, request.total_blocks
                )
            if (
                request.strategy == "fpm"
                and multipliers is None
                and result.warm is not None
            ):
                self._lru_put(
                    self._warm_solves, model_key, result, self._max_hot_models
                )
            answer = {
                "allocation": dict(zip(models.keys(), result.allocations)),
                "units": list(models.keys()),
                "total_blocks": request.total_blocks,
                "strategy": request.strategy,
                "model_key": model_key,
            }
            if multipliers is not None:
                answer["drift"] = {
                    "spec": request.drift_spec,
                    "at_s": request.drift_at_s,
                    "multipliers": multipliers,
                }
        self._lru_put(self._hot_answers, answer_key, answer, self._max_hot_answers)
        self.tracer.counter(f"service.partition.{source}").add()
        return {**answer, "source": source}

    async def _models_for(
        self, model_key: str, request: PartitionRequest
    ) -> tuple[dict, str]:
        """The request's model set, by name in sorted order, plus its source."""
        models = self._lru_get(self._hot_models, model_key)
        if models is not None:
            return models, "warm"
        follower = self._flight.pending(model_key)

        async def build() -> dict:
            built = await self._run_solve(self._build_models_sync, request)
            ordered = {name: built[name] for name in sorted(built)}
            self._lru_put(
                self._hot_models, model_key, ordered, self._max_hot_models
            )
            return ordered

        models = await self._flight.run(model_key, build)
        return models, "coalesced" if follower else "built"

    def _build_models_sync(self, request: PartitionRequest) -> dict:
        # Runs on a solve thread: bind the service's store in this
        # thread's context so the FPM builder caches through it.
        with use_store(self.store):
            return api.build_models(**request.model_kwargs())

    async def _run_solve(self, fn, *args, **kwargs):
        """Run a CPU-bound step on the solve pool."""
        loop = asyncio.get_running_loop()
        if kwargs:
            return await loop.run_in_executor(
                self._executor, lambda: fn(*args, **kwargs)
            )
        return await loop.run_in_executor(self._executor, fn, *args)

    @staticmethod
    def _lru_get(lru: OrderedDict, key: str):
        found = lru.get(key)
        if found is not None:
            lru.move_to_end(key)
        return found

    @staticmethod
    def _lru_put(lru: OrderedDict, key: str, value, capacity: int) -> None:
        lru[key] = value
        lru.move_to_end(key)
        while len(lru) > capacity:
            lru.popitem(last=False)

    # ------------------------------------------------------------ observability
    def _observe_request(
        self, path: str, method: str, status: int, elapsed_s: float
    ) -> None:
        tracer = self.tracer
        tracer.counter("service.requests").add()
        tracer.counter(f"service.status.{status // 100}xx").add()
        tracer.histogram(REQUEST_LATENCY).observe(elapsed_s)
        tracer.record(
            "service.request",
            category="service",
            wall_duration_s=elapsed_s,
            path=path,
            method=method,
            status=status,
        )
        roots = tracer.roots
        if len(roots) > _MAX_REQUEST_SPANS:
            del roots[: len(roots) - _MAX_REQUEST_SPANS // 2]

    def metrics_snapshot(self) -> dict:
        """Counters, gauges and histogram summaries as one JSON object."""
        metrics = self.tracer.metrics
        histograms = {}
        for name, hist in metrics.histograms.items():
            histograms[name] = {
                "count": hist.count,
                "sum": hist.sum,
                "mean": None if hist.count == 0 else hist.mean,
                "p50": None if hist.count == 0 else hist.percentile(50),
                "p90": None if hist.count == 0 else hist.percentile(90),
                "p99": None if hist.count == 0 else hist.percentile(99),
            }
        return {
            "counters": {
                name: counter.value for name, counter in metrics.counters.items()
            },
            "gauges": {
                name: gauge.last for name, gauge in metrics.gauges.items()
            },
            "histograms": histograms,
        }

    def prometheus_metrics(self) -> str:
        """The same registry in the Prometheus text exposition format."""
        lines: list[str] = []
        metrics = self.tracer.metrics
        for name, counter in metrics.counters.items():
            prom = _prom_name(name) + "_total"
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {counter.value}")
        for name, gauge in metrics.gauges.items():
            prom = _prom_name(name)
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_prom_float(gauge.last)}")
        for name, hist in metrics.histograms.items():
            prom = _prom_name(name)
            lines.append(f"# TYPE {prom} histogram")
            for le, count in hist.cumulative_buckets():
                label = "+Inf" if le == float("inf") else f"{le:.6g}"
                lines.append(f'{prom}_bucket{{le="{label}"}} {count}')
            lines.append(f"{prom}_sum {_prom_float(hist.sum)}")
            lines.append(f"{prom}_count {hist.count}")
        return "\n".join(lines) + "\n"


def _require_method(method: str, expected: str) -> None:
    if method.upper() != expected:
        raise ProtocolError(
            405, "method-not-allowed", f"use {expected}, not {method.upper()}"
        )


def _prom_name(name: str) -> str:
    return "repro_" + name.replace(".", "_").replace("-", "_")


def _prom_float(value: float) -> str:
    if value != value:  # NaN gauges (no observation yet)
        return "NaN"
    return f"{value:.10g}"
