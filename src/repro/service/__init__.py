"""Partitioning-as-a-service: a long-lived asyncio daemon over the library.

The ROADMAP's "millions of users" direction made concrete: a
zero-dependency HTTP server (stdlib asyncio, hand-rolled HTTP/1.1) that
accepts partition requests — platform spec plus problem size in,
allocation JSON out — and makes the admission → cache → solve → respond
path measurable end to end:

* :mod:`repro.service.protocol` — strict request/response schemas; every
  malformed input is a structured 4xx, never a 500;
* :mod:`repro.service.core` — :class:`PartitionService`: answer/model
  LRUs over the content-addressed store, single-flight coalescing of
  concurrent FPM builds (N cold requests for one spec measure once), a
  solve thread pool, and the ``/metrics`` registry (JSON + Prometheus);
* :mod:`repro.service.http` — the asyncio transport with keep-alive and
  admission limits; ``repro serve --port --workers`` runs it;
* :mod:`repro.service.loadgen` — a deterministic, zipf-distributed
  synthetic load generator (thousands of concurrent simulated clients)
  whose summaries split seed-pure fields from wall-clock measurements.
"""

from repro.service.core import PartitionService, ServiceResponse
from repro.service.http import HttpServer, serve
from repro.service.loadgen import (
    LoadgenConfig,
    LoadSummary,
    build_schedule,
    run_load,
    spec_pool,
)
from repro.service.protocol import (
    PartitionRequest,
    ProtocolError,
    parse_partition_request,
)

__all__ = [
    "HttpServer",
    "LoadSummary",
    "LoadgenConfig",
    "PartitionRequest",
    "PartitionService",
    "ProtocolError",
    "ServiceResponse",
    "build_schedule",
    "parse_partition_request",
    "run_load",
    "serve",
    "spec_pool",
]
