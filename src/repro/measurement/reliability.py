"""Repeat-until-reliable measurement protocol (paper Section III, point iii).

"To ensure the reliability of the measurement, experiments are repeated
multiple times until the results are statistically reliable."  The standard
criterion (used by the authors' tooling): stop once the Student-t
confidence interval of the mean is within a requested fraction of the mean,
subject to minimum and maximum repetition counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.obs import get_tracer
from repro.platform.faults import KernelFaultError, RetryPolicy
from repro.util.stats import (
    RunningStats,
    first_reliable_prefix,
    relative_precision_cached,
)
from repro.util.validation import check_positive, check_positive_int, check_probability


@dataclass(frozen=True)
class ReliabilityCriterion:
    """Stopping rule for repeated measurements."""

    rel_err: float = 0.025
    confidence: float = 0.95
    min_repetitions: int = 5
    max_repetitions: int = 100

    def __post_init__(self) -> None:
        check_positive("rel_err", self.rel_err)
        check_probability("confidence", self.confidence)
        check_positive_int("min_repetitions", self.min_repetitions)
        check_positive_int("max_repetitions", self.max_repetitions)
        if self.max_repetitions < self.min_repetitions:
            raise ValueError(
                "max_repetitions must be >= min_repetitions "
                f"({self.max_repetitions} < {self.min_repetitions})"
            )


@dataclass(frozen=True)
class Measurement:
    """The outcome of a repeated measurement."""

    mean: float
    std: float
    repetitions: int
    rel_precision: float
    reliable: bool

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError("a measurement needs at least one repetition")


class _FaultLedger:
    """Per-measurement accounting of injected faults and retries."""

    __slots__ = ("faults", "retries", "backoff_s")

    def __init__(self) -> None:
        self.faults = 0
        self.retries = 0
        self.backoff_s = 0.0

    def flush(self, tracer, span) -> None:
        """Emit the fault counters/attributes (no-op when nothing faulted)."""
        if not tracer.enabled or self.faults == 0:
            return
        tracer.counter("measure.faults").add(self.faults)
        tracer.counter("measure.retries").add(self.retries)
        span.set_attr("faults", self.faults)
        span.set_attr("retries", self.retries)
        span.set_attr("backoff_s", self.backoff_s)


def _sample_with_retry(
    sample: Callable[..., float],
    rep: int,
    retry: RetryPolicy | None,
    ledger: _FaultLedger,
) -> float:
    """One repetition's timing, retrying injected kernel failures.

    Attempt 0 calls ``sample(rep)`` (the unmodified protocol); retries call
    ``sample(rep, attempt)`` so the timer keys the re-invocation under a
    fresh stream leaf.  The final failure propagates unchanged when the
    retry budget is exhausted (or no policy is given).
    """
    attempt = 0
    while True:
        try:
            if attempt == 0:
                return sample(rep)
            return sample(rep, attempt)
        except KernelFaultError:
            ledger.faults += 1
            if retry is None or attempt >= retry.max_retries:
                raise
            attempt += 1
            ledger.retries += 1
            ledger.backoff_s += retry.backoff_s(attempt)


def measure_until_reliable(
    sample: Callable[..., float],
    criterion: ReliabilityCriterion = ReliabilityCriterion(),
    retry: RetryPolicy | None = None,
) -> Measurement:
    """Repeat ``sample(repetition_index)`` until the criterion is met.

    Returns the sample statistics; ``reliable`` is False when the
    repetition budget ran out first (the result is still usable, as on a
    noisy real platform, but flagged).

    ``retry`` bounds recovery from injected
    :class:`~repro.platform.faults.KernelFaultError` failures: each failed
    invocation is retried as ``sample(rep, attempt)`` with exponential
    backoff until the policy's budget runs out, with ``measure.faults`` /
    ``measure.retries`` counters and span attributes recording what
    happened (flushed even when the final failure propagates).
    """
    tracer = get_tracer()
    with tracer.span("measure.reliable", category="measurement") as span:
        stats = RunningStats()
        ledger = _FaultLedger()
        try:
            for rep in range(criterion.max_repetitions):
                if tracer.enabled:
                    with tracer.span(
                        "measure.repetition", category="measurement", repetition=rep
                    ):
                        value = _sample_with_retry(sample, rep, retry, ledger)
                else:
                    value = _sample_with_retry(sample, rep, retry, ledger)
                if value < 0:
                    raise ValueError(f"negative timing {value} from repetition {rep}")
                stats.add(value)
                if (
                    stats.count >= criterion.min_repetitions
                    and stats.is_reliable(criterion.rel_err, criterion.confidence)
                ):
                    break
        finally:
            ledger.flush(tracer, span)
        rel_precision = stats.relative_precision(criterion.confidence)
        reliable = stats.is_reliable(criterion.rel_err, criterion.confidence)
        if tracer.enabled:
            # samples are accepted when their measurement converged, and
            # charged as rejected when the repetition budget ran out first
            kind = "accepted" if reliable else "rejected"
            tracer.counter(f"measure.samples.{kind}").add(stats.count)
            tracer.gauge("measure.ci_rel_width").set(rel_precision)
            span.set_attr("repetitions", stats.count)
            span.set_attr("reliable", reliable)
            span.set_attr("mean_s", stats.mean)
        return Measurement(
            mean=stats.mean,
            std=stats.std,
            repetitions=stats.count,
            rel_precision=rel_precision,
            reliable=reliable,
        )


def _absorb_chunk(
    stats: RunningStats,
    values: np.ndarray,
    start: int,
    criterion: ReliabilityCriterion,
    retry: RetryPolicy | None = None,
    sample: Callable[..., float] | None = None,
    ledger: _FaultLedger | None = None,
) -> bool:
    """Feed one drawn chunk into the accumulator; True when the rule fired.

    A negative timing only raises when the scalar loop would actually have
    reached it, i.e. when no earlier prefix of the chunk already stopped.
    A NaN marks an injected kernel failure at attempt 0; when the scalar
    loop would have reached it, the repetition is replayed through the
    scalar ``sample`` under the shared retry protocol, so the recovered
    value (or the final, propagated failure) is bit-identical to the
    scalar oracle's.
    """
    special = np.flatnonzero(np.isnan(values) | (values < 0))
    pos = 0
    for index in special:
        index = int(index)
        if first_reliable_prefix(
            stats,
            values[pos:index],
            criterion.rel_err,
            criterion.confidence,
            criterion.min_repetitions,
        ):
            return True
        rep = start + index
        if values[index] < 0:
            raise ValueError(
                f"negative timing {float(values[index])} from repetition {rep}"
            )
        if sample is None:
            raise KernelFaultError(
                "<batch>", 0, (f"r{rep}", "no scalar sample fallback")
            )
        value = _sample_with_retry(sample, rep, retry, ledger or _FaultLedger())
        if value < 0:
            raise ValueError(f"negative timing {value} from repetition {rep}")
        stats.add(value)
        if stats.count >= criterion.min_repetitions and stats.is_reliable(
            criterion.rel_err, criterion.confidence
        ):
            return True
        pos = index + 1
    return first_reliable_prefix(
        stats,
        values[pos:],
        criterion.rel_err,
        criterion.confidence,
        criterion.min_repetitions,
    )


def measure_until_reliable_batch(
    sample_batch: Callable[[int, int], np.ndarray],
    criterion: ReliabilityCriterion = ReliabilityCriterion(),
    retry: RetryPolicy | None = None,
    sample: Callable[..., float] | None = None,
) -> Measurement:
    """Array-based twin of :func:`measure_until_reliable`.

    ``sample_batch(start, count)`` returns the timings of repetitions
    ``start .. start + count - 1`` as one float array.  Repetitions are
    drawn in growing chunks (``min_repetitions``, then doubling, capped at
    the remaining budget) and the Student-t stopping rule is evaluated over
    the cumulative statistics of every prefix, so the protocol stops at the
    exact repetition the scalar loop would have — the returned
    ``Measurement`` is bit-identical to the oracle's.

    Fault protocol: NaN entries mark injected attempt-0 kernel failures;
    each one the scalar loop would reach is replayed through ``sample``
    (the scalar fallback) under ``retry``, reproducing the oracle's
    recovered values, counters and error messages exactly.

    Observability: one ``measure.chunk`` span per drawn chunk replaces the
    scalar path's per-repetition spans; the accepted/rejected counter
    totals, the fault/retry accounting, the CI-width gauge and the span
    attributes are unchanged.
    """
    tracer = get_tracer()
    with tracer.span("measure.reliable", category="measurement") as span:
        stats = RunningStats()
        ledger = _FaultLedger()
        stopped = False
        chunk = criterion.min_repetitions
        try:
            while not stopped and stats.count < criterion.max_repetitions:
                count = min(chunk, criterion.max_repetitions - stats.count)
                start = stats.count
                values = np.asarray(sample_batch(start, count), dtype=np.float64)
                if values.shape != (count,):
                    raise ValueError(
                        f"sample_batch({start}, {count}) returned shape {values.shape}"
                    )
                if tracer.enabled:
                    with tracer.span(
                        "measure.chunk",
                        category="measurement",
                        first_repetition=start,
                        repetitions=count,
                    ):
                        stopped = _absorb_chunk(
                            stats, values, start, criterion, retry, sample, ledger
                        )
                else:
                    stopped = _absorb_chunk(
                        stats, values, start, criterion, retry, sample, ledger
                    )
                chunk *= 2
        finally:
            ledger.flush(tracer, span)
        rel_precision = relative_precision_cached(stats, criterion.confidence)
        reliable = rel_precision <= criterion.rel_err
        if tracer.enabled:
            # same accounting as the scalar oracle: samples are accepted
            # when their measurement converged, rejected when the budget
            # ran out first
            kind = "accepted" if reliable else "rejected"
            tracer.counter(f"measure.samples.{kind}").add(stats.count)
            tracer.gauge("measure.ci_rel_width").set(rel_precision)
            span.set_attr("repetitions", stats.count)
            span.set_attr("reliable", reliable)
            span.set_attr("mean_s", stats.mean)
        return Measurement(
            mean=stats.mean,
            std=stats.std,
            repetitions=stats.count,
            rel_precision=rel_precision,
            reliable=reliable,
        )
