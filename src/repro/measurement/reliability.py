"""Repeat-until-reliable measurement protocol (paper Section III, point iii).

"To ensure the reliability of the measurement, experiments are repeated
multiple times until the results are statistically reliable."  The standard
criterion (used by the authors' tooling): stop once the Student-t
confidence interval of the mean is within a requested fraction of the mean,
subject to minimum and maximum repetition counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.obs import get_tracer
from repro.util.stats import RunningStats
from repro.util.validation import check_positive, check_positive_int, check_probability


@dataclass(frozen=True)
class ReliabilityCriterion:
    """Stopping rule for repeated measurements."""

    rel_err: float = 0.025
    confidence: float = 0.95
    min_repetitions: int = 5
    max_repetitions: int = 100

    def __post_init__(self) -> None:
        check_positive("rel_err", self.rel_err)
        check_probability("confidence", self.confidence)
        check_positive_int("min_repetitions", self.min_repetitions)
        check_positive_int("max_repetitions", self.max_repetitions)
        if self.max_repetitions < self.min_repetitions:
            raise ValueError(
                "max_repetitions must be >= min_repetitions "
                f"({self.max_repetitions} < {self.min_repetitions})"
            )


@dataclass(frozen=True)
class Measurement:
    """The outcome of a repeated measurement."""

    mean: float
    std: float
    repetitions: int
    rel_precision: float
    reliable: bool

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError("a measurement needs at least one repetition")


def measure_until_reliable(
    sample: Callable[[int], float],
    criterion: ReliabilityCriterion = ReliabilityCriterion(),
) -> Measurement:
    """Repeat ``sample(repetition_index)`` until the criterion is met.

    Returns the sample statistics; ``reliable`` is False when the
    repetition budget ran out first (the result is still usable, as on a
    noisy real platform, but flagged).
    """
    tracer = get_tracer()
    with tracer.span("measure.reliable", category="measurement") as span:
        stats = RunningStats()
        for rep in range(criterion.max_repetitions):
            if tracer.enabled:
                with tracer.span(
                    "measure.repetition", category="measurement", repetition=rep
                ):
                    value = sample(rep)
            else:
                value = sample(rep)
            if value < 0:
                raise ValueError(f"negative timing {value} from repetition {rep}")
            stats.add(value)
            if (
                stats.count >= criterion.min_repetitions
                and stats.is_reliable(criterion.rel_err, criterion.confidence)
            ):
                break
        rel_precision = stats.relative_precision(criterion.confidence)
        reliable = stats.is_reliable(criterion.rel_err, criterion.confidence)
        if tracer.enabled:
            # samples are accepted when their measurement converged, and
            # charged as rejected when the repetition budget ran out first
            kind = "accepted" if reliable else "rejected"
            tracer.counter(f"measure.samples.{kind}").add(stats.count)
            tracer.gauge("measure.ci_rel_width").set(rel_precision)
            span.set_attr("repetitions", stats.count)
            span.set_attr("reliable", reliable)
            span.set_attr("mean_s", stats.mean)
        return Measurement(
            mean=stats.mean,
            std=stats.std,
            repetitions=stats.count,
            rel_precision=rel_precision,
            reliable=reliable,
        )
