"""Building functional performance models from benchmark sweeps.

The FPM of a device is its empirical speed function: reliable kernel
timings over a grid of problem sizes (paper Section V).  The builder
supports fixed linear/geometric grids and an adaptive mode that inserts
midpoints where the piecewise-linear interpolation mispredicts the
measured speed — spending measurements where the curve actually bends
(around cache and device-memory boundaries).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.fpm import FunctionalPerformanceModel
from repro.core.serialization import fpm_from_dict, fpm_to_dict
from repro.core.speed_function import SpeedFunction, SpeedSample
from repro.kernels.interface import Kernel
from repro.measurement.benchmark import HybridBenchmark
from repro.obs import get_tracer
from repro.store import bench_key, get_store, kernel_key
from repro.util.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class SizeGrid:
    """A grid of problem sizes (b x b blocks) to sample a speed function on."""

    sizes: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ValueError("a size grid needs at least one size")
        for a, b in zip(self.sizes, self.sizes[1:]):
            if not 0 < a < b:
                raise ValueError(
                    f"grid sizes must be positive and strictly increasing "
                    f"(got {a} then {b})"
                )

    @classmethod
    def linear(cls, start: float, stop: float, count: int) -> "SizeGrid":
        """``count`` evenly spaced sizes across [start, stop]."""
        check_positive("start", start)
        check_positive_int("count", count)
        if count == 1:
            return cls((start,))
        if not stop > start:
            raise ValueError(f"stop ({stop}) must exceed start ({start})")
        step = (stop - start) / (count - 1)
        return cls(tuple(start + i * step for i in range(count)))

    @classmethod
    def geometric(cls, start: float, stop: float, count: int) -> "SizeGrid":
        """``count`` geometrically spaced sizes across [start, stop]."""
        check_positive("start", start)
        check_positive_int("count", count)
        if count == 1:
            return cls((start,))
        if not stop > start:
            raise ValueError(f"stop ({stop}) must exceed start ({start})")
        ratio = (stop / start) ** (1.0 / (count - 1))
        return cls(tuple(start * ratio**i for i in range(count)))

    def clamped(self, max_size: float) -> "SizeGrid":
        """Restrict the grid to a kernel's valid range.

        Points beyond ``max_size`` are dropped, and ``max_size`` itself is
        appended when the grid extended past it — a bounded model should
        know its speed right at the boundary (the device-capacity point).
        """
        kept = [s for s in self.sizes if s <= max_size]
        if not kept:
            raise ValueError(
                f"no grid point is within the valid range (max {max_size})"
            )
        if kept[-1] < max_size < self.sizes[-1]:
            kept.append(max_size)
        return SizeGrid(tuple(kept))


@dataclass
class FpmBuilder:
    """Builds FPMs by timing a kernel over a size grid.

    Adaptive refinement splits an interval when the measured midpoint
    deviates from the linear prediction by more than
    ``adaptive_tolerance`` — or when the endpoint speeds differ by more
    than ``adaptive_variation`` even if the midpoint happens to sit on
    the chord (a cliff-shaped curve can fool the chord test alone: the
    point just past the cliff lies near the straight line between the
    pre-cliff and far-past-cliff samples, yet the curve between them is
    nothing like that line).
    """

    bench: HybridBenchmark
    adaptive_tolerance: float = 0.05
    adaptive_variation: float = 1.5
    max_adaptive_rounds: int = 3
    min_interval: float = 1.0

    def build(
        self,
        kernel: Kernel,
        grid: SizeGrid,
        busy_cpu_cores: int = 0,
        name: str | None = None,
        bounded: bool | None = None,
        adaptive: bool = False,
    ) -> FunctionalPerformanceModel:
        """Measure the kernel across the grid and assemble its FPM.

        ``bounded`` defaults to whether the kernel itself has a finite
        valid range; ``adaptive`` enables midpoint refinement.

        When a store is active (:func:`repro.store.get_store`), the built
        model is cached under a digest of every input — benchmark
        identity, kernel, clamped grid, contention state and the
        builder's refinement knobs — and an identical later call replays
        it instead of re-measuring.
        """
        valid = kernel.valid_range
        if math.isfinite(valid.max_blocks):
            grid = grid.clamped(valid.max_blocks)

        store = get_store()
        key = None
        if store is not None:
            key = self._cache_key(kernel, grid, busy_cpu_cores, name, bounded, adaptive)
            cached = store.get("fpm", key)
            if cached is not None:
                return fpm_from_dict(cached)

        tracer = get_tracer()
        with tracer.span(
            "fpm.build",
            category="measurement",
            model=name or kernel.name,
            grid_points=len(grid.sizes),
            adaptive=adaptive,
        ) as span:
            grid_samples, reps_total = self._measure_samples(
                kernel, list(grid.sizes), busy_cpu_cores
            )
            samples: dict[float, SpeedSample] = dict(zip(grid.sizes, grid_samples))

            if adaptive:
                reps_total += self._refine(kernel, samples, busy_cpu_cores)

            ordered = [samples[k] for k in sorted(samples)]
            if tracer.enabled:
                span.set_attr("samples", len(ordered))
                span.set_attr("repetitions_total", reps_total)
                tracer.counter("fpm.models_built").add(1)
            fn = SpeedFunction(
                ordered,
                bounded=(
                    bounded
                    if bounded is not None
                    else math.isfinite(valid.max_blocks)
                ),
            )
            model = FunctionalPerformanceModel(
                name=name or kernel.name,
                speed_function=fn,
                kernel_name=kernel.name,
                block_size=kernel.block_size,
                repetitions_total=reps_total,
            )
            if store is not None:
                store.put("fpm", key, fpm_to_dict(model))
            return model

    # ------------------------------------------------------------ internal
    def _cache_key(
        self,
        kernel: Kernel,
        grid: SizeGrid,
        busy_cpu_cores: int,
        name: str | None,
        bounded: bool | None,
        adaptive: bool,
    ) -> dict:
        """Every input that shapes the built model, as a store key."""
        return {
            "artifact": "fpm-build",
            "bench": bench_key(self.bench),
            "kernel": kernel_key(kernel),
            "grid": list(grid.sizes),
            "busy_cpu_cores": busy_cpu_cores,
            "name": name,
            "bounded": bounded,
            "adaptive": adaptive,
            "tuning": [
                self.adaptive_tolerance,
                self.adaptive_variation,
                self.max_adaptive_rounds,
                self.min_interval,
            ],
        }
    def _measure_samples(
        self, kernel: Kernel, sizes: list[float], busy_cpu_cores: int
    ) -> tuple[list[SpeedSample], int]:
        """Measure a batch of sizes in one sweep (the vectorised fast path).

        Speeds come from :meth:`HybridBenchmark.measure_speeds`, which is
        bit-identical to per-size ``measure_speed`` calls; the
        ``fpm.samples`` counter advances by the batch size so its total
        matches the old per-point accounting exactly.
        """
        tracer = get_tracer()
        with tracer.span(
            "fpm.samples", category="measurement", sizes=len(sizes)
        ) as span:
            measured = self.bench.measure_speeds(kernel, sizes, busy_cpu_cores)
            reps_total = sum(m.timing.repetitions for m in measured)
            if tracer.enabled:
                span.set_attr("repetitions_total", reps_total)
                tracer.counter("fpm.samples").add(len(measured))
            samples = [
                SpeedSample(
                    size=size,
                    speed=m.speed_gflops,
                    rel_precision=m.timing.rel_precision,
                )
                for size, m in zip(sizes, measured)
            ]
            return samples, reps_total

    def _refine(
        self,
        kernel: Kernel,
        samples: dict[float, SpeedSample],
        busy_cpu_cores: int,
    ) -> int:
        """Insert midpoints where linear interpolation mispredicts speed.

        Each round measures all of its midpoints in ONE batched sweep —
        midpoints of disjoint intervals never serve as endpoints within a
        round, so the chord and cliff tests see the same speeds as the old
        one-point-at-a-time loop.
        """
        reps_total = 0
        intervals = _adjacent_pairs(sorted(samples))
        for _ in range(self.max_adaptive_rounds):
            splits: list[tuple[float, float, float]] = []
            for lo, hi in intervals:
                mid = 0.5 * (lo + hi)
                if mid <= lo or mid >= hi or (hi - lo) < self.min_interval:
                    continue  # nothing meaningfully between the endpoints
                splits.append((lo, hi, mid))
            if not splits:
                break
            mids = [mid for _, _, mid in splits]
            mid_samples, reps = self._measure_samples(kernel, mids, busy_cpu_cores)
            get_tracer().counter("fpm.adaptive.points").add(len(mids))
            reps_total += reps
            next_intervals: list[tuple[float, float]] = []
            for (lo, hi, mid), sample in zip(splits, mid_samples):
                samples[mid] = sample
                predicted = 0.5 * (samples[lo].speed + samples[hi].speed)
                err = abs(predicted - sample.speed) / sample.speed
                if err > self.adaptive_tolerance:
                    next_intervals.extend([(lo, mid), (mid, hi)])
                else:
                    # chord test passed; still recurse into halves whose
                    # endpoint speeds differ strongly (cliff detection)
                    for a, b in ((lo, mid), (mid, hi)):
                        ratio = max(samples[a].speed, samples[b].speed) / min(
                            samples[a].speed, samples[b].speed
                        )
                        if ratio > self.adaptive_variation:
                            next_intervals.append((a, b))
            if not next_intervals:
                break
            intervals = next_intervals
        return reps_total


def _adjacent_pairs(values: list[float]) -> list[tuple[float, float]]:
    return list(zip(values, values[1:]))
