"""Benchmark orchestration for the hybrid node (paper Section III).

:class:`HybridBenchmark` owns the simulated devices, the timer and the
reliability criterion, and exposes the three experiments of Section III:

* socket speed with ``c`` cores running the kernel simultaneously;
* combined GPU + dedicated-core speed (synchronous approach);
* the shared experiment — CPU and GPU kernels running at once on one
  socket with workload split proportionally to their solo speeds — which
  quantifies the contention impact (Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.kernels.gemm_cpu import CpuGemmKernel
from repro.kernels.gemm_gpu import gpu_kernel as make_gpu_kernel
from repro.kernels.interface import Kernel
from repro.measurement.reliability import (
    Measurement,
    ReliabilityCriterion,
    measure_until_reliable,
    measure_until_reliable_batch,
)
from repro.measurement.timer import SimulatedTimer
from repro.obs import get_tracer
from repro.platform.device import SimulatedGpu, SimulatedSocket, build_devices
from repro.platform.faults import FaultPlan, RetryPolicy
from repro.platform.noise import NoiseModel
from repro.platform.spec import NodeSpec
from repro.util.rng import RngStream
from repro.util.units import gemm_kernel_flops
from repro.util.validation import check_positive


@dataclass(frozen=True)
class SpeedMeasurement:
    """A reliable speed estimate at one problem size."""

    area_blocks: float
    speed_gflops: float
    timing: Measurement


@dataclass
class HybridBenchmark:
    """Benchmarking facade over one simulated hybrid node.

    ``faults`` installs a deterministic fault plan on the timer (its RNG
    stream is disjoint from the noise model's ``"bench"`` stream); failing
    invocations are retried under ``retry`` by the reliability protocol.
    """

    node: NodeSpec
    seed: int = 42
    noise_sigma: float = 0.02
    criterion: ReliabilityCriterion = field(default_factory=ReliabilityCriterion)
    faults: FaultPlan | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        self.sockets, self.gpus = build_devices(self.node)
        noise = NoiseModel(RngStream(self.seed).child("bench"), self.noise_sigma)
        self.timer = SimulatedTimer(noise, faults=self.faults)

    # ------------------------------------------------------------ kernels
    def socket_kernel(
        self, socket_index: int, active_cores: int, gpu_active: bool = False
    ) -> CpuGemmKernel:
        """The CPU kernel bound to ``active_cores`` of one socket."""
        return CpuGemmKernel(
            socket=self._socket(socket_index),
            active_cores=active_cores,
            gpu_active=gpu_active,
        )

    def gpu_kernel(self, gpu_index: int, version: int = 3):
        """The GPU kernel (paper version 1/2/3) of one attached GPU."""
        return make_gpu_kernel(self._gpu(gpu_index), version)

    # ------------------------------------------------------- measurements
    def measure_time(
        self, kernel: Kernel, area_blocks: float, busy_cpu_cores: int = 0
    ) -> Measurement:
        """Reliable mean time of one kernel run at one problem size."""
        check_positive("area_blocks", area_blocks)
        tracer = get_tracer()
        with tracer.span(
            "bench.measure_time",
            category="measurement",
            kernel=kernel.name,
            area_blocks=area_blocks,
        ) as span:
            timing = measure_until_reliable(
                lambda rep, attempt=0: self.timer.time_kernel(
                    kernel, area_blocks, rep, busy_cpu_cores, attempt=attempt
                ),
                self.criterion,
                retry=self.retry,
            )
            if tracer.enabled:
                span.set_attr("mean_s", timing.mean)
                span.set_attr("repetitions", timing.repetitions)
            return timing

    def measure_speed(
        self, kernel: Kernel, area_blocks: float, busy_cpu_cores: int = 0
    ) -> SpeedMeasurement:
        """Reliable speed (GFlops) of a kernel at one problem size."""
        tracer = get_tracer()
        with tracer.span(
            "bench.measure_speed",
            category="measurement",
            kernel=kernel.name,
            area_blocks=area_blocks,
        ) as span:
            timing = self.measure_time(kernel, area_blocks, busy_cpu_cores)
            flops = gemm_kernel_flops(area_blocks, kernel.block_size)
            speed = flops / timing.mean / 1e9
            if tracer.enabled:
                span.set_attr("speed_gflops", speed)
            return SpeedMeasurement(
                area_blocks=area_blocks,
                speed_gflops=speed,
                timing=timing,
            )

    def measure_times(
        self,
        kernel: Kernel,
        sizes: Sequence[float],
        busy_cpu_cores: int = 0,
    ) -> list[Measurement]:
        """Reliable mean times at many problem sizes (the batch fast path).

        The kernel's ideal times come from ONE ``run_time_batch`` call and
        each size's repetitions are drawn in chunks through
        :func:`measure_until_reliable_batch`; every returned ``Measurement``
        is bit-identical to :meth:`measure_time` at the same size.
        """
        sizes = [float(size) for size in sizes]
        for size in sizes:
            check_positive("area_blocks", size)
        tracer = get_tracer()
        with tracer.span(
            "bench.measure_times",
            category="measurement",
            kernel=kernel.name,
            sizes=len(sizes),
        ):
            ideals = kernel.run_time_batch(np.asarray(sizes), busy_cpu_cores)
            timings = []
            for size, ideal in zip(sizes, ideals):
                def sample_batch(start, count, _size=size, _ideal=float(ideal)):
                    return self.timer.time_kernel_batch(
                        kernel,
                        _size,
                        range(start, start + count),
                        busy_cpu_cores,
                        ideal_seconds=_ideal,
                    )

                def sample(rep, attempt=0, _size=size):
                    # scalar fallback for repetitions whose batch draw was
                    # marked as an injected fault (and for their retries)
                    return self.timer.time_kernel(
                        kernel, _size, rep, busy_cpu_cores, attempt=attempt
                    )

                timings.append(
                    measure_until_reliable_batch(
                        sample_batch,
                        self.criterion,
                        retry=self.retry,
                        sample=sample,
                    )
                )
            return timings

    def measure_speeds(
        self,
        kernel: Kernel,
        sizes: Sequence[float],
        busy_cpu_cores: int = 0,
    ) -> list[SpeedMeasurement]:
        """Reliable speeds (GFlops) at many problem sizes in one sweep.

        The vectorised twin of calling :meth:`measure_speed` per size, with
        bit-identical results — used by the FPM builders and the figure
        sweeps.
        """
        sizes = [float(size) for size in sizes]
        timings = self.measure_times(kernel, sizes, busy_cpu_cores)
        speeds = []
        for size, timing in zip(sizes, timings):
            flops = gemm_kernel_flops(size, kernel.block_size)
            speed = flops / timing.mean / 1e9
            speeds.append(
                SpeedMeasurement(
                    area_blocks=size,
                    speed_gflops=speed,
                    timing=timing,
                )
            )
        return speeds

    def measure_socket_speed(
        self,
        socket_index: int,
        active_cores: int,
        area_blocks: float,
        gpu_active: bool = False,
    ) -> SpeedMeasurement:
        """Socket speed ``s_c(x)`` with ``c`` synchronised cores (Fig. 2)."""
        kernel = self.socket_kernel(socket_index, active_cores, gpu_active)
        return self.measure_speed(kernel, area_blocks)

    def measure_gpu_speed(
        self,
        gpu_index: int,
        area_blocks: float,
        version: int = 3,
        busy_cpu_cores: int = 0,
    ) -> SpeedMeasurement:
        """Combined GPU + dedicated-core speed ``g(x)`` (Fig. 3)."""
        kernel = self.gpu_kernel(gpu_index, version)
        return self.measure_speed(kernel, area_blocks, busy_cpu_cores)

    def measure_shared_socket(
        self,
        gpu_index: int,
        total_area_blocks: float,
        cpu_fraction: float,
        gpu_version: int = 3,
    ) -> tuple[SpeedMeasurement, SpeedMeasurement]:
        """The contention experiment of Fig. 5.

        The socket hosting ``gpu_index`` runs the CPU kernel on its
        non-dedicated cores with ``cpu_fraction`` of the total workload,
        while the GPU (plus dedicated core) runs the GPU kernel with the
        rest — both simultaneously.  Returns (cpu_speed, gpu_speed).
        """
        if not 0.0 < cpu_fraction < 1.0:
            raise ValueError(
                f"cpu_fraction must be in (0, 1), got {cpu_fraction}"
            )
        att = self.node.gpus[gpu_index]
        cpu_cores = self.node.socket_spec(att.socket_index).cores - 1
        cpu_area = total_area_blocks * cpu_fraction
        gpu_area = total_area_blocks - cpu_area
        cpu_speed = self.measure_socket_speed(
            att.socket_index, cpu_cores, cpu_area, gpu_active=True
        )
        gpu_speed = self.measure_gpu_speed(
            gpu_index, gpu_area, gpu_version, busy_cpu_cores=cpu_cores
        )
        return cpu_speed, gpu_speed

    # ------------------------------------------------------------ helpers
    def _socket(self, index: int) -> SimulatedSocket:
        if not 0 <= index < len(self.sockets):
            raise ValueError(
                f"socket index {index} out of range [0, {len(self.sockets)})"
            )
        return self.sockets[index]

    def _gpu(self, index: int) -> SimulatedGpu:
        if not 0 <= index < len(self.gpus):
            raise ValueError(
                f"gpu index {index} out of range [0, {len(self.gpus)})"
            )
        return self.gpus[index]


# Thin functional wrappers (convenient in scripts and docs).
def measure_socket_speed(
    bench: HybridBenchmark, socket_index: int, active_cores: int, area_blocks: float
) -> SpeedMeasurement:
    """See :meth:`HybridBenchmark.measure_socket_speed`."""
    return bench.measure_socket_speed(socket_index, active_cores, area_blocks)


def measure_gpu_speed(
    bench: HybridBenchmark, gpu_index: int, area_blocks: float, version: int = 3
) -> SpeedMeasurement:
    """See :meth:`HybridBenchmark.measure_gpu_speed`."""
    return bench.measure_gpu_speed(gpu_index, area_blocks, version)


def measure_shared_socket(
    bench: HybridBenchmark, gpu_index: int, total_area_blocks: float, cpu_fraction: float
) -> tuple[SpeedMeasurement, SpeedMeasurement]:
    """See :meth:`HybridBenchmark.measure_shared_socket`."""
    return bench.measure_shared_socket(gpu_index, total_area_blocks, cpu_fraction)
