"""Performance measurement on the (simulated) hybrid platform.

Implements the paper's Section III methodology:

* processes **bound to cores**, one kernel per core, with a dedicated core
  per GPU (:mod:`repro.measurement.binding`);
* benchmarks **synchronised** so groups of cores generate maximal shared
  traffic and measured together (:mod:`repro.measurement.benchmark`);
* repetitions **until statistically reliable** — Student-t confidence
  interval within a requested fraction of the mean
  (:mod:`repro.measurement.reliability`);
* FPM construction by sweeping problem sizes
  (:mod:`repro.measurement.fpm_builder`).
"""

from repro.measurement.benchmark import (
    HybridBenchmark,
    measure_gpu_speed,
    measure_shared_socket,
    measure_socket_speed,
)
from repro.measurement.binding import BindingPlan, ProcessBinding, default_binding
from repro.measurement.fpm_builder import FpmBuilder, SizeGrid
from repro.measurement.online import PartialFpmBuilder, online_partition
from repro.measurement.reliability import (
    Measurement,
    ReliabilityCriterion,
    measure_until_reliable,
)
from repro.measurement.timer import SimulatedTimer

__all__ = [
    "HybridBenchmark",
    "measure_gpu_speed",
    "measure_shared_socket",
    "measure_socket_speed",
    "BindingPlan",
    "ProcessBinding",
    "default_binding",
    "FpmBuilder",
    "SizeGrid",
    "PartialFpmBuilder",
    "online_partition",
    "Measurement",
    "ReliabilityCriterion",
    "measure_until_reliable",
    "SimulatedTimer",
]
