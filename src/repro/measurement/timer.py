"""The simulated benchmark timer.

Real experiments time kernels with a wall clock; this reproduction times
them by querying the device models and perturbing the ideal duration with
the platform's noise model.  The synchronous GPU measurement approach of
the paper (the dedicated host core observes begin and end of each
operation) corresponds to timing the kernel's full ``run_time``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernels.interface import Kernel
from repro.platform.noise import NoiseModel
from repro.util.validation import check_nonnegative


@dataclass
class SimulatedTimer:
    """Times kernel runs on the simulated platform.

    One timer per experiment; the ``noise`` model keys draws by kernel
    name, problem size, contention state and repetition index, so repeated
    timings differ (as on hardware) while the full experiment stays
    reproducible from one seed.
    """

    noise: NoiseModel

    def time_kernel(
        self,
        kernel: Kernel,
        area_blocks: float,
        repetition: int,
        busy_cpu_cores: int = 0,
    ) -> float:
        """One noisy timing of one kernel run (seconds)."""
        check_nonnegative("area_blocks", area_blocks)
        if repetition < 0:
            raise ValueError(f"repetition must be >= 0, got {repetition}")
        ideal = kernel.run_time(area_blocks, busy_cpu_cores)
        return self.noise.perturb(
            ideal, kernel.name, f"x{area_blocks}", f"busy{busy_cpu_cores}", f"r{repetition}"
        )
