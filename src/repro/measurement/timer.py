"""The simulated benchmark timer.

Real experiments time kernels with a wall clock; this reproduction times
them by querying the device models and perturbing the ideal duration with
the platform's noise model.  The synchronous GPU measurement approach of
the paper (the dedicated host core observes begin and end of each
operation) corresponds to timing the kernel's full ``run_time``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.kernels.interface import Kernel
from repro.platform.noise import NoiseModel
from repro.util.validation import check_nonnegative


@dataclass
class SimulatedTimer:
    """Times kernel runs on the simulated platform.

    One timer per experiment; the ``noise`` model keys draws by kernel
    name, problem size, contention state and repetition index, so repeated
    timings differ (as on hardware) while the full experiment stays
    reproducible from one seed.
    """

    noise: NoiseModel

    def time_kernel(
        self,
        kernel: Kernel,
        area_blocks: float,
        repetition: int,
        busy_cpu_cores: int = 0,
    ) -> float:
        """One noisy timing of one kernel run (seconds)."""
        check_nonnegative("area_blocks", area_blocks)
        if repetition < 0:
            raise ValueError(f"repetition must be >= 0, got {repetition}")
        ideal = kernel.run_time(area_blocks, busy_cpu_cores)
        return self.noise.perturb(
            ideal, kernel.name, f"x{area_blocks}", f"busy{busy_cpu_cores}", f"r{repetition}"
        )

    def time_kernel_batch(
        self,
        kernel: Kernel,
        area_blocks: float,
        repetitions: Iterable[int],
        busy_cpu_cores: int = 0,
        ideal_seconds: float | None = None,
    ) -> np.ndarray:
        """Noisy timings of many repetitions at ONE size, in one call.

        Bit-identical to ``[self.time_kernel(kernel, area_blocks, r,
        busy_cpu_cores) for r in repetitions]``; ``ideal_seconds`` lets the
        sweep hoist the (deterministic) ``kernel.run_time`` out of the
        repetition loop.
        """
        check_nonnegative("area_blocks", area_blocks)
        reps = [int(r) for r in repetitions]
        for rep in reps:
            if rep < 0:
                raise ValueError(f"repetition must be >= 0, got {rep}")
        if ideal_seconds is None:
            ideal_seconds = kernel.run_time(area_blocks, busy_cpu_cores)
        return self.noise.perturb_batch(
            ideal_seconds,
            (kernel.name, f"x{area_blocks}", f"busy{busy_cpu_cores}"),
            [f"r{rep}" for rep in reps],
        )
