"""The simulated benchmark timer.

Real experiments time kernels with a wall clock; this reproduction times
them by querying the device models and perturbing the ideal duration with
the platform's noise model.  The synchronous GPU measurement approach of
the paper (the dedicated host core observes begin and end of each
operation) corresponds to timing the kernel's full ``run_time``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.kernels.interface import Kernel
from repro.platform.faults import FaultPlan, KernelFaultError
from repro.platform.noise import NoiseModel
from repro.util.validation import check_nonnegative


@dataclass
class SimulatedTimer:
    """Times kernel runs on the simulated platform.

    One timer per experiment; the ``noise`` model keys draws by kernel
    name, problem size, contention state and repetition index, so repeated
    timings differ (as on hardware) while the full experiment stays
    reproducible from one seed.

    An optional :class:`FaultPlan` injects deterministic failures and
    transient spikes: a failing invocation raises
    :class:`~repro.platform.faults.KernelFaultError`, and retry attempts
    (``attempt > 0``) consult the plan under a fresh stream leaf so a
    retried repetition can succeed.  The noise context only gains the
    attempt suffix on retries, keeping attempt-0 timings bit-identical to
    a fault-free run.
    """

    noise: NoiseModel
    faults: FaultPlan | None = None

    def time_kernel(
        self,
        kernel: Kernel,
        area_blocks: float,
        repetition: int,
        busy_cpu_cores: int = 0,
        attempt: int = 0,
    ) -> float:
        """One noisy timing of one kernel run (seconds)."""
        check_nonnegative("area_blocks", area_blocks)
        if repetition < 0:
            raise ValueError(f"repetition must be >= 0, got {repetition}")
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        ideal = kernel.run_time(area_blocks, busy_cpu_cores)
        spike = 1.0
        if self.faults is not None:
            tail = (
                f"x{area_blocks}",
                f"busy{busy_cpu_cores}",
                f"r{repetition}",
                f"a{attempt}",
            )
            outcome = self.faults.kernel_outcome(kernel.name, *tail)
            if outcome.failed:
                raise KernelFaultError(kernel.name, outcome.error_code, tail)
            spike = outcome.spike_factor
        context = [
            kernel.name, f"x{area_blocks}", f"busy{busy_cpu_cores}", f"r{repetition}"
        ]
        if attempt > 0:
            context.append(f"a{attempt}")
        return self.noise.perturb(ideal, *context) * spike

    def time_kernel_batch(
        self,
        kernel: Kernel,
        area_blocks: float,
        repetitions: Iterable[int],
        busy_cpu_cores: int = 0,
        ideal_seconds: float | None = None,
    ) -> np.ndarray:
        """Noisy timings of many repetitions at ONE size, in one call.

        Bit-identical to ``[self.time_kernel(kernel, area_blocks, r,
        busy_cpu_cores) for r in repetitions]``; ``ideal_seconds`` lets the
        sweep hoist the (deterministic) ``kernel.run_time`` out of the
        repetition loop.

        With a fault plan installed, an attempt-0 failure is marked as NaN
        (simulated timings are never NaN) rather than raised, so one bad
        repetition does not lose the whole chunk; the batch reliability
        protocol replays marked entries through the scalar retry path.
        """
        check_nonnegative("area_blocks", area_blocks)
        reps = [int(r) for r in repetitions]
        for rep in reps:
            if rep < 0:
                raise ValueError(f"repetition must be >= 0, got {rep}")
        if ideal_seconds is None:
            ideal_seconds = kernel.run_time(area_blocks, busy_cpu_cores)
        values = self.noise.perturb_batch(
            ideal_seconds,
            (kernel.name, f"x{area_blocks}", f"busy{busy_cpu_cores}"),
            [f"r{rep}" for rep in reps],
        )
        if self.faults is not None and not self.faults.inert:
            failed, factors, _ = self.faults.kernel_outcomes_batch(
                kernel.name,
                (f"x{area_blocks}", f"busy{busy_cpu_cores}"),
                [(f"r{rep}", "a0") for rep in reps],
            )
            values = values * factors
            values[failed] = np.nan
        return values
