"""The simulated benchmark timer.

Real experiments time kernels with a wall clock; this reproduction times
them by querying the device models and perturbing the ideal duration with
the platform's noise model.  The synchronous GPU measurement approach of
the paper (the dedicated host core observes begin and end of each
operation) corresponds to timing the kernel's full ``run_time``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.kernels.interface import Kernel
from repro.platform.drift import DriftModel
from repro.platform.faults import FaultPlan, KernelFaultError
from repro.platform.noise import NoiseModel
from repro.util.validation import check_nonnegative


def compose_timing(ideal_s, drift_time_factor, spike_factor, perturb):
    """The ONE place the timing modifiers compose, in pinned order.

    ``(ideal x drift time-multiplier) -> noise perturbation -> x fault
    spike``.  Floating-point multiplication is not associative, so the
    scalar and batch measurement lanes (and every future consumer) must
    compose through this function — any private re-ordering would break
    their bit-identity, which tests/measurement/test_timing_composition.py
    enforces with all three modifiers enabled at once.

    ``perturb`` is the noise application (scalar
    :meth:`~repro.platform.noise.NoiseModel.perturb` bound to its
    context, or the batched twin); ``spike_factor`` may be a scalar or a
    per-repetition array.  With ``drift_time_factor == 1.0`` and
    ``spike_factor == 1.0`` the result is exactly ``perturb(ideal_s)`` —
    drift-free fault-free timings are unchanged bit for bit.
    """
    return perturb(ideal_s * drift_time_factor) * spike_factor


@dataclass
class SimulatedTimer:
    """Times kernel runs on the simulated platform.

    One timer per experiment; the ``noise`` model keys draws by kernel
    name, problem size, contention state and repetition index, so repeated
    timings differ (as on hardware) while the full experiment stays
    reproducible from one seed.

    An optional :class:`FaultPlan` injects deterministic failures and
    transient spikes: a failing invocation raises
    :class:`~repro.platform.faults.KernelFaultError`, and retry attempts
    (``attempt > 0``) consult the plan under a fresh stream leaf so a
    retried repetition can succeed.  The noise context only gains the
    attempt suffix on retries, keeping attempt-0 timings bit-identical to
    a fault-free run.

    An optional :class:`~repro.platform.drift.DriftModel` makes the
    platform non-stationary: timings taken at simulated time ``at_s``
    are stretched by the device's drift time-multiplier.  All modifiers
    compose through :func:`compose_timing` (the pinned order), and
    ``at_s`` participates in neither the noise nor the fault stream
    paths — at the default ``at_s = 0.0`` with no drift rules, timings
    are bit-identical to a drift-free timer.
    """

    noise: NoiseModel
    faults: FaultPlan | None = None
    drift: DriftModel | None = None

    def _drift_time_factor(self, device: str, at_s: float) -> float:
        if self.drift is None or self.drift.inert:
            return 1.0
        return self.drift.time_multiplier(device, at_s)

    def time_kernel(
        self,
        kernel: Kernel,
        area_blocks: float,
        repetition: int,
        busy_cpu_cores: int = 0,
        attempt: int = 0,
        at_s: float = 0.0,
    ) -> float:
        """One noisy timing of one kernel run (seconds)."""
        check_nonnegative("area_blocks", area_blocks)
        if repetition < 0:
            raise ValueError(f"repetition must be >= 0, got {repetition}")
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        ideal = kernel.run_time(area_blocks, busy_cpu_cores)
        spike = 1.0
        if self.faults is not None:
            tail = (
                f"x{area_blocks}",
                f"busy{busy_cpu_cores}",
                f"r{repetition}",
                f"a{attempt}",
            )
            outcome = self.faults.kernel_outcome(kernel.name, *tail)
            if outcome.failed:
                raise KernelFaultError(kernel.name, outcome.error_code, tail)
            spike = outcome.spike_factor
        context = [
            kernel.name, f"x{area_blocks}", f"busy{busy_cpu_cores}", f"r{repetition}"
        ]
        if attempt > 0:
            context.append(f"a{attempt}")
        return compose_timing(
            ideal,
            self._drift_time_factor(kernel.name, at_s),
            spike,
            lambda seconds: self.noise.perturb(seconds, *context),
        )

    def time_kernel_batch(
        self,
        kernel: Kernel,
        area_blocks: float,
        repetitions: Iterable[int],
        busy_cpu_cores: int = 0,
        ideal_seconds: float | None = None,
        at_s: float = 0.0,
    ) -> np.ndarray:
        """Noisy timings of many repetitions at ONE size, in one call.

        Bit-identical to ``[self.time_kernel(kernel, area_blocks, r,
        busy_cpu_cores, at_s=at_s) for r in repetitions]``;
        ``ideal_seconds`` lets the sweep hoist the (deterministic)
        ``kernel.run_time`` out of the repetition loop.

        With a fault plan installed, an attempt-0 failure is marked as NaN
        (simulated timings are never NaN) rather than raised, so one bad
        repetition does not lose the whole chunk; the batch reliability
        protocol replays marked entries through the scalar retry path.
        """
        check_nonnegative("area_blocks", area_blocks)
        reps = [int(r) for r in repetitions]
        for rep in reps:
            if rep < 0:
                raise ValueError(f"repetition must be >= 0, got {rep}")
        if ideal_seconds is None:
            ideal_seconds = kernel.run_time(area_blocks, busy_cpu_cores)
        spike_factors: np.ndarray | float = 1.0
        failed = None
        if self.faults is not None and not self.faults.inert:
            failed, spike_factors, _ = self.faults.kernel_outcomes_batch(
                kernel.name,
                (f"x{area_blocks}", f"busy{busy_cpu_cores}"),
                [(f"r{rep}", "a0") for rep in reps],
            )
        values = compose_timing(
            ideal_seconds,
            self._drift_time_factor(kernel.name, at_s),
            spike_factors,
            lambda seconds: self.noise.perturb_batch(
                seconds,
                (kernel.name, f"x{area_blocks}", f"busy{busy_cpu_cores}"),
                [f"r{rep}" for rep in reps],
            ),
        )
        if failed is not None:
            values[failed] = np.nan
        return values
