"""Partial functional performance models, built online.

A full FPM sweep measures each device at many sizes it will never be
assigned.  The *partial FPM* technique from the authors' follow-on work
builds models incrementally while iterating toward the balanced partition:

1. start from a minimal two-point model per device;
2. partition with the current models;
3. benchmark each device **at its assigned size** and insert the point;
4. repeat until the partition stops moving.

Because refinement happens exactly where the solution lives, the loop
typically converges in a handful of rounds, spending an order of magnitude
fewer benchmark repetitions than a full sweep for the same final
distribution (quantified by
:mod:`repro.experiments.ablations.online_fpm`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.fpm import FunctionalPerformanceModel
from repro.core.integer import round_partition
from repro.core.solver import Solver
from repro.core.speed_function import SpeedFunction, SpeedSample
from repro.kernels.interface import Kernel
from repro.measurement.benchmark import HybridBenchmark
from repro.store import bench_key, get_store, kernel_key
from repro.util.serde import from_jsonable, to_jsonable
from repro.util.validation import check_positive, check_positive_int


@dataclass
class PartialFpmBuilder:
    """Incrementally refined speed function of one device.

    ``min_spacing`` controls when a new operating point is worth a fresh
    measurement: a request closer (relatively) than this to an existing
    sample reuses the model instead.
    """

    bench: HybridBenchmark
    kernel: Kernel
    name: str
    min_spacing: float = 0.08
    _samples: dict[float, SpeedSample] = field(default_factory=dict)
    repetitions_spent: int = 0
    _cached_model: FunctionalPerformanceModel | None = field(
        default=None, repr=False, compare=False
    )

    def bootstrap(self, lo: float, hi: float) -> None:
        """Seed the model with measurements at the range ends."""
        check_positive("lo", lo)
        if not hi > lo:
            raise ValueError(f"hi ({hi}) must exceed lo ({lo})")
        self._measure_batch([lo, hi])

    def refine_at(self, size: float) -> bool:
        """Measure at ``size`` unless a nearby sample already exists.

        Returns True when a new point was actually measured.
        """
        check_positive("size", size)
        for existing in self._samples:
            if abs(existing - size) <= self.min_spacing * size:
                return False
        self._measure_batch([size])
        return True

    def model(self) -> FunctionalPerformanceModel:
        """The current partial model (monotonic-time repaired).

        Memoised until the next measurement lands: rounds that did not
        refine this device hand the *same* model object back, which lets
        the online loop re-solve incrementally (only genuinely refreshed
        devices rebuild their solver rows) and keeps the batch cache
        warm.
        """
        if self._cached_model is not None:
            return self._cached_model
        if not self._samples:
            raise ValueError(
                f"partial model {self.name!r} has no samples; call bootstrap()"
            )
        ordered = [self._samples[k] for k in sorted(self._samples)]
        self._cached_model = FunctionalPerformanceModel(
            name=self.name,
            speed_function=SpeedFunction(ordered).with_monotonic_time(),
            kernel_name=self.kernel.name,
            block_size=self.kernel.block_size,
            repetitions_total=self.repetitions_spent,
        )
        return self._cached_model

    @property
    def num_samples(self) -> int:
        return len(self._samples)

    def _measure_batch(self, sizes: list[float]) -> None:
        for size, m in zip(sizes, self.bench.measure_speeds(self.kernel, sizes)):
            self._samples[size] = SpeedSample(
                size=size,
                speed=m.speed_gflops,
                rel_precision=m.timing.rel_precision,
            )
            self.repetitions_spent += m.timing.repetitions
        self._cached_model = None


@dataclass(frozen=True)
class OnlineRound:
    """One iteration of the online partitioning loop."""

    allocations: tuple[int, ...]
    new_points: int


@dataclass(frozen=True)
class OnlinePartitionResult:
    """Convergence history and the final distribution."""

    rounds: tuple[OnlineRound, ...]
    allocations: tuple[int, ...]
    converged: bool
    repetitions_spent: int

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)


def online_partition(
    builders: list[PartialFpmBuilder],
    total: int,
    max_rounds: int = 12,
    movement_tolerance: float = 0.01,
) -> OnlinePartitionResult:
    """Run the partition/refine loop until the distribution stabilises.

    ``movement_tolerance`` — the loop stops once the L1 change between
    successive distributions is below this fraction of ``total`` *and*
    the last round added no new measurements.

    When a store is active and every builder is pristine (no samples
    yet), the convergence history is cached under the ``partition`` kind;
    a warm run replays the frozen result without touching the benchmark.
    Pre-warmed builders bypass the cache — their accumulated samples are
    part of the outcome but not of the key.
    """
    check_positive_int("total", total)
    check_positive_int("max_rounds", max_rounds)
    if not builders:
        raise ValueError("need at least one partial model builder")

    store = get_store()
    key = None
    if store is not None and all(b.num_samples == 0 for b in builders):
        key = {
            "artifact": "online-partition",
            "builders": [
                {
                    "bench": bench_key(b.bench),
                    "kernel": kernel_key(b.kernel),
                    "name": b.name,
                    "min_spacing": b.min_spacing,
                }
                for b in builders
            ],
            "total": total,
            "max_rounds": max_rounds,
            "movement_tolerance": movement_tolerance,
        }
        cached = store.get("partition", key)
        if cached is not None:
            return from_jsonable(OnlinePartitionResult, cached)

    for b in builders:
        if b.num_samples < 2:
            b.bootstrap(max(1.0, total / 256.0), float(total))

    previous: tuple[int, ...] | None = None
    rounds: list[OnlineRound] = []
    converged = False
    solver = Solver()
    prev_solve = None
    prev_models: list[FunctionalPerformanceModel] = []
    for _ in range(max_rounds):
        models = [b.model() for b in builders]
        if prev_solve is None:
            solve_result = solver.solve(models, float(total))
        else:
            # memoised models make change detection an identity test; the
            # warm exact-mode resolve rebuilds only refreshed solver rows
            # and stays bit-identical to the cold solve it replaces
            changed = {
                i: m
                for i, (m, pm) in enumerate(zip(models, prev_models))
                if m is not pm
            }
            solve_result = solver.resolve(prev_solve, changed_models=changed)
        prev_solve, prev_models = solve_result, models
        continuous = list(solve_result.allocations)
        allocations = tuple(round_partition(models, continuous, total))
        new_points = sum(
            1
            for b, a in zip(builders, allocations)
            if a > 0 and b.refine_at(float(a))
        )
        rounds.append(OnlineRound(allocations=allocations, new_points=new_points))
        if previous is not None:
            moved = sum(abs(a - p) for a, p in zip(allocations, previous))
            if moved <= movement_tolerance * total and new_points == 0:
                converged = True
                break
        previous = allocations
    result = OnlinePartitionResult(
        rounds=tuple(rounds),
        allocations=rounds[-1].allocations,
        converged=converged,
        repetitions_spent=sum(b.repetitions_spent for b in builders),
    )
    if key is not None:
        store.put("partition", key, to_jsonable(result))
    return result
