"""Process binding and placement (paper Section III, points i–ii).

"Since automatic rearranging of the processes provided by the operating
system may result in performance degradation, processes are bound to
cores."  On the simulated platform binding is bookkeeping — but it is the
bookkeeping the application and benchmarks rely on: which core belongs to
which process, which cores are dedicated to GPUs, and how many CPU kernels
a socket is running (the contention state every timing depends on).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platform.spec import NodeSpec
from repro.util.validation import check_nonnegative_int


@dataclass(frozen=True)
class ProcessBinding:
    """One process pinned to one core."""

    rank: int
    socket_index: int
    core_index: int
    gpu_index: int | None = None  # set when this is a GPU's dedicated core

    def __post_init__(self) -> None:
        check_nonnegative_int("rank", self.rank)
        check_nonnegative_int("socket_index", self.socket_index)
        check_nonnegative_int("core_index", self.core_index)

    @property
    def is_dedicated(self) -> bool:
        return self.gpu_index is not None


@dataclass(frozen=True)
class BindingPlan:
    """A full placement of processes on a node, one process per core.

    The default plan mirrors the paper's Fig. 6 setup: ranks are laid out
    socket by socket, and on a socket hosting a GPU the *first* rank is the
    GPU's dedicated core (the paper binds ranks 0 and 6 — the first core of
    sockets 0 and 1 — to the Tesla C870 and the GTX680).
    """

    node: NodeSpec
    bindings: tuple[ProcessBinding, ...]

    def __post_init__(self) -> None:
        seen: set[tuple[int, int]] = set()
        for b in self.bindings:
            if b.socket_index >= self.node.num_sockets:
                raise ValueError(
                    f"rank {b.rank} bound to socket {b.socket_index}, but the "
                    f"node has {self.node.num_sockets} sockets"
                )
            socket_cores = self.node.socket_spec(b.socket_index).cores
            if b.core_index >= socket_cores:
                raise ValueError(
                    f"rank {b.rank} bound to core {b.core_index}, but socket "
                    f"{b.socket_index} has {socket_cores} cores"
                )
            key = (b.socket_index, b.core_index)
            if key in seen:
                raise ValueError(
                    f"two processes bound to socket {b.socket_index} core "
                    f"{b.core_index}"
                )
            seen.add(key)

    @property
    def num_processes(self) -> int:
        return len(self.bindings)

    def dedicated_ranks(self) -> list[int]:
        """Ranks that drive a GPU, in GPU-attachment order."""
        pairs = [(b.gpu_index, b.rank) for b in self.bindings if b.is_dedicated]
        return [rank for _, rank in sorted(pairs)]

    def cpu_ranks(self) -> list[int]:
        """Ranks running the CPU kernel."""
        return [b.rank for b in self.bindings if not b.is_dedicated]

    def cpu_ranks_on_socket(self, socket_index: int) -> list[int]:
        """CPU-kernel ranks bound to one socket."""
        return [
            b.rank
            for b in self.bindings
            if b.socket_index == socket_index and not b.is_dedicated
        ]

    def binding_of(self, rank: int) -> ProcessBinding:
        for b in self.bindings:
            if b.rank == rank:
                return b
        raise KeyError(f"no binding for rank {rank}")


def default_binding(node: NodeSpec) -> BindingPlan:
    """The paper's placement: one process per core, dedicated cores first.

    Ranks increase socket by socket; on a GPU-hosting socket the dedicated
    process occupies the socket's first core and the socket's first rank.
    """
    bindings: list[ProcessBinding] = []
    rank = 0
    for s in range(node.num_sockets):
        attachments = node.gpus_on_socket(s)
        gpu_order = [node.gpus.index(a) for a in attachments]
        core = 0
        for gpu_index in gpu_order:
            bindings.append(
                ProcessBinding(
                    rank=rank, socket_index=s, core_index=core, gpu_index=gpu_index
                )
            )
            rank += 1
            core += 1
        while core < node.socket_spec(s).cores:
            bindings.append(
                ProcessBinding(rank=rank, socket_index=s, core_index=core)
            )
            rank += 1
            core += 1
    return BindingPlan(node=node, bindings=tuple(bindings))
