"""Reproduction experiments — one module per table/figure of the paper.

Every module exposes ``run(config) -> <Result>`` and a ``format_result``
helper that renders the same rows/series the paper reports.  Paper
reference values live in :mod:`repro.experiments.paper_data`;
:mod:`repro.experiments.report` compares measured against paper for the
whole evaluation at once.
"""

from repro.experiments.common import ExperimentConfig
from repro.experiments.registry import (
    Experiment,
    all_experiments,
    experiment_names,
    get_experiment,
    register_experiment,
)
from repro.experiments.fig2_socket_fpm import run as run_fig2
from repro.experiments.fig3_gpu_versions import run as run_fig3
from repro.experiments.fig5_contention import run as run_fig5
from repro.experiments.fig6_process_times import run as run_fig6
from repro.experiments.fig7_exec_vs_size import run as run_fig7
from repro.experiments.jacobi_app import run as run_jacobi
from repro.experiments.table2_exec_time import run as run_table2
from repro.experiments.table3_partitioning import run as run_table3

__all__ = [
    "ExperimentConfig",
    "Experiment",
    "all_experiments",
    "experiment_names",
    "get_experiment",
    "register_experiment",
    "run_fig2",
    "run_fig3",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_jacobi",
    "run_table2",
    "run_table3",
]
