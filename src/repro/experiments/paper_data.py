"""The paper's published numbers, transcribed for comparison.

These are *reference* values: the reproduction runs on a simulator, so we
compare curve shapes, orderings and improvement factors — not absolute
seconds — but the absolute numbers are kept here verbatim for the
EXPERIMENTS.md report.
"""

from __future__ import annotations

# ----------------------------------------------------------------- Table II
# Execution time (seconds) of the parallel matrix multiplication.
# Matrix sizes are in 640x640 blocks (n x n).
TABLE2_SIZES = (40, 50, 60, 70)
TABLE2_CPUS_ONLY = {40: 99.5, 50: 195.4, 60: 300.1, 70: 491.6}
TABLE2_GTX680_ONLY = {40: 74.2, 50: 162.7, 60: 316.8, 70: 554.8}
TABLE2_HYBRID_FPM = {40: 26.6, 50: 77.8, 60: 114.4, 70: 226.1}

# ---------------------------------------------------------------- Table III
# Block allocations (G1 = GTX680, G2 = Tesla C870, S5 = socket w/ 5 CPU
# cores, S6 = socket w/ 6 CPU cores).  CPM- and FPM-based partitioning.
TABLE3_SIZES = (40, 50, 60, 70)
TABLE3_CPM = {
    40: {"G1": 928, "G2": 226, "S5": 105, "S6": 120},
    50: {"G1": 1460, "G2": 352, "S5": 160, "S6": 186},
    60: {"G1": 2085, "G2": 501, "S5": 235, "S6": 270},
    70: {"G1": 2848, "G2": 677, "S5": 320, "S6": 366},
}
TABLE3_FPM = {
    40: {"G1": 1000, "G2": 210, "S5": 95, "S6": 102},
    50: {"G1": 1250, "G2": 429, "S5": 190, "S6": 222},
    60: {"G1": 1627, "G2": 657, "S5": 295, "S6": 342},
    70: {"G1": 2250, "G2": 806, "S5": 425, "S6": 504},
}

# ------------------------------------------------------------ shape criteria
#: GTX680 / socket speed ratio while the problem fits device memory
#: ("around 9 times faster", Section VI).
RATIO_G1_S6_IN_CORE = 9.0
#: ... and "around 6 ~ 4 times faster" past the memory (50x50 .. 70x70).
RATIO_G1_S6_OUT_OF_CORE = (4.0, 6.0)
#: GPU slowdown under CPU contention: "dropped by 7-15%" (Section III) and
#: "85% accuracy" (Section V).
GPU_CONTENTION_DROP = (0.07, 0.15)
#: Kernel version 2 vs 1 in the resident range: "the performance doubles".
V2_OVER_V1_IN_CORE = 2.0
#: Kernel version 3 vs 2 on the GTX680: "improves by around 30%".
V3_OVER_V2_GAIN = 0.30
#: FPM cut of total computation time vs CPM at 60x60 (Fig. 6): ~40%.
FIG6_COMPUTATION_CUT = 0.40
#: FPM vs CPM / homogeneous total-time cuts at large sizes (Fig. 7).
FIG7_CUT_VS_CPM = 0.30
FIG7_CUT_VS_HOMOGENEOUS = 0.45

#: Approximate socket plateau speeds read off Fig. 2 (GFlops, b = 640).
FIG2_S6_PLATEAU = 105.0
FIG2_S5_PLATEAU = 92.0
#: Largest problem size shown on Fig. 2's x-axis (blocks).
FIG2_MAX_BLOCKS = 1200.0
#: Fig. 3 memory-limit line (blocks) for the GTX680.
FIG3_MEMORY_LIMIT = 1200.0
