"""Ablation: online repartitioning under time-varying device speed.

The FPM partition is computed once from stationary speed functions;
:mod:`repro.platform.drift` breaks that assumption with a mid-run
throttle of the node's fastest device (the GTX680), and
:mod:`repro.runtime.drift_control` answers with an EWMA/CUSUM change
detector plus a hysteresis-gated repartition.  This study sweeps the
throttle *magnitude* (how far the device's speed falls) and, on the
hysteresis axis, the CUSUM decision threshold, comparing three policies
on the same drifted platform:

* **static** — the paper's baseline: keep the initial FPM partition;
* **controller** — detect the drift online and repartition only when
  the predicted makespan gain beats the migration + re-solve cost;
* **oracle** — read the true drift multipliers and repartition at the
  perfect moment (an upper bound on any online scheme).

Expected: the controller recovers most of the oracle's gain (the
benchmark gate pins >= 50% on the throttle-ramp scenario) with exactly
one repartition per step change and none on pure noise, and raising
the hysteresis threshold trades a little makespan for fewer (never
oscillating) repartitions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentConfig, make_app
from repro.experiments.registry import register_experiment
from repro.platform.drift import DriftModel
from repro.platform.noise import NoiseModel
from repro.runtime.drift_control import (
    DriftControlPolicy,
    run_with_drift_control,
)
from repro.util.rng import RngStream
from repro.util.tables import render_table

MATRIX_SIZE = 40
#: the throttled device — the node's fastest, so the worst-case drift.
THROTTLED_DEVICE = "GeForce GTX680"
#: throttle floors swept (fraction of nominal speed after the ramp).
DRIFT_FLOORS = (0.8, 0.65, 0.5, 0.35)
#: CUSUM decision thresholds swept on the hysteresis axis.
THRESHOLDS = (0.2, 0.4, 0.8)
#: the ramp: throttle from t0=2 s with a 10 s time constant.
RAMP_T0_S = 2.0
RAMP_TAU_S = 10.0
#: panel-timing measurement noise fed to the controller.
PANEL_SIGMA = 0.01


@dataclass(frozen=True)
class DriftSweepPoint:
    """One (floor, threshold) cell of the sweep."""

    floor: float
    threshold: float
    static_time_s: float
    controller_time_s: float
    oracle_time_s: float
    repartitions: int  # committed controller switches
    rejects: int
    blocks_migrated: int

    @property
    def oracle_gain_s(self) -> float:
        return self.static_time_s - self.oracle_time_s

    @property
    def controller_gain_s(self) -> float:
        return self.static_time_s - self.controller_time_s

    @property
    def gain_recovered(self) -> float:
        """Controller gain as a fraction of the oracle's (1.0 = oracle)."""
        if self.oracle_gain_s <= 0.0:
            return 1.0
        return self.controller_gain_s / self.oracle_gain_s


@dataclass(frozen=True)
class DriftAblationResult:
    n: int
    device: str
    points: tuple[DriftSweepPoint, ...]
    noise_repartitions: int  # controller commits under pure noise (must be 0)
    noise_rejects: int

    @property
    def min_gain_recovered(self) -> float:
        """The worst gain-recovery cell (the benchmark gate's number)."""
        return min(p.gain_recovered for p in self.points)

    @property
    def never_oscillates(self) -> bool:
        """Zero repartitions on pure noise — the hysteresis guarantee."""
        return self.noise_repartitions == 0 and self.noise_rejects == 0


def _drift_spec(floor: float) -> str:
    return (
        f"throttle:{THROTTLED_DEVICE}:t0={RAMP_T0_S},"
        f"tau={RAMP_TAU_S},floor={floor}"
    )


def run(
    config: ExperimentConfig = ExperimentConfig(), n: int = MATRIX_SIZE
) -> DriftAblationResult:
    """Sweep throttle magnitude x hysteresis threshold on the ramp."""
    app = make_app(config)
    noise = NoiseModel(
        RngStream(config.seed).child("panel-noise"), sigma=PANEL_SIGMA
    )
    floors = DRIFT_FLOORS if not config.fast else DRIFT_FLOORS[1:3]
    thresholds = THRESHOLDS if not config.fast else THRESHOLDS[1:2]

    points = []
    for floor in floors:
        drift = DriftModel.from_spec(_drift_spec(floor), seed=config.seed)
        static = run_with_drift_control(
            app, n, drift, mode="static", noise=noise
        )
        oracle = run_with_drift_control(
            app, n, drift, mode="oracle", noise=noise
        )
        for threshold in thresholds:
            policy = DriftControlPolicy(threshold=threshold)
            controlled = run_with_drift_control(
                app, n, drift, policy, mode="controller", noise=noise
            )
            points.append(
                DriftSweepPoint(
                    floor=floor,
                    threshold=threshold,
                    static_time_s=static.total_time_s,
                    controller_time_s=controlled.total_time_s,
                    oracle_time_s=oracle.total_time_s,
                    repartitions=controlled.commits,
                    rejects=controlled.rejects,
                    blocks_migrated=controlled.blocks_migrated,
                )
            )

    # Hysteresis control: a stationary platform with the same measurement
    # noise must provoke no repartition attempts at all.
    quiet = run_with_drift_control(
        app,
        n,
        DriftModel.from_spec("", seed=config.seed),
        mode="controller",
        noise=noise,
    )
    return DriftAblationResult(
        n=n,
        device=THROTTLED_DEVICE,
        points=tuple(points),
        noise_repartitions=quiet.commits,
        noise_rejects=quiet.rejects,
    )


@register_experiment(
    "drift", run=run, kind="ablation", paper_refs=("Section II", "Section VI")
)
def format_result(result: DriftAblationResult) -> str:
    rows = [
        [
            f"{point.floor:.2f}",
            f"{point.threshold:.2f}",
            point.static_time_s,
            point.controller_time_s,
            point.oracle_time_s,
            point.repartitions,
            100 * point.gain_recovered,
        ]
        for point in result.points
    ]
    table = render_table(
        [
            "floor",
            "threshold",
            "static (s)",
            "controller (s)",
            "oracle (s)",
            "switches",
            "gain recovered (%)",
        ],
        rows,
        title=(
            f"Online repartitioning under a {result.device} throttle ramp, "
            f"{result.n}x{result.n} blocks"
        ),
    )
    oscillation = (
        "no repartitions under pure noise"
        if result.never_oscillates
        else (
            f"OSCILLATION: {result.noise_repartitions} commit(s) / "
            f"{result.noise_rejects} reject(s) under pure noise"
        )
    )
    return table + (
        f"\nworst cell recovers {100 * result.min_gain_recovered:.0f}% of "
        f"the oracle gain; {oscillation}"
    )
