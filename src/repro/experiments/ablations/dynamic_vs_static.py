"""Ablation: FPM static partitioning vs dynamic rebalancing (Section II).

The same iterative computation (one kernel run per compute unit per
iteration, ``n`` iterations) is executed three ways:

* **homogeneous static** — the even split, never changed;
* **dynamic** — starts even, observes per-iteration times, redistributes
  proportionally to observed speeds, paying a migration cost per block
  moved (reference [14]'s family);
* **FPM static** — the paper's approach: balanced from iteration one, no
  migration.

Expected: dynamic converges to (nearly) the FPM distribution, so its
steady-state iterations match — but the warm-up iterations and the data
migration put its total between homogeneous and FPM-static.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.app.matmul import PartitioningStrategy
from repro.core.dynamic import ThresholdRebalancer, run_dynamic_balancing
from repro.experiments.common import ExperimentConfig, make_app
from repro.experiments.registry import register_experiment
from repro.util.tables import render_table

MATRIX_SIZE = 60
#: one b x b block of C plus halo, over the node's shared memory (s/block).
MIGRATION_COST_PER_BLOCK = 0.0009


@dataclass(frozen=True)
class DynamicVsStaticResult:
    n: int
    homogeneous_time: float
    dynamic_time: float
    dynamic_migration_time: float
    dynamic_blocks_migrated: int
    fpm_time: float
    fpm_distribution: tuple[int, ...]
    dynamic_final_distribution: tuple[int, ...]

    @property
    def dynamic_converged_to_fpm(self) -> float:
        """L1 distance between the final dynamic and FPM distributions,
        as a fraction of the total workload."""
        total = sum(self.fpm_distribution)
        l1 = sum(
            abs(a - b)
            for a, b in zip(self.dynamic_final_distribution, self.fpm_distribution)
        )
        return l1 / total


def run(
    config: ExperimentConfig = ExperimentConfig(), n: int = MATRIX_SIZE
) -> DynamicVsStaticResult:
    """Compare the three balancing schemes on the paper's compute units."""
    app = make_app(config)
    units = app.compute_units()
    models = app.models_for(units)
    kernels = []
    for unit in units:
        if unit.kind == "gpu":
            kernels.append(app.bench.gpu_kernel(unit.gpu_index, config.gpu_version))
        else:
            gpu_here = bool(app.node.gpus_on_socket(unit.socket_index))
            kernels.append(
                app.bench.socket_kernel(
                    unit.socket_index, len(unit.member_ranks), gpu_active=gpu_here
                )
            )

    def time_of(i: int, blocks: int) -> float:
        return kernels[i].run_time(float(blocks))

    total = n * n

    homogeneous = run_dynamic_balancing(
        time_of,
        len(units),
        total,
        iterations=n,
        policy=_FrozenPolicy(),
    )
    dynamic = run_dynamic_balancing(
        time_of,
        len(units),
        total,
        iterations=n,
        policy=ThresholdRebalancer(threshold=1.05),
        migration_cost_per_block=MIGRATION_COST_PER_BLOCK,
    )
    fpm_plan = app.plan(n, PartitioningStrategy.FPM)
    fpm_static = run_dynamic_balancing(
        time_of,
        len(units),
        total,
        iterations=n,
        policy=_FrozenPolicy(),
        initial=list(fpm_plan.unit_allocations),
    )
    return DynamicVsStaticResult(
        n=n,
        homogeneous_time=homogeneous.total_time,
        dynamic_time=dynamic.total_time,
        dynamic_migration_time=dynamic.migration_time,
        dynamic_blocks_migrated=dynamic.blocks_migrated,
        fpm_time=fpm_static.total_time,
        fpm_distribution=tuple(fpm_plan.unit_allocations),
        dynamic_final_distribution=dynamic.final_distribution,
    )


class _FrozenPolicy:
    """A policy that never redistributes (pure static execution)."""

    def next_distribution(self, current, times, total):
        return list(current)


@register_experiment("dynamic_vs_static", run=run, kind="ablation", paper_refs=("Section II",))
def format_result(result: DynamicVsStaticResult) -> str:
    rows = [
        ["homogeneous static", result.homogeneous_time, 0.0, 0],
        [
            "dynamic (threshold)",
            result.dynamic_time,
            result.dynamic_migration_time,
            result.dynamic_blocks_migrated,
        ],
        ["FPM static", result.fpm_time, 0.0, 0],
    ]
    table = render_table(
        ["scheme", "total (s)", "migration (s)", "blocks moved"],
        rows,
        title=f"Dynamic vs static balancing, {result.n}x{result.n} blocks",
    )
    return table + (
        f"\ndynamic steady state within "
        f"{100 * result.dynamic_converged_to_fpm:.1f}% (L1) of the FPM "
        f"distribution"
    )
