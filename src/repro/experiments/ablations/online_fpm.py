"""Extension: online partial-FPM partitioning vs the full sweep.

Builds the hybrid node's models two ways and partitions a 60x60 problem:

* **full sweep** — every unit measured across the whole size grid up
  front (what the main experiments do);
* **online partial** — two bootstrap points per unit, then refinement only
  at each round's assigned sizes.

Reported: benchmark repetitions spent, rounds to convergence, and the L1
distance between the two final distributions.  Expected: the online loop
reaches (nearly) the same partition for a small fraction of the
measurement cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.app.matmul import PartitioningStrategy
from repro.experiments.common import ExperimentConfig, make_app
from repro.measurement.online import PartialFpmBuilder, online_partition
from repro.experiments.registry import register_experiment
from repro.util.tables import render_table

MATRIX_SIZE = 60


@dataclass(frozen=True)
class OnlineFpmResult:
    n: int
    full_repetitions: int
    online_repetitions: int
    online_rounds: int
    online_converged: bool
    full_allocations: tuple[int, ...]
    online_allocations: tuple[int, ...]

    @property
    def measurement_saving(self) -> float:
        """Fraction of the full sweep's repetitions the online loop saved."""
        return 1.0 - self.online_repetitions / self.full_repetitions

    @property
    def allocation_distance(self) -> float:
        """L1 distance between the distributions, relative to the total."""
        total = sum(self.full_allocations)
        return (
            sum(
                abs(a - b)
                for a, b in zip(self.full_allocations, self.online_allocations)
            )
            / total
        )


def run(
    config: ExperimentConfig = ExperimentConfig(), n: int = MATRIX_SIZE
) -> OnlineFpmResult:
    """Compare the full-sweep and online model-building strategies."""
    app = make_app(config)
    units = app.compute_units()
    full_models = app.models_for(units)
    full_reps = sum(m.repetitions_total for m in full_models)
    full_plan = app.plan(n, PartitioningStrategy.FPM)

    builders = []
    for unit in units:
        if unit.kind == "gpu":
            kernel = app.bench.gpu_kernel(unit.gpu_index, config.gpu_version)
        else:
            gpu_here = bool(app.node.gpus_on_socket(unit.socket_index))
            kernel = app.bench.socket_kernel(
                unit.socket_index, len(unit.member_ranks), gpu_active=gpu_here
            )
        builders.append(
            PartialFpmBuilder(bench=app.bench, kernel=kernel, name=unit.name)
        )
    online = online_partition(builders, n * n)

    return OnlineFpmResult(
        n=n,
        full_repetitions=full_reps,
        online_repetitions=online.repetitions_spent,
        online_rounds=online.num_rounds,
        online_converged=online.converged,
        full_allocations=tuple(full_plan.unit_allocations),
        online_allocations=online.allocations,
    )


@register_experiment("online_fpm", run=run, kind="ablation", paper_refs=())
def format_result(result: OnlineFpmResult) -> str:
    rows = [
        ["full sweep", result.full_repetitions, "-", "-"],
        [
            "online partial",
            result.online_repetitions,
            result.online_rounds,
            result.online_converged,
        ],
    ]
    table = render_table(
        ["strategy", "benchmark reps", "rounds", "converged"],
        rows,
        title=f"Online partial-FPM vs full sweep ({result.n}x{result.n} blocks)",
    )
    return table + (
        f"\nmeasurement saving {100 * result.measurement_saving:.0f}%, "
        f"final distributions within {100 * result.allocation_distance:.1f}% (L1)"
    )
