"""Ablation: the paper's near-square assumption, checked on the surface.

Section IV collapses problem size to the submatrix *area* because "the
speed of the kernel for a given matrix area x does not vary with the
nearly square shapes of submatrices".  Here the two-parameter speed
surface of the GTX680 is measured and the collapse quantified: speed
spread across aspect ratios at fixed area, for a near-square band (1:2 to
2:1 — the shapes the column-based geometry actually produces) and for
extreme strips (1:8 to 8:1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.surface import aspect_sensitivity, build_surface
from repro.experiments.common import ExperimentConfig, make_bench
from repro.experiments.registry import register_experiment
from repro.util.tables import render_table

GTX680_INDEX = 1
DEFAULT_AREAS = (400.0, 900.0, 2500.0, 6400.0)


@dataclass(frozen=True)
class AspectRatioResult:
    areas: tuple[float, ...]
    near_square_spread: tuple[float, ...]  # aspects 0.5..2
    extreme_spread: tuple[float, ...]  # aspects 0.125..8

    @property
    def worst_near_square(self) -> float:
        return max(self.near_square_spread)

    @property
    def worst_extreme(self) -> float:
        return max(self.extreme_spread)


def run(
    config: ExperimentConfig = ExperimentConfig(),
    areas: tuple[float, ...] = DEFAULT_AREAS,
) -> AspectRatioResult:
    """Measure the GTX680 kernel-rate surface and its aspect spreads."""
    bench = make_bench(config)
    gpu = bench.gpus[GTX680_INDEX]

    def rate(rows_blocks: float, cols_blocks: float) -> float:
        area = rows_blocks * cols_blocks
        return gpu.kernel_rate_gflops(area, aspect=rows_blocks / cols_blocks)

    # geometric axis resolving both the ramp and the largest tested area
    side = max(a for a in areas) ** 0.5
    points = max(6, config.sweep_points // 2)
    ratio = (side * 4 / 2.0) ** (1.0 / (points - 1))
    axis = [2.0 * ratio**i for i in range(points)]
    surface = build_surface(rate, axis, axis)

    near, extreme = [], []
    for area in areas:
        near.append(
            aspect_sensitivity(surface, area, aspects=[0.5, 1.0, 2.0])
        )
        extreme.append(
            aspect_sensitivity(surface, area, aspects=[0.125, 1.0, 8.0])
        )
    return AspectRatioResult(
        areas=tuple(areas),
        near_square_spread=tuple(near),
        extreme_spread=tuple(extreme),
    )


@register_experiment("aspect_ratio", run=run, kind="ablation", paper_refs=("Section IV",))
def format_result(result: AspectRatioResult) -> str:
    rows = [
        [round(a), f"{100 * n:.1f}%", f"{100 * e:.1f}%"]
        for a, n, e in zip(
            result.areas, result.near_square_spread, result.extreme_spread
        )
    ]
    table = render_table(
        ["area (blocks)", "spread, 1:2..2:1", "spread, 1:8..8:1"],
        rows,
        title="Aspect-ratio sensitivity of the GTX680 kernel rate",
    )
    return table + (
        f"\nnear-square shapes are equivalent to within "
        f"{100 * result.worst_near_square:.1f}% — the paper's area-only "
        f"collapse holds for the shapes the geometry produces; extreme "
        f"strips lose up to {100 * result.worst_extreme:.1f}%"
    )
