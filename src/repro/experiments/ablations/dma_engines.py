"""Ablation: overlap gain vs copy-engine count (the Fig. 4b hardware axis).

The paper observes that the GTX680 (two DMA engines, concurrent
bidirectional copies) gains more from kernel version 3 than the Tesla C870
(one engine).  Here the *same* GPU is simulated with one and with two
engines, isolating the hardware feature from every other difference
between the two cards.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

from repro.experiments.common import ExperimentConfig
from repro.kernels.gemm_gpu import gpu_kernel
from repro.platform.contention import CpuGpuInterference
from repro.platform.device import SimulatedGpu
from repro.platform.presets import geforce_gtx680
from repro.experiments.registry import register_experiment
from repro.util.tables import render_series
from repro.util.units import DEFAULT_BLOCKING_FACTOR


@dataclass(frozen=True)
class DmaEnginesResult:
    sizes: tuple[float, ...]
    gain_one_engine: tuple[float, ...]  # v3/v2 speedup - 1
    gain_two_engines: tuple[float, ...]

    def mean_gain(self, engines: int) -> float:
        series = self.gain_one_engine if engines == 1 else self.gain_two_engines
        return sum(series) / len(series)


def _gpu_with_engines(engines: int, block_size: int) -> SimulatedGpu:
    spec = dc_replace(geforce_gtx680(), dma_engines=engines)
    return SimulatedGpu(
        name=f"GTX680-{engines}dma",
        spec=spec,
        interference=CpuGpuInterference(),
        socket_cores=6,
        block_size=block_size,
    )


def run(
    config: ExperimentConfig = ExperimentConfig(),
    block_size: int = DEFAULT_BLOCKING_FACTOR,
) -> DmaEnginesResult:
    """Measure the v3-over-v2 gain for 1 and 2 copy engines."""
    gains = {}
    sizes = None
    for engines in (1, 2):
        gpu = _gpu_with_engines(engines, block_size)
        v2 = gpu_kernel(gpu, 2)
        v3 = gpu_kernel(gpu, 3)
        limit = v3.memory_limit_blocks
        points = max(4, config.sweep_points // 2)
        sizes = tuple(
            limit * (1.2 + 1.8 * i / (points - 1)) for i in range(points)
        )
        gains[engines] = tuple(
            v2.run_time(x) / v3.run_time(x) - 1.0 for x in sizes
        )
    return DmaEnginesResult(
        sizes=sizes,
        gain_one_engine=gains[1],
        gain_two_engines=gains[2],
    )


@register_experiment("dma_engines", run=run, kind="ablation", paper_refs=("Fig. 4b",))
def format_result(result: DmaEnginesResult) -> str:
    table = render_series(
        "blocks",
        [round(x) for x in result.sizes],
        {
            "gain 1 engine": result.gain_one_engine,
            "gain 2 engines": result.gain_two_engines,
        },
        title="Overlap gain (v3 over v2) vs DMA engine count, same GPU",
        precision=3,
    )
    return table + (
        f"\nmean gain: 1 engine {100 * result.mean_gain(1):.0f}%, "
        f"2 engines {100 * result.mean_gain(2):.0f}%"
    )
