"""Extension: hierarchical FPM partitioning across a heterogeneous cluster.

The paper's companion work (reference [6]) partitions between nodes of a
heterogeneous cluster using whole-node performance models.  This experiment
builds a three-node cluster from the library's device models —

* node A: the paper's full hybrid node (2 GPUs + 22 cores),
* node B: the CPU-only variant (24 cores),
* node C: a single socket with the Tesla C870 (a "small" hybrid node) —

derives each node's aggregate speed function, partitions a large workload
hierarchically, and checks the central property: the two-level solution
matches flat FPM partitioning over the union of all 12 compute units while
needing only 3 node models at the top level.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.hierarchical import hierarchical_partition
from repro.core.integer import makespan
from repro.core.solver import Solver
from repro.core.integer import round_partition
from repro.app.matmul import HybridMatMul
from repro.experiments.common import ExperimentConfig
from repro.platform.presets import cpu_only_node, ig_icl_node, tesla_c870
from repro.platform.spec import GpuAttachment, NodeSpec
from repro.experiments.registry import register_experiment
from repro.util.tables import render_table

MATRIX_SIZE = 100  # blocks; 10000 blocks across the cluster


def _small_hybrid_node() -> NodeSpec:
    base = ig_icl_node()
    return NodeSpec(
        name="small-hybrid",
        socket=base.socket,
        num_sockets=1,
        gpus=(GpuAttachment(gpu=tesla_c870(), socket_index=0),),
        block_size=base.block_size,
    )


@dataclass(frozen=True)
class ClusterResult:
    node_names: tuple[str, ...]
    node_allocations: tuple[int, ...]
    hierarchical_makespan: float
    flat_makespan: float
    agreement_l1: float  # fraction of total where the two solutions differ

    @property
    def hierarchy_overhead(self) -> float:
        """Hierarchical makespan relative to the flat optimum (>= ~1)."""
        return self.hierarchical_makespan / self.flat_makespan


def _node_models(config: ExperimentConfig, node: NodeSpec, max_blocks: float):
    app = HybridMatMul(
        node,
        seed=config.seed,
        noise_sigma=config.noise_sigma,
        gpu_version=config.gpu_version,
    )
    app.build_models(
        max_blocks=max_blocks,
        cpu_points=6 if config.fast else 10,
        gpu_points=8 if config.fast else 12,
        adaptive=False,
    )
    units = app.compute_units()
    return app.models_for(units)


def run(
    config: ExperimentConfig = ExperimentConfig(), n: int = MATRIX_SIZE
) -> ClusterResult:
    """Partition n^2 blocks across the three-node cluster, both ways."""
    total = n * n
    nodes = [
        ("hybrid-A", ig_icl_node()),
        ("cpu-B", cpu_only_node()),
        ("small-C", _small_hybrid_node()),
    ]
    per_node_models = [
        _node_models(config, node, float(total)) for _, node in nodes
    ]

    hier = hierarchical_partition(per_node_models, total)

    flat_models = [m for models in per_node_models for m in models]
    flat_cont = list(Solver().solve(flat_models, float(total)).allocations)
    flat_int = round_partition(flat_models, flat_cont, total)

    l1 = sum(abs(a - b) for a, b in zip(hier.flat, flat_int)) / total
    return ClusterResult(
        node_names=tuple(name for name, _ in nodes),
        node_allocations=hier.node_allocations,
        hierarchical_makespan=makespan(flat_models, hier.flat),
        flat_makespan=makespan(flat_models, flat_int),
        agreement_l1=l1,
    )


@register_experiment("hierarchical_cluster", run=run, kind="ablation", paper_refs=())
def format_result(result: ClusterResult) -> str:
    rows = [
        [name, alloc]
        for name, alloc in zip(result.node_names, result.node_allocations)
    ]
    table = render_table(
        ["node", "blocks"],
        rows,
        title="Hierarchical FPM partitioning over a 3-node cluster",
    )
    return table + (
        f"\nhierarchical vs flat makespan: "
        f"{result.hierarchical_makespan:.3f} vs {result.flat_makespan:.3f} "
        f"(overhead {100 * (result.hierarchy_overhead - 1):.2f}%), "
        f"allocation L1 distance {100 * result.agreement_l1:.2f}%"
    )
