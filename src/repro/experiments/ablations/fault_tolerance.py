"""Ablation: recovery overhead vs drop time under hard device faults.

The FPM partition is optimal for the full device set; when a device
drops mid-run (:mod:`repro.runtime.recovery`), the runtime re-solves the
partition over the survivors, migrates data, and replays the interrupted
panel.  This study sweeps *when* the paper's fastest device (the GTX680)
drops — as a fraction of the fault-free makespan — and compares the two
recovery strategies:

* **fpm** — re-run the functional-performance partitioner over the
  survivors' models (balanced from the first degraded panel);
* **observed** — redistribute proportionally to speeds observed under
  the pre-drop plan (model-free, the Section II dynamic scheme).

Expected: overhead grows roughly linearly with drop time (work executed
under the doomed plan is progressively wasted capacity), and the
model-based re-solve beats the observed one whenever the pre-drop
observations are a poor proxy for the degraded configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentConfig, make_app
from repro.experiments.registry import register_experiment
from repro.platform.faults import DeviceDrop
from repro.runtime.recovery import RecoveryPolicy, run_with_recovery
from repro.util.tables import render_table

MATRIX_SIZE = 40
#: the dropped device — the node's fastest, so the worst-case loss.
DROPPED_DEVICE = "GeForce GTX680"
#: drop times as fractions of the fault-free makespan.
DROP_FRACTIONS = (0.1, 0.25, 0.5, 0.75, 0.9)


@dataclass(frozen=True)
class FaultToleranceResult:
    n: int
    device: str
    fault_free_time_s: float
    drop_fractions: tuple[float, ...]
    fpm_overheads: tuple[float, ...]  # overhead_fraction per drop time
    observed_overheads: tuple[float, ...]
    fpm_blocks_migrated: tuple[int, ...]
    observed_blocks_migrated: tuple[int, ...]

    @property
    def fpm_wins(self) -> int:
        """At how many drop times the model-based re-solve is faster."""
        return sum(
            1
            for f, o in zip(self.fpm_overheads, self.observed_overheads)
            if f < o
        )

    @property
    def ties(self) -> int:
        """Drop times where both strategies land on the same makespan.

        With noiseless observations the rebalancer sees the models'
        exact speeds, so both re-solves can coincide — the interesting
        signal is then that the *model-free* scheme loses nothing."""
        return sum(
            1
            for f, o in zip(self.fpm_overheads, self.observed_overheads)
            if f == o
        )


def run(
    config: ExperimentConfig = ExperimentConfig(), n: int = MATRIX_SIZE
) -> FaultToleranceResult:
    """Sweep the drop time of the GTX680 under both recovery strategies."""
    app = make_app(config)
    fault_free = run_with_recovery(app, n, drops=()).fault_free_time_s

    fpm_over, obs_over = [], []
    fpm_moved, obs_moved = [], []
    for fraction in DROP_FRACTIONS:
        drop = DeviceDrop(time_s=fraction * fault_free, device=DROPPED_DEVICE)
        fpm = run_with_recovery(
            app, n, drops=(drop,), policy=RecoveryPolicy(strategy="fpm")
        )
        observed = run_with_recovery(
            app, n, drops=(drop,), policy=RecoveryPolicy(strategy="observed")
        )
        fpm_over.append(fpm.overhead_fraction)
        obs_over.append(observed.overhead_fraction)
        fpm_moved.append(fpm.blocks_migrated)
        obs_moved.append(observed.blocks_migrated)

    return FaultToleranceResult(
        n=n,
        device=DROPPED_DEVICE,
        fault_free_time_s=fault_free,
        drop_fractions=DROP_FRACTIONS,
        fpm_overheads=tuple(fpm_over),
        observed_overheads=tuple(obs_over),
        fpm_blocks_migrated=tuple(fpm_moved),
        observed_blocks_migrated=tuple(obs_moved),
    )


@register_experiment(
    "fault_tolerance", run=run, kind="ablation", paper_refs=("Section II",)
)
def format_result(result: FaultToleranceResult) -> str:
    rows = [
        [
            f"{fraction:.2f}",
            100 * fpm,
            fpm_moved,
            100 * obs,
            obs_moved,
        ]
        for fraction, fpm, fpm_moved, obs, obs_moved in zip(
            result.drop_fractions,
            result.fpm_overheads,
            result.fpm_blocks_migrated,
            result.observed_overheads,
            result.observed_blocks_migrated,
        )
    ]
    table = render_table(
        [
            "drop at (x makespan)",
            "fpm overhead (%)",
            "fpm moved",
            "observed overhead (%)",
            "observed moved",
        ],
        rows,
        title=(
            f"Recovery overhead after dropping {result.device}, "
            f"{result.n}x{result.n} blocks "
            f"(fault-free {result.fault_free_time_s:.3f} s)"
        ),
    )
    return table + (
        f"\nmodel-based re-solve faster at {result.fpm_wins}/"
        f"{len(result.drop_fractions)} drop times"
        f" ({result.ties} tie(s))"
    )
