"""Ablation: measurement noise vs partition quality.

FPMs are built from noisy timings; the Section III protocol repeats each
measurement until the Student-t confidence interval tightens.  This
ablation sweeps the platform's noise level and reports (a) how many
repetitions the protocol spends and (b) the *true* balance (evaluated with
noise-free device times) of the partition computed from the noisy models.

Expected: the repetition count grows with noise while the achieved
imbalance stays small — the protocol buys accuracy with repetitions —
until the repetition budget saturates at extreme noise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.app.matmul import HybridMatMul, PartitioningStrategy
from repro.experiments.common import ExperimentConfig
from repro.platform.presets import ig_icl_node
from repro.experiments.registry import register_experiment
from repro.util.tables import render_table

DEFAULT_SIGMAS = (0.0, 0.02, 0.05, 0.1, 0.2)
MATRIX_SIZE = 60


@dataclass(frozen=True)
class NoisePoint:
    sigma: float
    repetitions_total: int
    true_imbalance: float
    fpm_total_time: float


@dataclass(frozen=True)
class NoiseSensitivityResult:
    n: int
    points: tuple[NoisePoint, ...]

    def point(self, sigma: float) -> NoisePoint:
        for p in self.points:
            if abs(p.sigma - sigma) < 1e-12:
                return p
        raise KeyError(f"no point for sigma={sigma}")


def run(
    config: ExperimentConfig = ExperimentConfig(),
    sigmas: tuple[float, ...] = DEFAULT_SIGMAS,
    n: int = MATRIX_SIZE,
) -> NoiseSensitivityResult:
    """Sweep noise levels; evaluate partitions against the quiet platform."""
    quiet = HybridMatMul(
        ig_icl_node(), seed=config.seed, noise_sigma=0.0,
        gpu_version=config.gpu_version,
    )
    points = []
    for sigma in sigmas:
        app = HybridMatMul(
            ig_icl_node(),
            seed=config.seed,
            noise_sigma=sigma,
            gpu_version=config.gpu_version,
        )
        models = app.build_models(
            max_blocks=float(n * n),
            cpu_points=6 if config.fast else 10,
            gpu_points=8 if config.fast else 12,
            adaptive=False,
        )
        reps = sum(m.repetitions_total for m in models.values())
        plan = app.plan(n, PartitioningStrategy.FPM)
        # judge the noisy plan with noise-free execution
        quiet_result = _execute_on(quiet, plan)
        points.append(
            NoisePoint(
                sigma=sigma,
                repetitions_total=reps,
                true_imbalance=quiet_result.computation_imbalance,
                fpm_total_time=quiet_result.total_time,
            )
        )
    return NoiseSensitivityResult(n=n, points=tuple(points))


def _execute_on(app: HybridMatMul, plan):
    """Execute a plan from another app instance on this (quiet) platform."""
    from repro.app.execution import simulate_execution
    from repro.runtime.mpi_sim import SimulatedComm

    comm = SimulatedComm(app.binding.num_processes, app.comm_model)
    return simulate_execution(
        app.processes(), plan.partition, comm, app.node.block_size
    )


@register_experiment("noise_sensitivity", run=run, kind="ablation", paper_refs=())
def format_result(result: NoiseSensitivityResult) -> str:
    rows = [
        [p.sigma, p.repetitions_total, p.true_imbalance, p.fpm_total_time]
        for p in result.points
    ]
    return render_table(
        ["sigma", "benchmark reps", "true imbalance", "FPM time (s)"],
        rows,
        title=(
            f"Noise sensitivity of FPM building "
            f"({result.n}x{result.n} blocks)"
        ),
        precision=3,
    )
