"""Ablation: task-queue scheduling granularity vs FPM static partitioning.

One kernel run's workload (the 60x60 problem's 3600 blocks) is executed by
a central task queue at several chunk sizes and compared with the FPM
static distribution.  Expected U-shape over chunk size — fine chunks pay
overhead and starve the GPUs' size-dependent efficiency, coarse chunks
quantise badly — with FPM static at or below the best of them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.app.matmul import PartitioningStrategy
from repro.core.scheduling import simulate_work_stealing, static_reference_makespan
from repro.experiments.common import ExperimentConfig, make_app
from repro.experiments.registry import register_experiment
from repro.util.tables import render_table

MATRIX_SIZE = 60
DEFAULT_CHUNKS = (8, 32, 128, 512, 1024)


@dataclass(frozen=True)
class TaskGranularityResult:
    n: int
    chunks: tuple[int, ...]
    makespans: tuple[float, ...]
    gpu_share: tuple[float, ...]  # fraction of blocks the GTX680 processed
    fpm_makespan: float

    @property
    def best_chunk(self) -> int:
        i = min(range(len(self.chunks)), key=lambda j: self.makespans[j])
        return self.chunks[i]

    @property
    def best_makespan(self) -> float:
        return min(self.makespans)

    def makespan_of(self, chunk: int) -> float:
        return self.makespans[self.chunks.index(chunk)]


def run(
    config: ExperimentConfig = ExperimentConfig(),
    n: int = MATRIX_SIZE,
    chunks: tuple[int, ...] = DEFAULT_CHUNKS,
) -> TaskGranularityResult:
    """Sweep the task chunk size on the hybrid node's units."""
    app = make_app(config)
    units = app.compute_units()
    kernels = []
    gtx_index = None
    for i, unit in enumerate(units):
        if unit.kind == "gpu":
            kernels.append(app.bench.gpu_kernel(unit.gpu_index, config.gpu_version))
            if "GTX680" in unit.name:
                gtx_index = i
        else:
            gpu_here = bool(app.node.gpus_on_socket(unit.socket_index))
            kernels.append(
                app.bench.socket_kernel(
                    unit.socket_index, len(unit.member_ranks), gpu_active=gpu_here
                )
            )

    total = n * n
    makespans, gpu_shares = [], []
    for chunk in chunks:
        result = simulate_work_stealing(kernels, total, chunk)
        makespans.append(result.makespan)
        gpu_shares.append(result.blocks_per_device[gtx_index] / total)

    fpm_plan = app.plan(n, PartitioningStrategy.FPM)
    fpm = static_reference_makespan(kernels, list(fpm_plan.unit_allocations))
    return TaskGranularityResult(
        n=n,
        chunks=tuple(chunks),
        makespans=tuple(makespans),
        gpu_share=tuple(gpu_shares),
        fpm_makespan=fpm,
    )


@register_experiment("task_granularity", run=run, kind="ablation", paper_refs=())
def format_result(result: TaskGranularityResult) -> str:
    rows = [
        [chunk, span, f"{100 * share:.0f}%"]
        for chunk, span, share in zip(
            result.chunks, result.makespans, result.gpu_share
        )
    ]
    rows.append(["FPM static", result.fpm_makespan, "-"])
    table = render_table(
        ["chunk (blocks)", "one-run makespan (s)", "GTX680 share"],
        rows,
        title=(
            f"Task-queue granularity vs FPM static "
            f"({result.n}x{result.n} blocks, one kernel run)"
        ),
    )
    return table + (
        f"\nbest chunk {result.best_chunk}: {result.best_makespan:.3f}s; "
        f"FPM static {result.fpm_makespan:.3f}s"
    )
