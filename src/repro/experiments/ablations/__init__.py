"""Ablation studies beyond the paper's published evaluation.

The paper argues several design points qualitatively; these experiments
quantify them on the simulated platform:

* :mod:`blocking_factor` — the Section V trade-off: larger ``b`` feeds the
  GEMM kernels and cuts out-of-core traffic, but coarsens the partition.
* :mod:`dynamic_vs_static` — Section II's static-vs-dynamic comparison:
  model-free iterative rebalancing converges to the FPM distribution but
  pays warm-up iterations and data migration.
* :mod:`noise_sensitivity` — how measurement noise propagates through the
  reliability protocol into partition quality.
* :mod:`cpm_calibration` — no single CPM calibration size balances all
  problem sizes (why Table III's failure is structural, not a bad choice).
* :mod:`dma_engines` — the Fig. 4b hardware axis: overlap gain vs the
  number of copy engines.
* :mod:`hierarchical_cluster` — the reference-[6] extension: whole-node
  aggregate FPMs and two-level partitioning across a heterogeneous
  cluster.
* :mod:`online_fpm` — partial FPMs built online, refined only at assigned
  sizes; same partition, a fraction of the measurement cost.
* :mod:`task_granularity` — fine-grained task-queue scheduling vs FPM
  static: the chunk-size U-shape and where the model-based answer sits.
* :mod:`gpu_kernel_version` — Fig. 3's kernel engineering measured at
  application level, with the FPM re-partitioning around each version.
* :mod:`aspect_ratio` — the Section IV near-square assumption checked on
  a two-parameter speed surface.
* :mod:`comm_aware` — whether communication-aware allocation refinement
  would beat the paper's computation-only partitioning (it does not: the
  broadcast term grows as sqrt of the allocation, so the simplification
  is robust even at 40x the communication cost).
* :mod:`fault_tolerance` — recovery overhead vs drop time when a device
  hard-fails mid-run and the runtime re-solves the partition over the
  survivors (model-based vs observed-speed re-solve).
* :mod:`drift` — online repartitioning under time-varying device speed:
  the hysteresis-gated controller vs the static partition and an
  oracle, swept over throttle magnitude and detection threshold.
"""

from repro.experiments.ablations import (
    aspect_ratio,
    blocking_factor,
    comm_aware,
    cpm_calibration,
    dma_engines,
    drift,
    dynamic_vs_static,
    fault_tolerance,
    gpu_kernel_version,
    hierarchical_cluster,
    noise_sensitivity,
    online_fpm,
    task_granularity,
)

__all__ = [
    "aspect_ratio",
    "blocking_factor",
    "comm_aware",
    "cpm_calibration",
    "dma_engines",
    "drift",
    "dynamic_vs_static",
    "fault_tolerance",
    "gpu_kernel_version",
    "hierarchical_cluster",
    "noise_sensitivity",
    "online_fpm",
    "task_granularity",
]
