"""Ablation: the blocking factor ``b`` (paper Section V discussion).

The element-size of the product is held fixed (25600 x 25600 — the paper's
40x40 blocks at b = 640) while ``b`` sweeps.  Small ``b`` starves the GEMM
kernels and multiplies per-iteration overheads; large ``b`` coarsens the
block grid until the partitioner cannot balance the heterogeneous devices.
The expected curve is U-shaped with its basin around the paper's b = 640.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.app.matmul import HybridMatMul, PartitioningStrategy
from repro.experiments.common import ExperimentConfig
from repro.platform.presets import ig_icl_node
from repro.experiments.registry import register_experiment
from repro.util.tables import render_table
from repro.util.units import DEFAULT_BLOCKING_FACTOR

#: Blocking factors dividing the fixed 25600-element matrix side: the
#: paper's b and two octaves to either side.
DEFAULT_FACTORS = (
    DEFAULT_BLOCKING_FACTOR // 4,
    DEFAULT_BLOCKING_FACTOR // 2,
    DEFAULT_BLOCKING_FACTOR,
    DEFAULT_BLOCKING_FACTOR * 2,
    DEFAULT_BLOCKING_FACTOR * 4,
)
MATRIX_ELEMS = 25600


@dataclass(frozen=True)
class BlockingFactorResult:
    factors: tuple[int, ...]
    n_blocks: tuple[int, ...]
    total_times: tuple[float, ...]
    imbalances: tuple[float, ...]

    @property
    def best_factor(self) -> int:
        i = min(range(len(self.factors)), key=lambda j: self.total_times[j])
        return self.factors[i]

    def time_of(self, factor: int) -> float:
        return self.total_times[self.factors.index(factor)]


def run(
    config: ExperimentConfig = ExperimentConfig(),
    factors: tuple[int, ...] = DEFAULT_FACTORS,
    matrix_elems: int = MATRIX_ELEMS,
) -> BlockingFactorResult:
    """Sweep the blocking factor at a fixed element-size product."""
    times, imbalances, ns = [], [], []
    for b in factors:
        if matrix_elems % b:
            raise ValueError(f"blocking factor {b} does not divide {matrix_elems}")
        n = matrix_elems // b
        app = HybridMatMul(
            ig_icl_node(block_size=b),
            seed=config.seed,
            noise_sigma=config.noise_sigma,
            gpu_version=config.gpu_version,
        )
        app.build_models(
            max_blocks=float(n * n),
            cpu_points=6 if config.fast else 10,
            gpu_points=8 if config.fast else 12,
            adaptive=not config.fast,
        )
        _, result = app.run(n, PartitioningStrategy.FPM)
        ns.append(n)
        times.append(result.total_time)
        imbalances.append(result.computation_imbalance)
    return BlockingFactorResult(
        factors=tuple(factors),
        n_blocks=tuple(ns),
        total_times=tuple(times),
        imbalances=tuple(imbalances),
    )


@register_experiment("blocking_factor", run=run, kind="ablation", paper_refs=("Section V",))
def format_result(result: BlockingFactorResult) -> str:
    rows = [
        [b, n, t, imb]
        for b, n, t, imb in zip(
            result.factors, result.n_blocks, result.total_times, result.imbalances
        )
    ]
    table = render_table(
        ["b", "n (blocks)", "FPM time (s)", "imbalance"],
        rows,
        title=(
            f"Blocking-factor ablation ({MATRIX_ELEMS}x{MATRIX_ELEMS} elements, "
            "FPM partitioning)"
        ),
    )
    return table + f"\nbest blocking factor: b = {result.best_factor}"
