"""Ablation: communication-aware allocation refinement.

The paper partitions on computation alone and lets the column-based
geometry keep communication low — sound on its platform, where broadcasts
are a small fraction of the iteration.  This study asks when that stops
being enough: the interconnect bandwidth is swept downward and the plain
FPM plan is compared against the same plan post-processed by
:func:`repro.core.comm_aware.comm_aware_refinement` (which trades compute
balance against the largest rectangle's broadcast perimeter).

Finding (a negative result worth having): the refinement leaves the
allocation essentially untouched across the whole sweep.  The broadcast
term grows only with the *square root* of the largest allocation while
compute grows linearly, so shaving the dominant rectangle never pays —
even at 40x the paper's communication cost.  The paper's
computation-only partitioning is not merely convenient; within this
application's communication structure it is already communication-robust,
and the experiment quantifies that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.app.matmul import PartitioningStrategy
from repro.core.comm_aware import comm_aware_refinement
from repro.experiments.common import ExperimentConfig, make_app
from repro.runtime.mpi_sim import CommModel
from repro.util.units import blocks_to_bytes, gemm_kernel_flops
from repro.experiments.registry import register_experiment
from repro.util.tables import render_table

MATRIX_SIZE = 60
DEFAULT_BANDWIDTHS = (2.0, 0.2, 0.05)  # GB/s


@dataclass(frozen=True)
class CommAwareResult:
    n: int
    bandwidths_gbs: tuple[float, ...]
    plain_times: tuple[float, ...]
    refined_times: tuple[float, ...]
    blocks_moved: tuple[int, ...]

    def saving(self, bandwidth: float) -> float:
        i = self.bandwidths_gbs.index(bandwidth)
        return 1.0 - self.refined_times[i] / self.plain_times[i]


def run(
    config: ExperimentConfig = ExperimentConfig(),
    n: int = MATRIX_SIZE,
    bandwidths: tuple[float, ...] = DEFAULT_BANDWIDTHS,
) -> CommAwareResult:
    """Sweep interconnect bandwidth; compare plain vs refined FPM plans."""
    app = make_app(config)
    units = app.compute_units()
    models = app.models_for(units)
    base_plan = app.plan(n, PartitioningStrategy.FPM)
    block_size = app.node.block_size
    # model time unit -> seconds: one model time unit is block/GFlops,
    # and one block's kernel work is 2 b^3 flops
    unit_time_scale = gemm_kernel_flops(1.0, block_size) / 1e9

    plain, refined, moved = [], [], []
    for bw in bandwidths:
        app.comm_model = CommModel(bandwidth_gbs=bw)
        plain_result = app.execute(base_plan)
        beta = (
            blocks_to_bytes(1.0, block_size) / (bw * 1e9)
        ) / unit_time_scale
        adjusted = comm_aware_refinement(
            models, list(base_plan.unit_allocations), beta=beta
        )
        refined_plan = app.plan_from_unit_allocations(n, adjusted)
        refined_result = app.execute(refined_plan)
        plain.append(plain_result.total_time)
        refined.append(refined_result.total_time)
        moved.append(
            sum(
                abs(a - b)
                for a, b in zip(adjusted, base_plan.unit_allocations)
            )
            // 2
        )
    return CommAwareResult(
        n=n,
        bandwidths_gbs=tuple(bandwidths),
        plain_times=tuple(plain),
        refined_times=tuple(refined),
        blocks_moved=tuple(moved),
    )


@register_experiment("comm_aware", run=run, kind="ablation", paper_refs=())
def format_result(result: CommAwareResult) -> str:
    rows = [
        [bw, p, r, m, f"{100 * (1 - r / p):.1f}%"]
        for bw, p, r, m in zip(
            result.bandwidths_gbs,
            result.plain_times,
            result.refined_times,
            result.blocks_moved,
        )
    ]
    return render_table(
        ["bandwidth (GB/s)", "plain FPM (s)", "comm-aware (s)", "blocks moved", "saving"],
        rows,
        title=(
            f"Communication-aware refinement vs interconnect bandwidth "
            f"({result.n}x{result.n} blocks)"
        ),
    )
