"""Ablation: can the CPM be rescued by a better calibration size?

Table III shows the CPM (calibrated on an in-memory even split) failing at
large problems.  The obvious retort — "calibrate on a larger problem!" —
is what this ablation tests: constants derived at several calibration
totals, each evaluated across the full problem range.

Expected: every calibration size is good *near itself* and bad elsewhere
(a large calibration under-uses the GPU on small, resident problems; a
small one overloads it on large problems).  The FPM column dominates or
matches everywhere — the failure is structural to constants, not a tuning
mistake.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.app.matmul import PartitioningStrategy
from repro.experiments.common import ExperimentConfig, make_app
from repro.experiments.registry import register_experiment
from repro.util.tables import render_table

DEFAULT_CALIBRATIONS = (400.0, 1600.0, 4900.0)
DEFAULT_SIZES = (30, 40, 50, 60, 70)


@dataclass(frozen=True)
class CpmCalibrationResult:
    sizes: tuple[int, ...]
    calibrations: tuple[float, ...]
    #: cpm_times[calibration index][size index]
    cpm_times: tuple[tuple[float, ...], ...]
    fpm_times: tuple[float, ...]

    def cpm_time(self, calibration: float, n: int) -> float:
        i = self.calibrations.index(calibration)
        j = self.sizes.index(n)
        return self.cpm_times[i][j]

    def fpm_time(self, n: int) -> float:
        return self.fpm_times[self.sizes.index(n)]

    def regret(self, calibration: float) -> float:
        """Worst-case CPM/FPM time ratio across the size range."""
        i = self.calibrations.index(calibration)
        return max(
            c / f for c, f in zip(self.cpm_times[i], self.fpm_times)
        )


def run(
    config: ExperimentConfig = ExperimentConfig(),
    calibrations: tuple[float, ...] = DEFAULT_CALIBRATIONS,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
) -> CpmCalibrationResult:
    """Evaluate CPM partitions from several calibration sizes."""
    app = make_app(config)
    fpm_times = []
    for n in sizes:
        _, r = app.run(n, PartitioningStrategy.FPM)
        fpm_times.append(r.total_time)
    cpm_times = []
    for cal in calibrations:
        row = []
        for n in sizes:
            plan = app.plan(
                n, PartitioningStrategy.CPM, cpm_calibration_total=cal
            )
            row.append(app.execute(plan).total_time)
        cpm_times.append(tuple(row))
    return CpmCalibrationResult(
        sizes=tuple(sizes),
        calibrations=tuple(calibrations),
        cpm_times=tuple(cpm_times),
        fpm_times=tuple(fpm_times),
    )


@register_experiment("cpm_calibration", run=run, kind="ablation", paper_refs=("Table III",))
def format_result(result: CpmCalibrationResult) -> str:
    headers = ["n"] + [
        f"CPM@{cal:.0f} (s)" for cal in result.calibrations
    ] + ["FPM (s)"]
    rows = [
        [n]
        + [result.cpm_times[i][j] for i in range(len(result.calibrations))]
        + [result.fpm_times[j]]
        for j, n in enumerate(result.sizes)
    ]
    table = render_table(
        headers,
        rows,
        title="CPM calibration-size ablation (execution time)",
        precision=1,
    )
    regrets = ", ".join(
        f"@{cal:.0f}: {result.regret(cal):.2f}x"
        for cal in result.calibrations
    )
    return table + f"\nworst-case CPM/FPM ratio per calibration — {regrets}"
