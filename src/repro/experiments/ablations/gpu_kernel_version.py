"""Ablation: what the GPU kernel engineering buys at application level.

Fig. 3 compares the kernel versions in isolation; this study runs the
*whole application* (hybrid FPM partitioning included) with the GPUs using
version 1, 2 or 3.  Because the FPM is rebuilt per version, the
partitioner adapts: a slower GPU kernel simply earns the GPU a smaller
share — so the application-level gap between versions is smaller than the
kernel-level gap, which is itself a nice property of model-based
partitioning (bad kernels degrade gracefully instead of unbalancing).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.app.matmul import HybridMatMul, PartitioningStrategy
from repro.experiments.common import ExperimentConfig
from repro.platform.presets import ig_icl_node
from repro.experiments.registry import register_experiment
from repro.util.tables import render_table

DEFAULT_SIZES = (40, 60)


@dataclass(frozen=True)
class KernelVersionResult:
    sizes: tuple[int, ...]
    #: times[version - 1][size index]
    times: tuple[tuple[float, ...], ...]
    #: GTX680 block share under each version, at the largest size
    gtx_share: tuple[float, ...]

    def time_of(self, version: int, n: int) -> float:
        return self.times[version - 1][self.sizes.index(n)]

    def app_gain_v3_over_v1(self, n: int) -> float:
        return self.time_of(1, n) / self.time_of(3, n) - 1.0


def run(
    config: ExperimentConfig = ExperimentConfig(),
    sizes: tuple[int, ...] = DEFAULT_SIZES,
) -> KernelVersionResult:
    """Run the hybrid FPM application with each GPU kernel version."""
    times = []
    shares = []
    for version in (1, 2, 3):
        app = HybridMatMul(
            ig_icl_node(),
            seed=config.seed,
            noise_sigma=config.noise_sigma,
            gpu_version=version,
        )
        app.build_models(
            max_blocks=float(max(sizes) ** 2),
            cpu_points=8 if config.fast else 12,
            gpu_points=10 if config.fast else 16,
            adaptive=not config.fast,
        )
        row = []
        share = 0.0
        for n in sizes:
            plan, result = app.run(n, PartitioningStrategy.FPM)
            row.append(result.total_time)
            share = plan.allocation_of("GeForce GTX680") / (n * n)
        times.append(tuple(row))
        shares.append(share)
    return KernelVersionResult(
        sizes=tuple(sizes), times=tuple(times), gtx_share=tuple(shares)
    )


@register_experiment("gpu_kernel_version", run=run, kind="ablation", paper_refs=("Fig. 3",))
def format_result(result: KernelVersionResult) -> str:
    rows = [
        [f"v{version}"]
        + [result.time_of(version, n) for n in result.sizes]
        + [f"{100 * result.gtx_share[version - 1]:.0f}%"]
        for version in (1, 2, 3)
    ]
    big = result.sizes[-1]
    table = render_table(
        ["GPU kernel"]
        + [f"{n}x{n} (s)" for n in result.sizes]
        + [f"GTX680 share @{big}"],
        rows,
        title="Application time vs GPU kernel version (hybrid, FPM)",
        precision=1,
    )
    return table + (
        f"\napplication-level gain of v3 over v1 at {big}x{big}: "
        f"{100 * result.app_gain_v3_over_v1(big):.0f}% "
        f"(the FPM re-partitions around slower kernels)"
    )
