"""Second-application experiment: FPM partitioning of a Jacobi solver.

The paper's claim that FPMs work "with any data-parallel application"
(Section II) is exercised on a memory-bound 5-point stencil — a completely
different performance regime from GEMM:

* socket speed is bandwidth-bound, so S5 and S6 are nearly identical
  (the sixth core adds no DRAM bandwidth) — unlike Fig. 2;
* the GPU/socket speed ratio is much larger in the resident range (device
  memory bandwidth vs DDR2) and collapses harder out-of-core;
* consequently the balanced distribution pins the GPUs near their memory
  capacity, where for GEMM they ranged far beyond it.

Reported: per-strategy execution times, unit allocations, and the
GEMM-vs-stencil allocation contrast for the same node.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.app.jacobi import JacobiApp
from repro.experiments.common import ExperimentConfig
from repro.platform.presets import ig_icl_node
from repro.experiments.registry import register_experiment
from repro.util.tables import render_table

GRID_ROWS = 60_000
GRID_WIDTH = 16_384
ITERATIONS = 100


@dataclass(frozen=True)
class JacobiExperimentResult:
    rows: int
    width: int
    iterations: int
    unit_names: tuple[str, ...]
    fpm_allocations: tuple[int, ...]
    fpm_time: float
    fpm_imbalance: float
    cpm_time: float
    homogeneous_time: float
    gtx_capacity_rows: float

    @property
    def fpm_speedup_vs_homogeneous(self) -> float:
        return self.homogeneous_time / self.fpm_time

    @property
    def fpm_speedup_vs_cpm(self) -> float:
        return self.cpm_time / self.fpm_time

    def allocation_of(self, unit_name: str) -> int:
        return self.fpm_allocations[self.unit_names.index(unit_name)]


def run(
    config: ExperimentConfig = ExperimentConfig(),
    rows: int = GRID_ROWS,
    width: int = GRID_WIDTH,
    iterations: int = ITERATIONS,
) -> JacobiExperimentResult:
    """Balance the Jacobi solver on the paper's node, three ways."""
    app = JacobiApp(
        ig_icl_node(),
        width=width,
        seed=config.seed,
        noise_sigma=config.noise_sigma,
    )
    app.build_models(max_rows=float(2 * rows), points=8 if config.fast else 12)

    fpm_part, fpm_res = app.run(rows, iterations, "fpm")
    _, cpm_res = app.run(rows, iterations, "cpm")
    _, hom_res = app.run(rows, iterations, "homogeneous")

    kernels = app.unit_kernels()
    gtx = kernels["GeForce GTX680"]
    return JacobiExperimentResult(
        rows=rows,
        width=width,
        iterations=iterations,
        unit_names=tuple(kernels.keys()),
        fpm_allocations=tuple(fpm_part.rows_per_unit),
        fpm_time=fpm_res.total_time,
        fpm_imbalance=fpm_res.imbalance,
        cpm_time=cpm_res.total_time,
        homogeneous_time=hom_res.total_time,
        gtx_capacity_rows=gtx.resident_capacity_rows,
    )


@register_experiment("jacobi", run=run, kind="app", paper_refs=())
def format_result(result: JacobiExperimentResult) -> str:
    rows = [
        [name, alloc]
        for name, alloc in zip(result.unit_names, result.fpm_allocations)
    ]
    table = render_table(
        ["unit", "rows"],
        rows,
        title=(
            f"Jacobi solver ({result.rows} x {result.width} grid, "
            f"{result.iterations} iterations): FPM strip allocation"
        ),
    )
    return table + (
        f"\nGTX680 stencil capacity ~ {result.gtx_capacity_rows:.0f} rows"
        f"\nexecution: FPM {result.fpm_time:.1f}s "
        f"(imbalance {result.fpm_imbalance:.2f}), "
        f"CPM {result.cpm_time:.1f}s, "
        f"homogeneous {result.homogeneous_time:.1f}s — "
        f"FPM is {result.fpm_speedup_vs_homogeneous:.2f}x homogeneous, "
        f"{result.fpm_speedup_vs_cpm:.1f}x CPM"
    )
