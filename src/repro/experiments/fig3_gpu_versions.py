"""Figure 3 — GeForce GTX680 speed functions for kernel versions 1/2/3.

Measured on the GPU plus its dedicated core with the other cores idle.
Expected shape: version 2 doubles version 1 while the problem is
device-resident; past the memory limit (~1200 blocks) version 2 drops
sharply (serial out-of-core transfers) to around or below version 1;
version 3's overlap recovers a substantial part of the drop (~30% gain
near the limit, growing with size on this two-DMA device).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentConfig, make_bench
from repro.measurement.fpm_builder import SizeGrid
from repro.experiments.registry import register_experiment
from repro.util.tables import render_series

#: Index of the GTX680 in the preset node's GPU attachment order.
GTX680_INDEX = 1


@dataclass(frozen=True)
class Fig3Result:
    """Three measured speed series and the device's memory limit."""

    sizes: tuple[float, ...]
    v1: tuple[float, ...]
    v2: tuple[float, ...]
    v3: tuple[float, ...]
    memory_limit_blocks: float

    def in_core_sizes(self) -> list[int]:
        return [
            i for i, x in enumerate(self.sizes) if x <= self.memory_limit_blocks
        ]

    def out_of_core_sizes(self) -> list[int]:
        return [
            i for i, x in enumerate(self.sizes) if x > self.memory_limit_blocks
        ]


def run(
    config: ExperimentConfig = ExperimentConfig(), gpu_index: int = GTX680_INDEX
) -> Fig3Result:
    """Measure the three kernel versions across the figure's size range."""
    bench = make_bench(config)
    grid = SizeGrid.linear(40.0, 4200.0, config.sweep_points)
    limit = bench.gpu_kernel(gpu_index, 3).memory_limit_blocks
    series = {
        version: [
            m.speed_gflops
            for m in bench.measure_speeds(
                bench.gpu_kernel(gpu_index, version), grid.sizes
            )
        ]
        for version in (1, 2, 3)
    }
    return Fig3Result(
        sizes=grid.sizes,
        v1=tuple(series[1]),
        v2=tuple(series[2]),
        v3=tuple(series[3]),
        memory_limit_blocks=limit,
    )


@register_experiment("fig3", run=run, kind="figure", paper_refs=("Fig. 3", "Fig. 4a"))
def format_result(result: Fig3Result) -> str:
    """Render the figure's three series as a table (GFlops)."""
    table = render_series(
        "blocks",
        [round(x) for x in result.sizes],
        {
            "v1 (GFlops)": result.v1,
            "v2 (GFlops)": result.v2,
            "v3 (GFlops)": result.v3,
        },
        title="Figure 3: GTX680 kernel versions (b=640, SP)",
        precision=1,
    )
    return table + f"\nmemory limit ~ {result.memory_limit_blocks:.0f} blocks"
