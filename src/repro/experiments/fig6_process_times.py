"""Figure 6 — per-process computation time at 60x60, CPM vs FPM.

The paper binds rank 0 to the Tesla C870's dedicated core and rank 6 to
the GTX680's, and plots each rank's accumulated computation time
(communication excluded).  Under CPM partitioning the GTX680 process
straggles far above the rest; under FPM all 24 bars are nearly level and
the total computation time drops by ~40%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.app.matmul import PartitioningStrategy
from repro.experiments.common import ExperimentConfig, make_app
from repro.experiments.registry import register_experiment
from repro.util.tables import render_table

MATRIX_SIZE = 60


@dataclass(frozen=True)
class Fig6Result:
    """Per-rank computation times under both strategies."""

    n: int
    cpm_times: tuple[float, ...]
    fpm_times: tuple[float, ...]
    dedicated_ranks: tuple[int, ...]  # (C870 rank, GTX680 rank)

    @property
    def cpm_makespan(self) -> float:
        return max(self.cpm_times)

    @property
    def fpm_makespan(self) -> float:
        return max(self.fpm_times)

    @property
    def computation_cut(self) -> float:
        """Fractional reduction of the computation makespan by FPM."""
        return 1.0 - self.fpm_makespan / self.cpm_makespan

    def straggler_rank(self, times: tuple[float, ...]) -> int:
        return max(range(len(times)), key=lambda r: times[r])

    def imbalance(self, times: tuple[float, ...]) -> float:
        positive = [t for t in times if t > 0]
        return max(positive) / min(positive) if positive else 1.0


def run(
    config: ExperimentConfig = ExperimentConfig(), n: int = MATRIX_SIZE
) -> Fig6Result:
    """Simulate both strategies and collect per-rank computation times."""
    app = make_app(config)
    _, cpm_res = app.run(n, PartitioningStrategy.CPM)
    _, fpm_res = app.run(n, PartitioningStrategy.FPM)
    return Fig6Result(
        n=n,
        cpm_times=cpm_res.computation_time,
        fpm_times=fpm_res.computation_time,
        dedicated_ranks=tuple(app.binding.dedicated_ranks()),
    )


@register_experiment("fig6", run=run, kind="figure", paper_refs=("Fig. 6",))
def format_result(result: Fig6Result) -> str:
    """Render the two bar charts as a rank table plus the headline cut."""
    rows = [
        [
            rank,
            result.cpm_times[rank],
            result.fpm_times[rank],
            (
                "C870"
                if rank == result.dedicated_ranks[0]
                else "GTX680"
                if rank == result.dedicated_ranks[1]
                else ""
            ),
        ]
        for rank in range(len(result.cpm_times))
    ]
    table = render_table(
        ["rank", "CPM comp (s)", "FPM comp (s)", "device"],
        rows,
        title=f"Figure 6: per-process computation time, {result.n}x{result.n}",
        precision=1,
    )
    return (
        table
        + f"\nCPM makespan {result.cpm_makespan:.1f}s"
        + f" (imbalance {result.imbalance(result.cpm_times):.2f}), "
        + f"FPM makespan {result.fpm_makespan:.1f}s"
        + f" (imbalance {result.imbalance(result.fpm_times):.2f}); "
        + f"FPM cuts computation time by {100 * result.computation_cut:.0f}%"
    )
