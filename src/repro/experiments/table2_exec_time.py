"""Table II — execution time of the parallel matrix multiplication.

Three configurations for n = 40, 50, 60, 70 blocks (b = 640):

* 24 CPU cores, homogeneous distribution;
* GeForce GTX680 + its dedicated core, alone;
* the full hybrid (22 CPU cores + 2 GPUs + 2 dedicated cores) with
  FPM-based partitioning.

Expected shape: the GTX680 alone beats the CPUs while the problem fits its
memory (40x40), loses past it; the hybrid-FPM configuration wins at every
size by a wide margin (paper: ~3.7x over CPUs at 40x40, ~2.2x at 70x70).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.app.matmul import PartitioningStrategy
from repro.experiments.common import (
    ExperimentConfig,
    make_app,
    make_bench,
    make_cpu_only_app,
)
from repro.experiments.paper_data import (
    TABLE2_CPUS_ONLY,
    TABLE2_GTX680_ONLY,
    TABLE2_HYBRID_FPM,
    TABLE2_SIZES,
)
from repro.experiments.registry import register_experiment
from repro.util.tables import render_table

GTX680_INDEX = 1


@dataclass(frozen=True)
class Table2Result:
    """Measured execution times (seconds) per configuration."""

    sizes: tuple[int, ...]
    cpus_only: tuple[float, ...]
    gtx680_only: tuple[float, ...]
    hybrid_fpm: tuple[float, ...]

    def row(self, n: int) -> tuple[float, float, float]:
        i = self.sizes.index(n)
        return (self.cpus_only[i], self.gtx680_only[i], self.hybrid_fpm[i])


def run(
    config: ExperimentConfig = ExperimentConfig(),
    sizes: tuple[int, ...] = TABLE2_SIZES,
) -> Table2Result:
    """Simulate all three configurations across the table's sizes."""
    cpu_app = make_cpu_only_app(config)
    hybrid_app = make_app(config)
    bench = make_bench(config)
    gtx_kernel = bench.gpu_kernel(GTX680_INDEX, config.gpu_version)

    cpus, gtx, hybrid = [], [], []
    for n in sizes:
        _, cpu_res = cpu_app.run(n, PartitioningStrategy.HOMOGENEOUS)
        cpus.append(cpu_res.total_time)
        # GTX680 alone: one process updates the entire C every iteration
        # (no inter-process communication).
        gtx.append(n * gtx_kernel.run_time(float(n * n)))
        _, hybrid_res = hybrid_app.run(n, PartitioningStrategy.FPM)
        hybrid.append(hybrid_res.total_time)
    return Table2Result(
        sizes=tuple(sizes),
        cpus_only=tuple(cpus),
        gtx680_only=tuple(gtx),
        hybrid_fpm=tuple(hybrid),
    )


@register_experiment("table2", run=run, kind="table", paper_refs=("Table II",))
def format_result(result: Table2Result) -> str:
    """Render measured next to the paper's published seconds."""
    rows = [
        [
            f"{n}x{n}",
            result.cpus_only[i],
            TABLE2_CPUS_ONLY.get(n, float("nan")),
            result.gtx680_only[i],
            TABLE2_GTX680_ONLY.get(n, float("nan")),
            result.hybrid_fpm[i],
            TABLE2_HYBRID_FPM.get(n, float("nan")),
        ]
        for i, n in enumerate(result.sizes)
    ]
    return render_table(
        [
            "matrix",
            "CPUs (s)",
            "paper",
            "GTX680 (s)",
            "paper",
            "Hybrid-FPM (s)",
            "paper",
        ],
        rows,
        title="Table II: execution time of parallel matrix multiplication",
        precision=1,
    )
