"""Table III — heterogeneous data partitioning on the hybrid node.

CPM- and FPM-based block allocations for n = 40..70.  The paper's headline:
the CPM (calibrated on an in-memory even split) keeps believing the GTX680
is ~9x a socket and overloads it once the real allocation exceeds device
memory (G1:S6 ratio stays near 8), while the FPM tracks the decline and
keeps the load balanced.

Columns follow the paper: G1 (GTX680), G2 (Tesla C870), S5 (socket with a
dedicated core removed), S6 (full socket).  The node has two of each socket
type; like the paper we report one representative of each (they differ only
by rounding).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.app.matmul import HybridMatMul, PartitioningStrategy
from repro.experiments.common import ExperimentConfig, make_app
from repro.experiments.paper_data import TABLE3_CPM, TABLE3_FPM, TABLE3_SIZES
from repro.experiments.registry import register_experiment
from repro.util.tables import render_table


@dataclass(frozen=True)
class PartitionRow:
    """One matrix size's allocations under one strategy."""

    n: int
    g1: int
    g2: int
    s5: int
    s6: int

    def ratio_g1_s6(self) -> float:
        return self.g1 / self.s6 if self.s6 else float("inf")


@dataclass(frozen=True)
class Table3Result:
    sizes: tuple[int, ...]
    cpm: tuple[PartitionRow, ...]
    fpm: tuple[PartitionRow, ...]

    def cpm_row(self, n: int) -> PartitionRow:
        return next(r for r in self.cpm if r.n == n)

    def fpm_row(self, n: int) -> PartitionRow:
        return next(r for r in self.fpm if r.n == n)


def _row_from_plan(app: HybridMatMul, plan) -> PartitionRow:
    """Collapse unit allocations into the paper's G1/G2/S5/S6 columns."""
    g1 = g2 = s5 = s6 = 0
    for unit, alloc in zip(plan.units, plan.unit_allocations):
        if unit.kind == "gpu":
            if "GTX680" in unit.name:
                g1 = alloc
            else:
                g2 = alloc
        else:
            cores = len(unit.member_ranks)
            if cores < app.node.socket_spec(unit.socket_index).cores:
                s5 = alloc  # representative S5 socket
            else:
                s6 = alloc  # representative S6 socket
    return PartitionRow(n=plan.n, g1=g1, g2=g2, s5=s5, s6=s6)


def run(
    config: ExperimentConfig = ExperimentConfig(),
    sizes: tuple[int, ...] = TABLE3_SIZES,
) -> Table3Result:
    """Produce CPM- and FPM-based allocations for each matrix size."""
    app = make_app(config)
    cpm_rows, fpm_rows = [], []
    for n in sizes:
        cpm_rows.append(_row_from_plan(app, app.plan(n, PartitioningStrategy.CPM)))
        fpm_rows.append(_row_from_plan(app, app.plan(n, PartitioningStrategy.FPM)))
    return Table3Result(
        sizes=tuple(sizes), cpm=tuple(cpm_rows), fpm=tuple(fpm_rows)
    )


@register_experiment("table3", run=run, kind="table", paper_refs=("Table III",))
def format_result(result: Table3Result) -> str:
    """Render measured next to the paper's published allocations."""
    rows = []
    for n in result.sizes:
        c, f = result.cpm_row(n), result.fpm_row(n)
        pc, pf = TABLE3_CPM.get(n, {}), TABLE3_FPM.get(n, {})
        rows.append(
            [
                f"{n}x{n}",
                f"{c.g1}/{pc.get('G1', '-')}",
                f"{c.g2}/{pc.get('G2', '-')}",
                f"{c.s5}/{pc.get('S5', '-')}",
                f"{c.s6}/{pc.get('S6', '-')}",
                f"{f.g1}/{pf.get('G1', '-')}",
                f"{f.g2}/{pf.get('G2', '-')}",
                f"{f.s5}/{pf.get('S5', '-')}",
                f"{f.s6}/{pf.get('S6', '-')}",
            ]
        )
    return render_table(
        [
            "matrix",
            "CPM G1 (ours/paper)",
            "G2",
            "S5",
            "S6",
            "FPM G1 (ours/paper)",
            "G2",
            "S5",
            "S6",
        ],
        rows,
        title="Table III: heterogeneous data partitioning (blocks)",
    )
