"""The experiment registry: one catalogue of every table/figure/ablation.

Experiment modules register themselves at import time (the same pattern
:mod:`repro.analysis.rules` uses for lint rules): the module decorates
its ``format_result`` with :func:`register_experiment`, passing its
``run`` callable, and the frozen :class:`Experiment` record lands in the
catalogue.  Consumers — the CLI, the report orchestrator, the profiler,
the benchmark gate — look experiments up by name instead of importing
the modules by hand, so adding an experiment is one decorator, not four
edited call sites.

The catalogue is populated lazily: :func:`all_experiments` (and friends)
import :mod:`repro.experiments` and :mod:`repro.experiments.ablations`
on first use, which triggers every module's registration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

#: registration order is preserved — figures/tables first, then ablations
_REGISTRY: dict[str, "Experiment"] = {}


@dataclass(frozen=True)
class Experiment:
    """One runnable experiment and how to render its result.

    Attributes
    ----------
    name:
        The CLI-facing identifier (``"fig2"``, ``"online_fpm"``, ...).
    run:
        ``run(config: ExperimentConfig) -> <Result>`` — a frozen
        dataclass result, deterministic in the config.
    format_result:
        Renders a result as the text the report prints.
    kind:
        ``"figure"``, ``"table"``, ``"app"`` or ``"ablation"``.
    paper_refs:
        The paper artifacts this experiment reproduces (empty for
        extensions beyond the published evaluation).
    """

    name: str
    run: Callable[..., Any]
    format_result: Callable[[Any], str]
    kind: str = "figure"
    paper_refs: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.kind not in ("figure", "table", "app", "ablation"):
            raise ValueError(f"unknown experiment kind {self.kind!r}")

    @property
    def module(self) -> str:
        """The defining module (derived from ``run``)."""
        return self.run.__module__


def register_experiment(
    name: str,
    *,
    run: Callable[..., Any],
    kind: str = "figure",
    paper_refs: tuple[str, ...] = (),
) -> Callable[[Callable[[Any], str]], Callable[[Any], str]]:
    """Decorator for a module's ``format_result``; registers the pair.

    Applied at the bottom of each experiment module (``run`` is already
    defined there), so importing the module is registering it::

        @register_experiment("fig2", run=run, paper_refs=("Fig. 2",))
        def format_result(result: Fig2Result) -> str: ...
    """

    def decorate(format_result: Callable[[Any], str]) -> Callable[[Any], str]:
        if name in _REGISTRY:
            raise ValueError(f"experiment {name!r} is already registered")
        _REGISTRY[name] = Experiment(
            name=name,
            run=run,
            format_result=format_result,
            kind=kind,
            paper_refs=tuple(paper_refs),
        )
        return format_result

    return decorate


def _load() -> None:
    """Import every experiment module so its registration runs."""
    import repro.experiments  # noqa: F401  (imports the figure/table modules)
    import repro.experiments.ablations  # noqa: F401


def all_experiments() -> tuple[Experiment, ...]:
    """Every registered experiment, in registration order."""
    _load()
    return tuple(_REGISTRY.values())


def experiment_names() -> tuple[str, ...]:
    """The registered names, in registration order."""
    return tuple(e.name for e in all_experiments())


def get_experiment(name: str) -> Experiment:
    """Look one experiment up by name (raises KeyError with the catalogue)."""
    _load()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"no experiment named {name!r}; registered: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None
