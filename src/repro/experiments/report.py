"""Run the whole evaluation and render the paper-vs-measured report.

``python -m repro report`` produces the text that EXPERIMENTS.md records:
every table and figure, measured values beside the paper's, plus the shape
checks (who wins, crossovers, improvement factors).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import (
    fig2_socket_fpm,
    fig3_gpu_versions,
    fig5_contention,
    fig6_process_times,
    fig7_exec_vs_size,
    table2_exec_time,
    table3_partitioning,
)
from repro.experiments.common import ExperimentConfig
from repro.experiments import paper_data


@dataclass(frozen=True)
class ShapeCheck:
    """One qualitative criterion, measured against the paper's claim."""

    name: str
    expected: str
    measured: str
    passed: bool


def shape_checks(
    fig2: fig2_socket_fpm.Fig2Result,
    fig3: fig3_gpu_versions.Fig3Result,
    fig5: fig5_contention.Fig5Result,
    table2: table2_exec_time.Table2Result,
    table3: table3_partitioning.Table3Result,
    fig6: fig6_process_times.Fig6Result,
    fig7: fig7_exec_vs_size.Fig7Result,
) -> list[ShapeCheck]:
    """Evaluate every headline claim of the paper on the measured data."""
    checks: list[ShapeCheck] = []

    s6_plateau = fig2.plateau("s6")
    s5_plateau = fig2.plateau("s5")
    checks.append(
        ShapeCheck(
            "Fig2: s6 above s5, plateaus near paper's reading",
            f"s6~{paper_data.FIG2_S6_PLATEAU:.0f}, s5~{paper_data.FIG2_S5_PLATEAU:.0f} GFlops",
            f"s6={s6_plateau:.0f}, s5={s5_plateau:.0f} GFlops",
            s6_plateau > s5_plateau
            and abs(s6_plateau - paper_data.FIG2_S6_PLATEAU) / paper_data.FIG2_S6_PLATEAU < 0.15
            and abs(s5_plateau - paper_data.FIG2_S5_PLATEAU) / paper_data.FIG2_S5_PLATEAU < 0.15,
        )
    )

    in_core = fig3.in_core_sizes()
    v2_over_v1 = [
        fig3.v2[i] / fig3.v1[i] for i in in_core if fig3.sizes[i] > 300
    ]
    ratio = sum(v2_over_v1) / len(v2_over_v1)
    checks.append(
        ShapeCheck(
            "Fig3: version 2 doubles version 1 in the resident range",
            "~2.0x",
            f"{ratio:.2f}x",
            1.5 <= ratio <= 2.6,
        )
    )

    ooc = fig3.out_of_core_sizes()
    near_limit = [i for i in ooc if fig3.sizes[i] <= 2.0 * fig3.memory_limit_blocks]
    v3_gain = [fig3.v3[i] / fig3.v2[i] - 1.0 for i in near_limit]
    gain = sum(v3_gain) / len(v3_gain) if v3_gain else 0.0
    checks.append(
        ShapeCheck(
            "Fig3: overlap gain of version 3 past the memory limit",
            f"~{100 * paper_data.V3_OVER_V2_GAIN:.0f}%",
            f"{100 * gain:.0f}%",
            0.15 <= gain <= 0.9,
        )
    )

    drop_small = fig5.shared[0].mean_gpu_drop
    drop_big = fig5.shared[1].mean_gpu_drop
    cpu_drop = max(s.mean_cpu_drop for s in fig5.shared)
    lo, hi = paper_data.GPU_CONTENTION_DROP
    checks.append(
        ShapeCheck(
            "Fig5: GPU drops 7-15% under contention, CPU barely affected",
            f"GPU {100 * lo:.0f}-{100 * hi:.0f}%, CPU ~0%",
            f"GPU {100 * drop_small:.0f}%/{100 * drop_big:.0f}%, CPU {100 * cpu_drop:.1f}%",
            lo * 0.5 <= drop_small <= hi * 1.5
            and lo * 0.5 <= drop_big <= hi * 1.5
            and cpu_drop < 0.05,
        )
    )

    t40 = table2.row(40)
    t70 = table2.row(70)
    checks.append(
        ShapeCheck(
            "Table II: GTX680 beats CPUs at 40x40, loses at 70x70; hybrid wins all",
            "orderings as published",
            f"40x40 {t40[1]:.0f}<{t40[0]:.0f}s, 70x70 {t70[1]:.0f}>{t70[0]:.0f}s, "
            f"hybrid {t40[2]:.0f}/{t70[2]:.0f}s",
            t40[1] < t40[0]
            and t70[1] > t70[0]
            and all(table2.row(n)[2] == min(table2.row(n)) for n in table2.sizes),
        )
    )

    cpm70 = table3.cpm_row(70)
    fpm70 = table3.fpm_row(70)
    fpm40 = table3.fpm_row(40)
    checks.append(
        ShapeCheck(
            "Table III: CPM keeps G1:S6 near 8 at 70x70; FPM drops toward 4-5",
            "CPM ~7.8, FPM ~4.5",
            f"CPM {cpm70.ratio_g1_s6():.1f}, FPM {fpm70.ratio_g1_s6():.1f}",
            cpm70.ratio_g1_s6() > 6.5
            and paper_data.RATIO_G1_S6_OUT_OF_CORE[0] * 0.8
            <= fpm70.ratio_g1_s6()
            <= paper_data.RATIO_G1_S6_OUT_OF_CORE[1] * 1.2,
        )
    )
    checks.append(
        ShapeCheck(
            "Table III: FPM G1:S6 near 9-10 in the resident range (40x40)",
            f"~{paper_data.RATIO_G1_S6_IN_CORE:.0f}x",
            f"{fpm40.ratio_g1_s6():.1f}x",
            7.0 <= fpm40.ratio_g1_s6() <= 12.0,
        )
    )

    checks.append(
        ShapeCheck(
            "Fig6: FPM levels the per-process profile and cuts computation time",
            f"~{100 * paper_data.FIG6_COMPUTATION_CUT:.0f}% cut, flat profile",
            f"{100 * fig6.computation_cut:.0f}% cut, imbalance "
            f"{fig6.imbalance(fig6.fpm_times):.2f} (CPM "
            f"{fig6.imbalance(fig6.cpm_times):.2f})",
            fig6.computation_cut >= 0.2
            and fig6.imbalance(fig6.fpm_times)
            < fig6.imbalance(fig6.cpm_times),
        )
    )

    big = fig7.sizes[-1]
    checks.append(
        ShapeCheck(
            "Fig7: FPM ~30% under CPM and ~45% under homogeneous at large n",
            f"~{100 * paper_data.FIG7_CUT_VS_CPM:.0f}% / "
            f"~{100 * paper_data.FIG7_CUT_VS_HOMOGENEOUS:.0f}%",
            f"{100 * fig7.cut_vs_cpm(big):.0f}% / "
            f"{100 * fig7.cut_vs_homogeneous(big):.0f}%",
            fig7.cut_vs_cpm(big) >= 0.15
            and fig7.cut_vs_homogeneous(big) >= 0.3,
        )
    )
    return checks


def full_report(config: ExperimentConfig = ExperimentConfig()) -> str:
    """Deprecated alias of :func:`repro.experiments.orchestrator.run_full_report`.

    Kept so pre-orchestrator call sites keep working; it runs the same
    experiments sequentially and without a store.
    """
    import warnings

    from repro.experiments.orchestrator import run_full_report

    warnings.warn(
        "full_report() is deprecated; use "
        "repro.experiments.orchestrator.run_full_report() (or repro.api."
        "run_report()), which adds --jobs parallelism and store caching",
        DeprecationWarning,
        stacklevel=2,
    )
    return run_full_report(config)
