"""Figure 2 — speed functions of a socket: ``s5(x)`` and ``s6(x)``.

The ACML-stand-in kernel is measured on 5 and 6 cores of one socket across
problem sizes up to 1200 blocks (b = 640, single precision).  Expected
shape: both curves ramp up quickly, plateau (s6 around 105 GFlops, s5
around 92), with s6 strictly above s5 — more active cores beat contention
losses — and a gentle droop at the far right.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentConfig, make_bench
from repro.experiments.paper_data import FIG2_MAX_BLOCKS
from repro.measurement.fpm_builder import SizeGrid
from repro.experiments.registry import register_experiment
from repro.util.tables import render_series


@dataclass(frozen=True)
class Fig2Result:
    """Two measured speed series over a shared size grid."""

    sizes: tuple[float, ...]
    s5: tuple[float, ...]  # GFlops
    s6: tuple[float, ...]  # GFlops

    def plateau(self, series: str) -> float:
        """The series' maximum — the plateau speed the paper reads off."""
        return max(getattr(self, series))


def run(config: ExperimentConfig = ExperimentConfig()) -> Fig2Result:
    """Measure s5 and s6 on the paper's node."""
    bench = make_bench(config)
    # socket 2 is CPU-only (6 usable cores); socket 0 hosts the C870 so its
    # CPU group has 5 cores — exactly the paper's S5/S6 split.
    grid = SizeGrid.linear(12.0, FIG2_MAX_BLOCKS, config.sweep_points)
    s5 = bench.measure_speeds(bench.socket_kernel(0, 5), grid.sizes)
    s6 = bench.measure_speeds(bench.socket_kernel(2, 6), grid.sizes)
    return Fig2Result(
        sizes=grid.sizes,
        s5=tuple(m.speed_gflops for m in s5),
        s6=tuple(m.speed_gflops for m in s6),
    )


@register_experiment("fig2", run=run, kind="figure", paper_refs=("Fig. 2",))
def format_result(result: Fig2Result) -> str:
    """Render the figure's two series as a table (GFlops)."""
    return render_series(
        "blocks",
        [round(x) for x in result.sizes],
        {"s5 (GFlops)": result.s5, "s6 (GFlops)": result.s6},
        title="Figure 2: socket speed functions s5(x), s6(x) (b=640, SP)",
        precision=1,
    )
