"""Export experiment results to JSON and CSV.

Every experiment's ``run()`` returns a (possibly nested) frozen dataclass;
this module flattens them generically so results can be archived next to
EXPERIMENTS.md or post-processed elsewhere.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any, Sequence

from repro.util.serde import from_jsonable, to_jsonable


def result_to_dict(result: Any) -> Any:
    """Recursively convert dataclasses/tuples to JSON-compatible values."""
    return to_jsonable(result)


def result_from_dict(result_type: type, data: Any) -> Any:
    """Rebuild a result dataclass from :func:`result_to_dict` output."""
    return from_jsonable(result_type, data)


def export_json(result: Any, path: str | Path) -> None:
    """Write one experiment result as a JSON document."""
    payload = result_to_dict(result)
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
    )


def series_to_csv(
    x_name: str,
    x_values: Sequence[Any],
    series: dict[str, Sequence[Any]],
) -> str:
    """Render aligned series (a figure's data) as CSV text."""
    for name, col in series.items():
        if len(col) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(col)} points, x has {len(x_values)}"
            )
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow([x_name, *series.keys()])
    columns = list(series.values())
    for i, x in enumerate(x_values):
        writer.writerow([x, *(col[i] for col in columns)])
    return buf.getvalue()


def export_csv(
    path: str | Path,
    x_name: str,
    x_values: Sequence[Any],
    series: dict[str, Sequence[Any]],
) -> None:
    """Write aligned series to a CSV file."""
    Path(path).write_text(
        series_to_csv(x_name, x_values, series), encoding="utf-8"
    )
