"""Figure 7 — application execution time vs matrix size, three partitioners.

Homogeneous, CPM-based and FPM-based partitioning for n = 10..80 blocks.
Expected shape: homogeneous is dominated by the slowest elements (CPU
cores) and grows steeply; CPM tracks FPM while problems are small, then
diverges once the GTX680's allocation exceeds device memory (n >= 50);
FPM is lowest everywhere — ~30% below CPM and ~45% below homogeneous in
the large range.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.app.matmul import PartitioningStrategy
from repro.experiments.common import ExperimentConfig, make_app
from repro.experiments.registry import register_experiment
from repro.util.tables import render_series

DEFAULT_SIZES = (10, 20, 30, 40, 50, 60, 70, 80)


@dataclass(frozen=True)
class Fig7Result:
    """Total execution time per strategy over the size sweep."""

    sizes: tuple[int, ...]
    homogeneous: tuple[float, ...]
    cpm: tuple[float, ...]
    fpm: tuple[float, ...]

    def cut_vs_cpm(self, n: int) -> float:
        i = self.sizes.index(n)
        return 1.0 - self.fpm[i] / self.cpm[i]

    def cut_vs_homogeneous(self, n: int) -> float:
        i = self.sizes.index(n)
        return 1.0 - self.fpm[i] / self.homogeneous[i]


def run(
    config: ExperimentConfig = ExperimentConfig(),
    sizes: tuple[int, ...] = DEFAULT_SIZES,
) -> Fig7Result:
    """Simulate the three strategies across the size sweep."""
    app = make_app(config)
    homog, cpm, fpm = [], [], []
    for n in sizes:
        _, r = app.run(n, PartitioningStrategy.HOMOGENEOUS)
        homog.append(r.total_time)
        _, r = app.run(n, PartitioningStrategy.CPM)
        cpm.append(r.total_time)
        _, r = app.run(n, PartitioningStrategy.FPM)
        fpm.append(r.total_time)
    return Fig7Result(
        sizes=tuple(sizes),
        homogeneous=tuple(homog),
        cpm=tuple(cpm),
        fpm=tuple(fpm),
    )


@register_experiment("fig7", run=run, kind="figure", paper_refs=("Fig. 7",))
def format_result(result: Fig7Result) -> str:
    """Render the figure's three series plus the headline cuts."""
    table = render_series(
        "n",
        list(result.sizes),
        {
            "Homogeneous (s)": result.homogeneous,
            "CPM-based (s)": result.cpm,
            "FPM-based (s)": result.fpm,
        },
        title="Figure 7: execution time vs matrix size",
        precision=1,
    )
    big = result.sizes[-1]
    return (
        table
        + f"\nat n={big}: FPM cuts {100 * result.cut_vs_cpm(big):.0f}% vs CPM, "
        + f"{100 * result.cut_vs_homogeneous(big):.0f}% vs homogeneous"
    )
