"""Experiment orchestration: store-backed runs, optionally across processes.

This is the engine behind ``repro report --jobs N``.  It schedules
registered experiments (:mod:`repro.experiments.registry`) over a
process pool, replays frozen results from the active artifact store
(:mod:`repro.store`) when their inputs are unchanged, and records fresh
results for the next run.  Because every experiment derives all its
randomness from the :class:`~repro.experiments.common.ExperimentConfig`
seed, a parallel run is bit-identical to the sequential one — the pool
only changes wall-clock time, never results.

Workers share warm models through the store: each process opens the same
store root, so the first one to build an FPM persists it and the rest
replay it from disk (atomic writes make concurrent builders safe — the
losers overwrite with identical bytes).
"""

from __future__ import annotations

import concurrent.futures
from typing import Any, Iterable

from repro.experiments.common import ExperimentConfig, experiment_span
from repro.experiments.registry import get_experiment
from repro.obs import get_tracer
from repro.store import ResultStore, get_store, use_store
from repro.util.serde import (
    from_jsonable,
    qualified_type_name,
    resolve_type_name,
    to_jsonable,
)

#: The figures/tables the paper report renders, in print order.
REPORT_EXPERIMENTS = (
    "fig2",
    "fig3",
    "fig5",
    "table2",
    "table3",
    "fig6",
    "fig7",
)


def result_key(name: str, config: ExperimentConfig) -> dict:
    """The store key of one experiment result: name + full configuration."""
    return {
        "artifact": "experiment-result",
        "experiment": name,
        "config": config.cache_key(),
    }


def _encode_result(result: Any) -> dict:
    """A frozen result as a self-describing JSON payload."""
    return {
        "result_type": qualified_type_name(type(result)),
        "result": to_jsonable(result),
    }


def _decode_result(payload: dict) -> Any:
    return from_jsonable(resolve_type_name(payload["result_type"]), payload["result"])


def load_cached_result(
    name: str, config: ExperimentConfig, *, store: ResultStore | None = None
) -> Any | None:
    """The frozen result of a previous identical run, or None.

    ``store`` defaults to the active store; with no store at all this is
    always a miss (caching off is the hermetic default).
    """
    store = get_store() if store is None else store
    if store is None:
        return None
    payload = store.get("result", result_key(name, config))
    if payload is None:
        return None
    return _decode_result(payload)


def run_experiment(
    name: str,
    config: ExperimentConfig = ExperimentConfig(),
    *,
    store: ResultStore | None = None,
) -> Any:
    """Run one registered experiment (or replay its frozen result).

    The run happens under the experiment's root span with ``store``
    installed as the active store, so model building inside the
    experiment shares the same cache; on a result hit the experiment
    body never executes and the span carries ``cache_hit=True``.
    """
    exp = get_experiment(name)
    store = get_store() if store is None else store
    with use_store(store):
        with experiment_span(name, config) as span:
            cached = load_cached_result(name, config, store=store)
            if cached is not None:
                if get_tracer().enabled:
                    span.set_attr("cache_hit", True)
                return cached
            result = exp.run(config)
        if store is not None:
            store.put("result", result_key(name, config), _encode_result(result))
    return result


def _worker(
    name: str, config: ExperimentConfig, store_root: str | None, salt: str | None
) -> tuple[str, dict]:
    """Pool entry point: run one experiment in a fresh process.

    The store is re-opened from its root (a ResultStore is cheap and the
    path plus salt pin it exactly); the result travels back as the same
    JSON payload the store records, so the parent decodes it with the
    identical code path a cache hit uses.
    """
    store = ResultStore(store_root, salt) if store_root is not None else None
    result = run_experiment(name, config, store=store)
    return name, _encode_result(result)


def run_experiments(
    names: Iterable[str],
    config: ExperimentConfig = ExperimentConfig(),
    *,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> dict[str, Any]:
    """Run several experiments, optionally across a process pool.

    Returns ``{name: result}`` in the order of ``names``.  ``jobs <= 1``
    runs sequentially in-process; ``jobs > 1`` fans the experiments out
    over ``ProcessPoolExecutor`` workers that share the store on disk.
    Results are identical either way (each experiment is deterministic
    in ``config``), so ``--jobs`` is purely a wall-clock knob.
    """
    names = list(names)
    for name in names:
        get_experiment(name)  # fail fast on unknown names, before forking
    store = get_store() if store is None else store
    if jobs <= 1 or len(names) <= 1:
        return {n: run_experiment(n, config, store=store) for n in names}

    root = str(store.root) if store is not None else None
    salt = store.salt if store is not None else None
    out: dict[str, Any] = {}
    with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [pool.submit(_worker, n, config, root, salt) for n in names]
        for future in concurrent.futures.as_completed(futures):
            name, payload = future.result()
            out[name] = _decode_result(payload)
    return {n: out[n] for n in names}


def run_full_report(
    config: ExperimentConfig = ExperimentConfig(),
    *,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> str:
    """The complete paper-vs-measured report (text), orchestrated.

    Runs the seven figure/table experiments (parallel when ``jobs > 1``,
    replayed from ``store`` when warm), renders each section with its
    registered formatter, and appends the shape checks.
    """
    from repro.experiments import report

    tracer = get_tracer()
    with tracer.span("report.full", category="experiment", jobs=jobs) as span:
        results = run_experiments(REPORT_EXPERIMENTS, config, jobs=jobs, store=store)
        if tracer.enabled:
            span.set_attr("experiments", len(results))
        sections = [
            get_experiment(name).format_result(results[name])
            for name in REPORT_EXPERIMENTS
        ]
        checks = report.shape_checks(
            results["fig2"],
            results["fig3"],
            results["fig5"],
            results["table2"],
            results["table3"],
            results["fig6"],
            results["fig7"],
        )
    check_lines = ["Shape checks (paper claim vs measured):"]
    for c in checks:
        status = "PASS" if c.passed else "FAIL"
        check_lines.append(
            f"  [{status}] {c.name}: expected {c.expected}, measured {c.measured}"
        )
    sections.append("\n".join(check_lines))
    return "\n\n".join(sections)
