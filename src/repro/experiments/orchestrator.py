"""Experiment orchestration: store-backed runs, optionally across processes.

This is the engine behind ``repro report --jobs N``.  It schedules
registered experiments (:mod:`repro.experiments.registry`) over a
process pool, replays frozen results from the active artifact store
(:mod:`repro.store`) when their inputs are unchanged, and records fresh
results for the next run.  Because every experiment derives all its
randomness from the :class:`~repro.experiments.common.ExperimentConfig`
seed, a parallel run is bit-identical to the sequential one — the pool
only changes wall-clock time, never results.

Workers share warm models through the store: each process opens the same
store root, so the first one to build an FPM persists it and the rest
replay it from disk (atomic writes make concurrent builders safe — the
losers overwrite with identical bytes).
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.experiments.common import ExperimentConfig, experiment_span
from repro.experiments.registry import get_experiment
from repro.obs import get_tracer
from repro.store import ResultStore, get_store, use_store
from repro.util.serde import (
    from_jsonable,
    qualified_type_name,
    resolve_type_name,
    to_jsonable,
)

#: The figures/tables the paper report renders, in print order.
REPORT_EXPERIMENTS = (
    "fig2",
    "fig3",
    "fig5",
    "table2",
    "table3",
    "fig6",
    "fig7",
)


class ExperimentError(RuntimeError):
    """An experiment failed; carries which one (workers lose that context)."""

    def __init__(self, name: str, cause: BaseException):
        self.experiment = name
        super().__init__(f"experiment {name!r} failed: {cause}")


@dataclass(frozen=True)
class FailedExperiment:
    """Sentinel result for an experiment that failed after its retries.

    ``run_experiments(..., on_error="collect")`` returns one of these in
    place of the result, so a degraded report can render the failure as a
    section instead of aborting its siblings.  Never cached.
    """

    name: str
    error: str


def result_key(name: str, config: ExperimentConfig) -> dict:
    """The store key of one experiment result: name + full configuration."""
    return {
        "artifact": "experiment-result",
        "experiment": name,
        "config": config.cache_key(),
    }


def _encode_result(result: Any) -> dict:
    """A frozen result as a self-describing JSON payload."""
    return {
        "result_type": qualified_type_name(type(result)),
        "result": to_jsonable(result),
    }


def _decode_result(payload: dict) -> Any:
    return from_jsonable(resolve_type_name(payload["result_type"]), payload["result"])


def load_cached_result(
    name: str, config: ExperimentConfig, *, store: ResultStore | None = None
) -> Any | None:
    """The frozen result of a previous identical run, or None.

    ``store`` defaults to the active store; with no store at all this is
    always a miss (caching off is the hermetic default).
    """
    store = get_store() if store is None else store
    if store is None:
        return None
    payload = store.get("result", result_key(name, config))
    if payload is None:
        return None
    return _decode_result(payload)


def run_experiment(
    name: str,
    config: ExperimentConfig = ExperimentConfig(),
    *,
    store: ResultStore | None = None,
) -> Any:
    """Run one registered experiment (or replay its frozen result).

    The run happens under the experiment's root span with ``store``
    installed as the active store, so model building inside the
    experiment shares the same cache; on a result hit the experiment
    body never executes and the span carries ``cache_hit=True``.
    """
    exp = get_experiment(name)
    store = get_store() if store is None else store
    with use_store(store):
        with experiment_span(name, config) as span:
            cached = load_cached_result(name, config, store=store)
            if cached is not None:
                if get_tracer().enabled:
                    span.set_attr("cache_hit", True)
                return cached
            result = exp.run(config)
        if store is not None:
            store.put("result", result_key(name, config), _encode_result(result))
    return result


def _worker(
    name: str, config: ExperimentConfig, store_root: str | None, salt: str | None
) -> tuple[str, dict]:
    """Pool entry point: run one experiment in a fresh process.

    The store is re-opened from its root (a ResultStore is cheap and the
    path plus salt pin it exactly); the result travels back as the same
    JSON payload the store records, so the parent decodes it with the
    identical code path a cache hit uses.
    """
    store = ResultStore(store_root, salt) if store_root is not None else None
    result = run_experiment(name, config, store=store)
    return name, _encode_result(result)


def _handle_failure(
    name: str, exc: BaseException, on_error: str, tracer
) -> FailedExperiment:
    """Final (post-retry) failure: collect a sentinel or raise wrapped."""
    if tracer.enabled:
        tracer.counter("report.failures").add(1)
    if on_error == "collect":
        return FailedExperiment(name=name, error=f"{type(exc).__name__}: {exc}")
    raise ExperimentError(name, exc) from exc


def run_experiments(
    names: Iterable[str],
    config: ExperimentConfig = ExperimentConfig(),
    *,
    jobs: int = 1,
    store: ResultStore | None = None,
    timeout_s: float | None = None,
    retries: int = 0,
    on_error: str = "raise",
) -> dict[str, Any]:
    """Run several experiments, optionally across a process pool.

    Returns ``{name: result}`` in the order of ``names``.  ``jobs <= 1``
    runs sequentially in-process; ``jobs > 1`` fans the experiments out
    over ``ProcessPoolExecutor`` workers that share the store on disk.
    Results are identical either way (each experiment is deterministic
    in ``config``), so ``--jobs`` is purely a wall-clock knob.

    Failure handling: each failed (or, pooled, timed-out) experiment is
    resubmitted up to ``retries`` times; a final failure either cancels
    the still-pending siblings and re-raises wrapped in
    :class:`ExperimentError` naming the experiment (``on_error="raise"``,
    the default) or yields a :class:`FailedExperiment` sentinel in the
    result mapping (``on_error="collect"``, the degraded-report mode).
    ``timeout_s`` bounds each pooled attempt; a timed-out worker process
    cannot be killed mid-task, so it is abandoned best-effort.
    """
    names = list(names)
    for name in names:
        get_experiment(name)  # fail fast on unknown names, before forking
    if on_error not in ("raise", "collect"):
        raise ValueError(f"on_error must be 'raise' or 'collect', got {on_error!r}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if timeout_s is not None and timeout_s <= 0:
        raise ValueError(f"timeout_s must be > 0, got {timeout_s}")
    store = get_store() if store is None else store
    tracer = get_tracer()

    if jobs <= 1 or len(names) <= 1:
        out: dict[str, Any] = {}
        for name in names:
            for attempt in range(retries + 1):
                try:
                    out[name] = run_experiment(name, config, store=store)
                    break
                except Exception as exc:
                    if attempt < retries:
                        if tracer.enabled:
                            tracer.counter("report.retries").add(1)
                        continue
                    out[name] = _handle_failure(name, exc, on_error, tracer)
        return out

    root = str(store.root) if store is not None else None
    salt = store.salt if store is not None else None
    out = {}
    pool = concurrent.futures.ProcessPoolExecutor(max_workers=jobs)
    try:
        futures = {
            name: pool.submit(_worker, name, config, root, salt) for name in names
        }
        for name in names:
            attempt = 0
            while True:
                try:
                    _, payload = futures[name].result(timeout=timeout_s)
                    out[name] = _decode_result(payload)
                    break
                except Exception as exc:
                    if attempt < retries:
                        attempt += 1
                        if tracer.enabled:
                            tracer.counter("report.retries").add(1)
                        futures[name] = pool.submit(
                            _worker, name, config, root, salt
                        )
                        continue
                    if on_error == "raise":
                        # stop scheduling the siblings before re-raising;
                        # already-running workers cannot be interrupted
                        for other in futures.values():
                            other.cancel()
                    out[name] = _handle_failure(name, exc, on_error, tracer)
                    break
    finally:
        # not the context manager: shutdown(wait=True) would block on a
        # hung (timed-out) worker long after its result was given up on
        pool.shutdown(wait=False, cancel_futures=True)
    return {n: out[n] for n in names}


def run_full_report(
    config: ExperimentConfig = ExperimentConfig(),
    *,
    jobs: int = 1,
    store: ResultStore | None = None,
    timeout_s: float | None = None,
    retries: int = 1,
    experiments: Sequence[str] = REPORT_EXPERIMENTS,
) -> str:
    """The complete paper-vs-measured report (text), orchestrated.

    Runs the seven figure/table experiments (parallel when ``jobs > 1``,
    replayed from ``store`` when warm), renders each section with its
    registered formatter, and appends the shape checks.

    Degrades gracefully: an experiment that still fails after ``retries``
    resubmissions renders as a ``[FAILED <name>: <error>]`` section
    instead of aborting the others, and the shape checks are skipped
    (with a note naming the failures) when any of the seven report
    experiments is missing.
    """
    from repro.experiments import report

    names = tuple(experiments)
    tracer = get_tracer()
    with tracer.span("report.full", category="experiment", jobs=jobs) as span:
        results = run_experiments(
            names,
            config,
            jobs=jobs,
            store=store,
            timeout_s=timeout_s,
            retries=retries,
            on_error="collect",
        )
        failed = [
            name for name in names if isinstance(results[name], FailedExperiment)
        ]
        if tracer.enabled:
            span.set_attr("experiments", len(results))
            span.set_attr("failures", len(failed))
        sections = []
        for name in names:
            result = results[name]
            if isinstance(result, FailedExperiment):
                sections.append(f"[FAILED {name}: {result.error}]")
            else:
                sections.append(get_experiment(name).format_result(result))
        checks = None
        if set(REPORT_EXPERIMENTS) <= set(names) and not any(
            isinstance(results[name], FailedExperiment)
            for name in REPORT_EXPERIMENTS
        ):
            checks = report.shape_checks(
                results["fig2"],
                results["fig3"],
                results["fig5"],
                results["table2"],
                results["table3"],
                results["fig6"],
                results["fig7"],
            )
    if checks is None:
        sections.append(
            "Shape checks skipped: "
            f"{len(failed)} experiment(s) failed ({', '.join(failed) or 'n/a'})."
        )
    else:
        check_lines = ["Shape checks (paper claim vs measured):"]
        for c in checks:
            status = "PASS" if c.passed else "FAIL"
            check_lines.append(
                f"  [{status}] {c.name}: expected {c.expected}, measured {c.measured}"
            )
        sections.append("\n".join(check_lines))
    return "\n\n".join(sections)
