"""Figure 5 — impact of CPU/GPU resource contention on the speed functions.

The CPU and GPU kernels run simultaneously on the GTX680's socket with the
workload split in proportion to the solo speeds.  Following the paper, the
1:10 split is exercised on problem sizes whose GPU share fits device
memory, and the 1:5 split on large (out-of-core) sizes.  Expected outcome
(Section V):

* the 5 CPU cores' speed is nearly identical to their GPU-idle curve
  (Fig. 5a);
* the GPU's combined speed drops by 7–15%, i.e. the exclusive model still
  approximates it with ~85% accuracy (Fig. 5b).

Each shared measurement is paired with an exclusive measurement at exactly
the same per-device problem size, so the reported drops are pointwise, not
interpolated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentConfig, make_bench
from repro.measurement.fpm_builder import SizeGrid
from repro.experiments.registry import register_experiment
from repro.util.tables import render_table

GTX680_INDEX = 1
#: (cpu fraction, gpu size range) — the paper's two sharing regimes.
SHARE_REGIMES = (
    (1.0 / 11.0, (200.0, 1100.0)),  # 1:10, GPU share resident
    (1.0 / 6.0, (1300.0, 4000.0)),  # 1:5, GPU share out-of-core
)


@dataclass(frozen=True)
class SharePoint:
    """One total-size point of a sharing regime, with exclusive baselines."""

    cpu_area: float
    gpu_area: float
    cpu_speed_shared: float
    cpu_speed_exclusive: float
    gpu_speed_shared: float
    gpu_speed_exclusive: float

    @property
    def gpu_drop(self) -> float:
        return 1.0 - self.gpu_speed_shared / self.gpu_speed_exclusive

    @property
    def cpu_drop(self) -> float:
        return 1.0 - self.cpu_speed_shared / self.cpu_speed_exclusive


@dataclass(frozen=True)
class ContentionSeries:
    """All points of one sharing ratio."""

    cpu_fraction: float
    points: tuple[SharePoint, ...]

    @property
    def label(self) -> str:
        return f"cores:GPU = 1:{round(1 / self.cpu_fraction) - 1}"

    @property
    def mean_gpu_drop(self) -> float:
        return sum(p.gpu_drop for p in self.points) / len(self.points)

    @property
    def mean_cpu_drop(self) -> float:
        return sum(p.cpu_drop for p in self.points) / len(self.points)

    @property
    def gpu_model_accuracy(self) -> float:
        """How well the exclusive GPU model approximates shared speed."""
        return 1.0 - self.mean_gpu_drop


@dataclass(frozen=True)
class Fig5Result:
    """Both sharing regimes of the figure."""

    shared: tuple[ContentionSeries, ...]

    def series(self, cpu_fraction: float) -> ContentionSeries:
        for s in self.shared:
            if abs(s.cpu_fraction - cpu_fraction) < 1e-12:
                return s
        raise KeyError(f"no series with cpu_fraction={cpu_fraction}")


def run(
    config: ExperimentConfig = ExperimentConfig(), gpu_index: int = GTX680_INDEX
) -> Fig5Result:
    """Measure shared vs exclusive speeds for both regimes."""
    bench = make_bench(config)
    att = bench.node.gpus[gpu_index]
    cpu_cores = bench.node.socket_spec(att.socket_index).cores - 1

    cpu_kernel_shared = bench.socket_kernel(att.socket_index, cpu_cores, gpu_active=True)
    cpu_kernel_solo = bench.socket_kernel(att.socket_index, cpu_cores)
    gpu_kernel = bench.gpu_kernel(gpu_index, config.gpu_version)

    series: list[ContentionSeries] = []
    for frac, (gpu_lo, gpu_hi) in SHARE_REGIMES:
        grid = SizeGrid.linear(gpu_lo, gpu_hi, max(4, config.sweep_points // 2))
        # The per-device sizes the scalar measure_shared_socket would derive
        # from each total, kept float-for-float so speeds match it bitwise.
        cpu_areas: list[float] = []
        gpu_shared_areas: list[float] = []
        for gpu_area in grid.sizes:
            total = gpu_area / (1.0 - frac)
            cpu_area = total * frac
            cpu_areas.append(cpu_area)
            gpu_shared_areas.append(total - cpu_area)
        cpu_shared = bench.measure_speeds(cpu_kernel_shared, cpu_areas)
        gpu_shared = bench.measure_speeds(
            gpu_kernel, gpu_shared_areas, busy_cpu_cores=cpu_cores
        )
        cpu_excl = bench.measure_speeds(
            cpu_kernel_solo, [m.area_blocks for m in cpu_shared]
        )
        gpu_excl = bench.measure_speeds(gpu_kernel, grid.sizes)
        points = tuple(
            SharePoint(
                cpu_area=cs.area_blocks,
                gpu_area=gpu_area,
                cpu_speed_shared=cs.speed_gflops,
                cpu_speed_exclusive=ce.speed_gflops,
                gpu_speed_shared=gs.speed_gflops,
                gpu_speed_exclusive=ge.speed_gflops,
            )
            for gpu_area, cs, ce, gs, ge in zip(
                grid.sizes, cpu_shared, cpu_excl, gpu_shared, gpu_excl
            )
        )
        series.append(ContentionSeries(cpu_fraction=frac, points=points))
    return Fig5Result(shared=tuple(series))


@register_experiment("fig5", run=run, kind="figure", paper_refs=("Fig. 5",))
def format_result(result: Fig5Result) -> str:
    """Render both panels plus the measured contention drops."""
    parts = []
    for s in result.shared:
        rows = [
            [
                round(p.cpu_area),
                p.cpu_speed_exclusive,
                p.cpu_speed_shared,
                round(p.gpu_area),
                p.gpu_speed_exclusive,
                p.gpu_speed_shared,
            ]
            for p in s.points
        ]
        parts.append(
            render_table(
                [
                    "cpu blocks",
                    "CPU-only",
                    "CPU shared",
                    "gpu blocks",
                    "GPU-only",
                    "GPU shared",
                ],
                rows,
                title=f"Figure 5 ({s.label}): speeds in GFlops",
                precision=1,
            )
        )
        parts.append(
            f"{s.label}: mean GPU drop {100 * s.mean_gpu_drop:.1f}% "
            f"(model accuracy {100 * s.gpu_model_accuracy:.0f}%), "
            f"mean CPU drop {100 * s.mean_cpu_drop:.1f}%"
        )
    return "\n".join(parts)
