"""Shared configuration and helpers for the reproduction experiments."""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import asdict, dataclass, replace
from typing import Iterator

from repro.app.matmul import HybridMatMul
from repro.measurement.benchmark import HybridBenchmark
from repro.obs import Span, get_tracer
from repro.platform.drift import DriftModel, parse_drift_spec
from repro.platform.faults import FaultPlan, parse_fault_spec
from repro.platform.presets import cpu_only_node, ig_icl_node
from repro.platform.spec import NodeSpec
from repro.util.validation import check_nonnegative, check_positive


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every experiment.

    ``fast`` reduces sweep resolution (fewer grid points / sizes) so the
    benchmark suite stays quick; the default resolution matches the
    figures' visual density.
    """

    seed: int = 42
    noise_sigma: float = 0.02
    gpu_version: int = 3
    fast: bool = False
    #: largest problem the models must cover, in blocks (Fig. 7 goes to
    #: 80 x 80 = 6400).
    model_max_blocks: float = 6500.0
    #: fault-injection spec (:func:`repro.platform.faults.parse_fault_spec`
    #: grammar), or None for the fault-free default.
    faults: str | None = None
    #: time-varying device speed spec
    #: (:func:`repro.platform.drift.parse_drift_spec` grammar), or None
    #: for a stationary platform.
    drift: str | None = None

    def __post_init__(self) -> None:
        check_nonnegative("noise_sigma", self.noise_sigma)
        check_positive("model_max_blocks", self.model_max_blocks)
        if self.faults is not None:
            parse_fault_spec(self.faults)  # fail fast on bad grammar
        if self.drift is not None:
            parse_drift_spec(self.drift)  # fail fast on bad grammar

    @property
    def sweep_points(self) -> int:
        return 8 if self.fast else 16

    def faster(self) -> "ExperimentConfig":
        return replace(self, fast=True)

    def cache_key(self) -> dict:
        """Every field, for content-addressed store keys.

        ``asdict`` walks the dataclass fields, so a knob added later is
        automatically part of the digest.  In particular ``fast`` is
        included: a fast run and a full run of the same experiment use
        different sweeps and must never share a cache entry.
        """
        return asdict(self)


@contextmanager
def experiment_span(name: str, config: ExperimentConfig) -> Iterator[Span]:
    """Root span for one experiment run (inert when tracing is off).

    ``repro profile`` wraps each experiment's ``run`` in this, so every
    span the lower layers emit hangs off one ``experiment.<name>`` root
    carrying the configuration that produced the trace.
    """
    tracer = get_tracer()
    with tracer.span(
        f"experiment.{name}",
        category="experiment",
        seed=config.seed,
        noise_sigma=config.noise_sigma,
        gpu_version=config.gpu_version,
        fast=config.fast,
    ) as span:
        # only stamp the attributes when the knobs are on, so default span
        # skeletons (and their golden traces) are unchanged
        if config.faults is not None and tracer.enabled:
            span.set_attr("faults", config.faults)
        if config.drift is not None and tracer.enabled:
            span.set_attr("drift", config.drift)
        yield span


def _fault_plan(config: ExperimentConfig) -> FaultPlan | None:
    """The config's seeded fault plan, or None when fault-free."""
    if config.faults is None:
        return None
    return FaultPlan.from_spec(config.faults, seed=config.seed)


def make_drift_model(config: ExperimentConfig) -> DriftModel | None:
    """The config's seeded drift model, or None when stationary."""
    if config.drift is None:
        return None
    return DriftModel.from_spec(config.drift, seed=config.seed)


def make_bench(config: ExperimentConfig, node: NodeSpec | None = None) -> HybridBenchmark:
    """A benchmark facade on the paper's node (or a supplied one)."""
    return HybridBenchmark(
        node or ig_icl_node(),
        seed=config.seed,
        noise_sigma=config.noise_sigma,
        faults=_fault_plan(config),
    )


def make_app(
    config: ExperimentConfig,
    node: NodeSpec | None = None,
    build_models: bool = True,
) -> HybridMatMul:
    """The application with models built over the configured range."""
    app = HybridMatMul(
        node or ig_icl_node(),
        seed=config.seed,
        noise_sigma=config.noise_sigma,
        gpu_version=config.gpu_version,
        faults=_fault_plan(config),
    )
    if build_models:
        app.build_models(
            max_blocks=config.model_max_blocks,
            cpu_points=8 if config.fast else 12,
            gpu_points=10 if config.fast else 16,
            adaptive=not config.fast,
        )
    return app


def make_cpu_only_app(config: ExperimentConfig) -> HybridMatMul:
    """The 24-core CPU-only configuration of Table II's first column."""
    return HybridMatMul(
        cpu_only_node(),
        seed=config.seed,
        noise_sigma=config.noise_sigma,
        gpu_version=config.gpu_version,
        faults=_fault_plan(config),
    )
