#!/usr/bin/env python3
"""CI gate: fail on lint violations beyond the committed baseline.

Thin wrapper over :mod:`repro.analysis` for CI jobs and pre-commit
hooks.  Runs both tiers — the per-file rules and the interprocedural
flow tier (call graph + REP101..REP104) — and prints per-rule wall
times to stderr.  Exit status is non-zero when the tree has violations
that the committed ``.repro-lint-baseline.json`` does not accept, when
any file fails to parse, or when the whole run blows its wall-time
budget (``--budget-s``, default 15 s — the gate must stay cheap enough
for the pre-commit path; a breach is a perf regression in the analyser
and fails CI like any other regression).  A shrinking tree always
passes.  Run from the repository root:

    PYTHONPATH=src python tools/lint_gate.py [paths...]

``--update`` rewrites the baseline to the current state instead of
failing — for deliberately accepting a violation (rare; prefer fixing,
or an inline ``# repro: noqa REP00x`` with a justification).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline  # noqa: E402
from repro.analysis.engine import lint_paths  # noqa: E402
from repro.analysis.reporters import render_text  # noqa: E402

#: Default wall-time budget for the whole gate run, in seconds.
DEFAULT_BUDGET_S = 15.0


def print_timings(rule_times_s: dict, total_s: float, file=None) -> None:
    """Per-rule wall times, slowest first, plus the run total."""
    file = sys.stderr if file is None else file
    for name, seconds in sorted(
        rule_times_s.items(), key=lambda item: -item[1]
    ):
        print(f"  {name:<12} {seconds * 1000.0:8.1f} ms", file=file)
    print(f"  {'total':<12} {total_s * 1000.0:8.1f} ms", file=file)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="lint_gate",
        description="fail on new repro-lint violations vs the committed baseline",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=[str(REPO_ROOT / "src")],
        help="paths to lint (default: the repository's src tree)",
    )
    parser.add_argument(
        "--baseline",
        default=str(REPO_ROOT / DEFAULT_BASELINE_NAME),
        help="baseline file (default: committed repository baseline)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline to the current violations and exit 0",
    )
    parser.add_argument(
        "--no-flow",
        action="store_true",
        help="skip the interprocedural tier (per-file rules only)",
    )
    parser.add_argument(
        "--budget-s",
        type=float,
        default=DEFAULT_BUDGET_S,
        metavar="S",
        help=f"wall-time budget for the run (default: {DEFAULT_BUDGET_S:.0f} s)",
    )
    args = parser.parse_args(argv)

    started = time.perf_counter()
    result = lint_paths(args.paths, root=REPO_ROOT, flow=not args.no_flow)
    elapsed_s = time.perf_counter() - started
    print("lint gate timings:", file=sys.stderr)
    print_timings(result.rule_times_s, elapsed_s)

    baseline_path = Path(args.baseline)

    if args.update:
        Baseline.from_diagnostics(result.diagnostics).save(baseline_path)
        print(
            f"baseline updated: {len(result.diagnostics)} accepted "
            f"violation(s) in {baseline_path}"
        )
        return 0

    baseline = Baseline.load(baseline_path)
    new, fixed = baseline.filter_new(result.diagnostics)
    if new or result.parse_errors:
        print(render_text(result, new=new))
        print(
            f"\nlint gate FAILED: {len(new)} new violation(s), "
            f"{len(result.parse_errors)} parse error(s). Fix them, suppress "
            "with `# repro: noqa REP00x`, or (rare) --update the baseline."
        )
        return 1
    if elapsed_s > args.budget_s:
        print(
            f"lint gate FAILED: run took {elapsed_s:.1f} s, over the "
            f"{args.budget_s:.1f} s budget — the analyser has a performance "
            "regression (see the per-rule timings on stderr)"
        )
        return 1
    message = (
        f"lint gate ok: {result.files_checked} file(s), "
        f"{len(result.diagnostics)} accepted violation(s), "
        f"{elapsed_s:.1f} s"
    )
    if fixed:
        message += (
            f"; {len(fixed)} baseline entr(y/ies) no longer fire — "
            "shrink the baseline with --update"
        )
    print(message)
    return 0


if __name__ == "__main__":
    sys.exit(main())
