#!/usr/bin/env python3
"""CI gate: fail on lint violations beyond the committed baseline.

Thin wrapper over :mod:`repro.analysis` for CI jobs and pre-commit
hooks.  Exit status is non-zero when the tree has violations that the
committed ``.repro-lint-baseline.json`` does not accept (or when any
file fails to parse); a shrinking tree always passes.  Run from the
repository root:

    PYTHONPATH=src python tools/lint_gate.py [paths...]

``--update`` rewrites the baseline to the current state instead of
failing — for deliberately accepting a violation (rare; prefer fixing,
or an inline ``# repro: noqa REP00x`` with a justification).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline  # noqa: E402
from repro.analysis.engine import lint_paths  # noqa: E402
from repro.analysis.reporters import render_text  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="lint_gate",
        description="fail on new repro-lint violations vs the committed baseline",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=[str(REPO_ROOT / "src")],
        help="paths to lint (default: the repository's src tree)",
    )
    parser.add_argument(
        "--baseline",
        default=str(REPO_ROOT / DEFAULT_BASELINE_NAME),
        help="baseline file (default: committed repository baseline)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline to the current violations and exit 0",
    )
    args = parser.parse_args(argv)

    result = lint_paths(args.paths, root=REPO_ROOT)
    baseline_path = Path(args.baseline)

    if args.update:
        Baseline.from_diagnostics(result.diagnostics).save(baseline_path)
        print(
            f"baseline updated: {len(result.diagnostics)} accepted "
            f"violation(s) in {baseline_path}"
        )
        return 0

    baseline = Baseline.load(baseline_path)
    new, fixed = baseline.filter_new(result.diagnostics)
    if new or result.parse_errors:
        print(render_text(result, new=new))
        print(
            f"\nlint gate FAILED: {len(new)} new violation(s), "
            f"{len(result.parse_errors)} parse error(s). Fix them, suppress "
            "with `# repro: noqa REP00x`, or (rare) --update the baseline."
        )
        return 1
    message = (
        f"lint gate ok: {result.files_checked} file(s), "
        f"{len(result.diagnostics)} accepted violation(s)"
    )
    if fixed:
        message += (
            f"; {len(fixed)} baseline entr(y/ies) no longer fire — "
            "shrink the baseline with --update"
        )
    print(message)
    return 0


if __name__ == "__main__":
    sys.exit(main())
