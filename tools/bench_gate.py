#!/usr/bin/env python3
"""CI bench runner: execute the benchmark suite and archive the results.

Thin wrapper over ``pytest benchmarks/ --benchmark-json`` for CI jobs and
local regression hunting.  Writes the machine-readable record (timings
plus each bench's ``extra_info`` headline numbers) to ``BENCH_8.json`` at
the repository root by default, so successive PRs leave comparable
artifacts.  Run from the repository root:

    PYTHONPATH=src python tools/bench_gate.py [--out BENCH_8.json] [--jobs N] [pytest args...]

``--jobs N`` sizes the orchestrator's worker pool for the report
benchmarks (exported as ``REPRO_BENCH_JOBS``).  Extra arguments are
forwarded to pytest, e.g. ``-k fig6`` to time a single experiment.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Default artifact name; the suffix tracks the PR sequence.
DEFAULT_OUT = "BENCH_8.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_gate",
        description="run benchmarks/ and write a --benchmark-json artifact",
    )
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / DEFAULT_OUT),
        help=f"benchmark JSON artifact (default: {DEFAULT_OUT} at the root)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the report benchmarks (REPRO_BENCH_JOBS)",
    )
    args, pytest_args = parser.parse_known_args(argv)

    command = [
        sys.executable,
        "-m",
        "pytest",
        str(REPO_ROOT / "benchmarks"),
        "-q",
        f"--benchmark-json={args.out}",
        *pytest_args,
    ]
    env_path = str(REPO_ROOT / "src")
    env = dict(os.environ)
    env["REPRO_BENCH_JOBS"] = str(args.jobs)
    env["PYTHONPATH"] = (
        env_path + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else env_path
    )
    code = subprocess.call(command, cwd=REPO_ROOT, env=env)
    artifact = Path(args.out)
    if code == 0 and artifact.is_file():
        print(f"bench gate ok: results in {artifact}")
    elif code != 0:
        print(f"bench gate FAILED: pytest exit {code}", file=sys.stderr)
    return code


if __name__ == "__main__":
    sys.exit(main())
